//! One rank's shard of an encoder layer, with channel-based collectives
//! where the serial executor sums partials in-process.
//!
//! The arithmetic replicates [`actcomp_mp`]'s tensor-parallel layer op
//! for op: the two row-parallel projections (attention output, MLP
//! contraction) go through the compressed all-reduce; the backward
//! reductions that the serial `ColumnShards` performs as plain sums run
//! as dense all-reduces in the same rank order, so with the identity
//! compressor a threaded step is bit-identical to the serial one.

use crate::comm::TpGroup;
use crate::report::{timed, PhaseTimers};
use actcomp_compress::Compressor;
use actcomp_mp::shard::{attn_context_backward_ws, attn_context_forward_ws};
use actcomp_mp::{ColumnShard, RowShard};
use actcomp_nn::{EncoderLayer, Layer, LayerNorm, LnCache, Parameter};
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{FusePolicy, OutBind};
use actcomp_tensor::{Tensor, Workspace};

/// `LN((s + b) + x)` as one compiled graph segment: the row-broadcast
/// bias add and the residual sum are plan-internal intermediates the
/// planner recycles as soon as the normalization consumes them, instead
/// of two caller-held full activations.
fn ln_bias_residual_forward(
    ln: &LayerNorm,
    s: &Tensor,
    bias: &Tensor,
    x: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, LnCache) {
    let (m, n) = (s.dims()[0], s.dims()[1]);
    let mut g = Graph::new();
    let gs = g.input(m, n);
    let gb = g.input_vec(n);
    let gx = g.input(m, n);
    let gg = g.input_vec(n);
    let gbeta = g.input_vec(n);
    let a = g.bias_add(gs, gb);
    let sum = g.residual_add(a, gx);
    let (y, xhat, inv_std) = g.layernorm(sum, gg, gbeta, ln.eps());
    g.mark_output(y);
    g.mark_output(xhat);
    g.mark_output(inv_std);
    let plan = g.compile(FusePolicy::Auto).expect("bias+residual+ln graph");
    let mut res = plan.run(
        &[
            s.as_slice(),
            bias.as_slice(),
            x.as_slice(),
            ln.gamma.value.as_slice(),
            ln.beta.value.as_slice(),
        ],
        vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
        ws,
    );
    (
        Tensor::from_vec(res[0].take().expect("leased y"), [m, n]),
        LnCache::from_parts(
            Tensor::from_vec(res[1].take().expect("leased xhat"), [m, n]),
            Tensor::from_vec(res[2].take().expect("leased inv_std"), [m]),
        ),
    )
}

/// Rank-local MLP expansion with the activation fused into the GEMM
/// epilogue: returns `(gelu(x·W + b), x·W + b)` from one plan, with the
/// pre-activation stashed out of the register tile for backward instead
/// of recomputed or produced by a second full pass.
fn mlp_up_forward(fc1: &ColumnShard, x: &Tensor, ws: &mut Workspace) -> (Tensor, Tensor) {
    let (m, kin) = (x.dims()[0], x.dims()[1]);
    let n = fc1.weight.value.dims()[1];
    let mut g = Graph::new();
    let gx = g.input(m, kin);
    let gw = g.input(kin, n);
    let gb = g.input_vec(n);
    let y = g.matmul(gx, gw);
    let h = g.bias_add(y, gb);
    let act = g.gelu(h);
    g.mark_output(act);
    g.mark_output(h);
    let plan = g.compile(FusePolicy::Auto).expect("mlp up graph");
    let mut res = plan.run(
        &[
            x.as_slice(),
            fc1.weight.value.as_slice(),
            fc1.bias.value.as_slice(),
        ],
        vec![OutBind::Lease, OutBind::Lease],
        ws,
    );
    (
        Tensor::from_vec(res[0].take().expect("leased act"), [m, n]),
        Tensor::from_vec(res[1].take().expect("leased h"), [m, n]),
    )
}

/// Rank-local MLP contraction backward with the GELU derivative fused
/// into the data-gradient GEMM's epilogue: accumulates `dW += actᵀ·dp`
/// straight into the shard's grad and returns `dh = (dp·Wᵀ) ⊙ gelu'(h)`
/// without materializing the intermediate `dp·Wᵀ`.
fn mlp_down_backward(
    fc2: &mut RowShard,
    act: &Tensor,
    dp: &Tensor,
    h: &Tensor,
    ws: &mut Workspace,
) -> Tensor {
    let (m, kin) = (act.dims()[0], act.dims()[1]);
    let n = dp.dims()[1];
    let mut g = Graph::new();
    let gact = g.input(m, kin);
    let gdp = g.input(m, n);
    let gw = g.input(kin, n);
    let gh = g.input(m, kin);
    let dw = g.matmul_tn(gact, gdp);
    let da = g.matmul_nt(gdp, gw);
    let dh = g.gelu_grad_mul(da, gh);
    g.mark_output(dw);
    g.mark_output(dh);
    let plan = g
        .compile(FusePolicy::Auto)
        .expect("mlp down backward graph");
    let mut res = plan.run(
        &[
            act.as_slice(),
            dp.as_slice(),
            fc2.weight.value.as_slice(),
            h.as_slice(),
        ],
        vec![OutBind::Acc(fc2.weight.grad.as_mut_slice()), OutBind::Lease],
        ws,
    );
    Tensor::from_vec(res[1].take().expect("leased dh"), [m, kin])
}

/// LayerNorm backward as one compiled plan: optionally folds a second
/// upstream gradient into `dy` first (the residual branch's
/// contribution), accumulates `dγ`, `dβ`, and the replicated row bias's
/// gradient (`Σ_rows dx`) straight into their parameters, and returns
/// the leased `dx`.
fn ln_backward_fused(
    ln: &mut LayerNorm,
    dy: &Tensor,
    extra: Option<&Tensor>,
    cache: LnCache,
    row_bias: &mut Parameter,
    ws: &mut Workspace,
) -> Tensor {
    let (xhat, inv_std) = cache.into_parts();
    let (m, n) = (xhat.dims()[0], xhat.dims()[1]);
    let mut g = Graph::new();
    let gdy = g.input(m, n);
    let gex = extra.map(|_| g.input(m, n));
    let gxh = g.input(m, n);
    let gis = g.input(m, 1);
    let gg = g.input_vec(n);
    let s = match gex {
        Some(ge) => g.residual_add(gdy, ge),
        None => gdy,
    };
    let (dx, dgamma, dbeta) = g.layernorm_backward(s, gxh, gis, gg);
    let dbo = g.sum_axis0(dx);
    g.mark_output(dx);
    g.mark_output(dgamma);
    g.mark_output(dbeta);
    g.mark_output(dbo);
    let plan = g.compile(FusePolicy::Auto).expect("ln backward graph");
    let mut inputs: Vec<&[f32]> = vec![dy.as_slice()];
    if let Some(e) = extra {
        inputs.push(e.as_slice());
    }
    inputs.push(xhat.as_slice());
    inputs.push(inv_std.as_slice());
    inputs.push(ln.gamma.value.as_slice());
    let mut res = plan.run(
        &inputs,
        vec![
            OutBind::Lease,
            OutBind::Acc(ln.gamma.grad.as_mut_slice()),
            OutBind::Acc(ln.beta.grad.as_mut_slice()),
            OutBind::Acc(row_bias.grad.as_mut_slice()),
        ],
        ws,
    );
    ws.recycle_tensor(xhat);
    ws.recycle_tensor(inv_std);
    Tensor::from_vec(res[0].take().expect("leased dx"), [m, n])
}

/// Activations cached between a micro-batch's forward and backward.
/// Pushed/popped LIFO, matching the GPipe fill/drain order.
struct LayerCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>,
    ctx: Tensor,
    h1: Tensor,
    h: Tensor,
    act: Tensor,
    ln1c: LnCache,
    ln2c: LnCache,
    batch: usize,
    seq: usize,
}

/// One rank's shard of one encoder layer: column shards of the QKV and
/// MLP-expansion weights, row shards of the output projections,
/// replicated layer norms and row biases, plus this rank's compressor
/// instances for the two all-reduce points.
pub struct RankLayer {
    wq: ColumnShard,
    wk: ColumnShard,
    wv: ColumnShard,
    wo: RowShard,
    wo_bias: Parameter,
    ln1: LayerNorm,
    fc1: ColumnShard,
    fc2: RowShard,
    fc2_bias: Parameter,
    ln2: LayerNorm,
    attn_comp: Box<dyn Compressor>,
    ff_comp: Box<dyn Compressor>,
    heads: usize,
    world: usize,
    hidden: usize,
    caches: Vec<LayerCache>,
}

impl RankLayer {
    /// Builds rank `tpi`'s shard of a serial encoder layer.
    ///
    /// # Panics
    ///
    /// Panics if `world` doesn't divide the head count (the runtime
    /// validates this before spawning ranks).
    pub fn from_serial(
        layer: &EncoderLayer,
        tpi: usize,
        world: usize,
        attn_comp: Box<dyn Compressor>,
        ff_comp: Box<dyn Compressor>,
    ) -> Self {
        let attn = &layer.attn;
        let heads = attn.heads();
        assert!(
            world > 0 && heads.is_multiple_of(world),
            "{heads} heads not divisible across {world} workers"
        );
        let take = |mut shards: Vec<ColumnShard>| shards.swap_remove(tpi);
        let take_row = |mut shards: Vec<RowShard>| shards.swap_remove(tpi);
        RankLayer {
            wq: take(ColumnShard::split(
                &attn.wq.weight.value,
                &attn.wq.bias.value,
                world,
            )),
            wk: take(ColumnShard::split(
                &attn.wk.weight.value,
                &attn.wk.bias.value,
                world,
            )),
            wv: take(ColumnShard::split(
                &attn.wv.weight.value,
                &attn.wv.bias.value,
                world,
            )),
            wo: take_row(RowShard::split(&attn.wo.weight.value, world)),
            wo_bias: Parameter::new(attn.wo.bias.value.clone()),
            ln1: layer.ln1.clone(),
            fc1: take(ColumnShard::split(
                &layer.ff.fc1.weight.value,
                &layer.ff.fc1.bias.value,
                world,
            )),
            fc2: take_row(RowShard::split(&layer.ff.fc2.weight.value, world)),
            fc2_bias: Parameter::new(layer.ff.fc2.bias.value.clone()),
            ln2: layer.ln2.clone(),
            attn_comp,
            ff_comp,
            heads,
            world,
            hidden: attn.hidden(),
            caches: Vec::new(),
        }
    }

    fn local_heads(&self) -> usize {
        self.heads / self.world
    }

    fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Forward for one micro-batch over `[batch·seq, hidden]`, running
    /// both compressed all-reduces through the group's ring.
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        tp: &mut TpGroup,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        let lh = self.local_heads();
        let d = self.head_dim();
        let (q, k, v, ctx, probs, partial) = timed(&mut timers.compute_s, || {
            let q = self.wq.forward_ws(x, ws);
            let k = self.wk.forward_ws(x, ws);
            let v = self.wv.forward_ws(x, ws);
            let (ctx, probs) = attn_context_forward_ws(&q, &k, &v, batch, seq, lh, d, ws);
            let partial = self.wo.partial_ws(&ctx, ws);
            (q, k, v, ctx, probs, partial)
        });
        let s = tp.compressed_all_reduce(self.attn_comp.as_mut(), &partial, timers, ws);
        ws.recycle_tensor(partial);
        let (h1, ln1c, h, act, partial2) = timed(&mut timers.compute_s, || {
            let (h1, ln1c) = ln_bias_residual_forward(&self.ln1, &s, &self.wo_bias.value, x, ws);
            let (act, h) = mlp_up_forward(&self.fc1, &h1, ws);
            let partial2 = self.fc2.partial_ws(&act, ws);
            (h1, ln1c, h, act, partial2)
        });
        ws.recycle_tensor(s);
        let s2 = tp.compressed_all_reduce(self.ff_comp.as_mut(), &partial2, timers, ws);
        ws.recycle_tensor(partial2);
        let (y, ln2c) = timed(&mut timers.compute_s, || {
            ln_bias_residual_forward(&self.ln2, &s2, &self.fc2_bias.value, &h1, ws)
        });
        ws.recycle_tensor(s2);
        self.caches.push(LayerCache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            ctx,
            h1,
            h,
            act,
            ln1c,
            ln2c,
            batch,
            seq,
        });
        y
    }

    /// Backward for the most recent un-backwarded micro-batch; returns
    /// the input gradient.
    pub fn backward(
        &mut self,
        dy: &Tensor,
        tp: &mut TpGroup,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        let LayerCache {
            x,
            q,
            k,
            v,
            probs,
            ctx,
            h1,
            h,
            act,
            ln1c,
            ln2c,
            batch,
            seq,
        } = self
            .caches
            .pop()
            .expect("RankLayer::backward without forward");
        let lh = self.local_heads();
        let d = self.head_dim();

        let d2 = timed(&mut timers.compute_s, || {
            ln_backward_fused(&mut self.ln2, dy, None, ln2c, &mut self.fc2_bias, ws)
        });
        let dp = tp.compressed_backward(self.ff_comp.as_mut(), &d2, timers);
        let part = timed(&mut timers.compute_s, || {
            let dh = mlp_down_backward(&mut self.fc2, &act, &dp, &h, ws);
            let part = self.fc1.backward_ws(&h1, &dh, ws);
            for tmp in [dh, act, h, h1] {
                ws.recycle_tensor(tmp);
            }
            part
        });
        let df = tp.dense_all_reduce(&part, timers, ws);
        ws.recycle_tensor(part);
        let d1 = timed(&mut timers.compute_s, || {
            ln_backward_fused(&mut self.ln1, &d2, Some(&df), ln1c, &mut self.wo_bias, ws)
        });
        ws.recycle_tensor(d2);
        ws.recycle_tensor(df);
        let dpa = tp.compressed_backward(self.attn_comp.as_mut(), &d1, timers);
        let (pq, pk, pv) = timed(&mut timers.compute_s, || {
            let dctx = self.wo.backward_ws(&ctx, &dpa, ws);
            let (dq, dk, dv) =
                attn_context_backward_ws(&q, &k, &v, &probs, &dctx, batch, seq, lh, d, ws);
            ws.recycle_tensor(dctx);
            let pq = self.wq.backward_ws(&x, &dq, ws);
            let pk = self.wk.backward_ws(&x, &dk, ws);
            let pv = self.wv.backward_ws(&x, &dv, ws);
            for tmp in [dq, dk, dv, ctx, q, k, v] {
                ws.recycle_tensor(tmp);
            }
            (pq, pk, pv)
        });
        // One fused collective instead of three: the reduce is
        // elementwise, so concat → reduce → split gives each block the
        // same rank-order fold, and summing the blocks afterwards keeps
        // the serial `(Σdq + Σdk) + Σdv` association bit for bit —
        // while paying one ring latency instead of three.
        let fused = timed(&mut timers.compute_s, || {
            Tensor::concat_rows(&[&pq, &pk, &pv])
        });
        let n = pq.dims()[0];
        for tmp in [pq, pk, pv] {
            ws.recycle_tensor(tmp);
        }
        let red = tp.dense_all_reduce(&fused, timers, ws);
        ws.recycle_tensor(fused);
        // The three reduced blocks and the residual gradient fold in one
        // elementwise plan (`((dq̂+dk̂)+dv̂)+d1`, same association as the
        // serial executor's fold) with a single leased buffer.
        let dx = timed(&mut timers.compute_s, || {
            let cols = red.dims()[1];
            let r = red.as_slice();
            let mut g = Graph::new();
            let gr0 = g.input(n, cols);
            let gr1 = g.input(n, cols);
            let gr2 = g.input(n, cols);
            let gd1 = g.input(n, cols);
            let t1 = g.residual_add(gr0, gr1);
            let t2 = g.residual_add(t1, gr2);
            let out = g.residual_add(t2, gd1);
            g.mark_output(out);
            let plan = g.compile(FusePolicy::Auto).expect("dx fold graph");
            let mut res = plan.run(
                &[
                    &r[..n * cols],
                    &r[n * cols..2 * n * cols],
                    &r[2 * n * cols..],
                    d1.as_slice(),
                ],
                vec![OutBind::Lease],
                ws,
            );
            Tensor::from_vec(res[0].take().expect("leased dx"), [n, cols])
        });
        ws.recycle_tensor(red);
        ws.recycle_tensor(d1);
        dx
    }

    /// Drops every cached forward activation without running backward —
    /// the forward-only serving path's per-batch cleanup. All cache
    /// tensors are recycled into the workspace arena, so serving a
    /// stream of requests reuses the same buffers instead of growing
    /// the cache stack forever.
    pub fn clear_caches(&mut self, ws: &mut Workspace) {
        for c in self.caches.drain(..) {
            let LayerCache {
                x,
                q,
                k,
                v,
                probs,
                ctx,
                h1,
                h,
                act,
                ln1c,
                ln2c,
                ..
            } = c;
            for t in [x, q, k, v, ctx, h1, h, act] {
                ws.recycle_tensor(t);
            }
            for t in probs {
                ws.recycle_tensor(t);
            }
            for cache in [ln1c, ln2c] {
                let (xhat, inv_std) = cache.into_parts();
                ws.recycle_tensor(xhat);
                ws.recycle_tensor(inv_std);
            }
        }
    }

    /// Ring-syncs this layer's compressor-parameter gradients (the
    /// threaded counterpart of the serial `sync_compressor_grads`).
    pub fn sync_compressor_grads(&mut self, tp: &mut TpGroup, timers: &mut PhaseTimers) {
        tp.sync_param_grads(self.attn_comp.as_mut(), timers);
        tp.sync_param_grads(self.ff_comp.as_mut(), timers);
    }

    /// Visits this rank's model parameters (shards, replicated norms and
    /// row biases) in the rank-local canonical order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
        f(&mut self.wo_bias);
        self.ln1.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        f(&mut self.fc2_bias);
        self.ln2.visit_params(f);
    }

    /// Visits this rank's compressor parameters (attention reduce, then
    /// feed-forward reduce).
    pub fn visit_compressor_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.attn_comp.visit_params(f);
        self.ff_comp.visit_params(f);
    }

    /// Collects the structured gradient snapshot the driver reassembles
    /// into the serial parameter order.
    pub fn grads(&mut self) -> LayerGrads {
        let grab = |p: &Parameter| p.grad.clone();
        LayerGrads {
            wq: vec![grab(&self.wq.weight), grab(&self.wq.bias)],
            wk: vec![grab(&self.wk.weight), grab(&self.wk.bias)],
            wv: vec![grab(&self.wv.weight), grab(&self.wv.bias)],
            wo_weight: grab(&self.wo.weight),
            wo_bias: grab(&self.wo_bias),
            ln1: {
                let mut v = Vec::new();
                self.ln1.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            fc1: vec![grab(&self.fc1.weight), grab(&self.fc1.bias)],
            fc2_weight: grab(&self.fc2.weight),
            fc2_bias: grab(&self.fc2_bias),
            ln2: {
                let mut v = Vec::new();
                self.ln2.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            attn_comp: {
                let mut v = Vec::new();
                self.attn_comp.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            ff_comp: {
                let mut v = Vec::new();
                self.ff_comp.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
        }
    }
}

/// One rank's gradient snapshot for one layer, in shard-local form.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Query column shard `[weight, bias]`.
    pub wq: Vec<Tensor>,
    /// Key column shard `[weight, bias]`.
    pub wk: Vec<Tensor>,
    /// Value column shard `[weight, bias]`.
    pub wv: Vec<Tensor>,
    /// Attention output row-shard weight.
    pub wo_weight: Tensor,
    /// Replicated attention output bias.
    pub wo_bias: Tensor,
    /// Replicated post-attention norm `[gain, bias]`.
    pub ln1: Vec<Tensor>,
    /// MLP expansion column shard `[weight, bias]`.
    pub fc1: Vec<Tensor>,
    /// MLP contraction row-shard weight.
    pub fc2_weight: Tensor,
    /// Replicated MLP contraction bias.
    pub fc2_bias: Tensor,
    /// Replicated post-MLP norm `[gain, bias]`.
    pub ln2: Vec<Tensor>,
    /// This rank's attention-reduce compressor parameter gradients.
    pub attn_comp: Vec<Tensor>,
    /// This rank's feed-forward-reduce compressor parameter gradients.
    pub ff_comp: Vec<Tensor>,
}
