//! One rank's shard of an encoder layer, with channel-based collectives
//! where the serial executor sums partials in-process.
//!
//! The arithmetic replicates [`actcomp_mp`]'s tensor-parallel layer op
//! for op: the two row-parallel projections (attention output, MLP
//! contraction) go through the compressed all-reduce; the backward
//! reductions that the serial `ColumnShards` performs as plain sums run
//! as dense all-reduces in the same rank order, so with the identity
//! compressor a threaded step is bit-identical to the serial one.

use crate::comm::TpGroup;
use crate::report::{timed, PhaseTimers};
use actcomp_compress::Compressor;
use actcomp_mp::shard::{attn_context_backward_ws, attn_context_forward_ws};
use actcomp_mp::{ColumnShard, RowShard};
use actcomp_nn::{EncoderLayer, Layer, LayerNorm, LnCache, Parameter};
use actcomp_tensor::{ops::gelu_grad, Tensor, Workspace};

/// Activations cached between a micro-batch's forward and backward.
/// Pushed/popped LIFO, matching the GPipe fill/drain order.
struct LayerCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>,
    ctx: Tensor,
    h1: Tensor,
    h: Tensor,
    act: Tensor,
    ln1c: LnCache,
    ln2c: LnCache,
    batch: usize,
    seq: usize,
}

/// One rank's shard of one encoder layer: column shards of the QKV and
/// MLP-expansion weights, row shards of the output projections,
/// replicated layer norms and row biases, plus this rank's compressor
/// instances for the two all-reduce points.
pub struct RankLayer {
    wq: ColumnShard,
    wk: ColumnShard,
    wv: ColumnShard,
    wo: RowShard,
    wo_bias: Parameter,
    ln1: LayerNorm,
    fc1: ColumnShard,
    fc2: RowShard,
    fc2_bias: Parameter,
    ln2: LayerNorm,
    attn_comp: Box<dyn Compressor>,
    ff_comp: Box<dyn Compressor>,
    heads: usize,
    world: usize,
    hidden: usize,
    caches: Vec<LayerCache>,
}

impl RankLayer {
    /// Builds rank `tpi`'s shard of a serial encoder layer.
    ///
    /// # Panics
    ///
    /// Panics if `world` doesn't divide the head count (the runtime
    /// validates this before spawning ranks).
    pub fn from_serial(
        layer: &EncoderLayer,
        tpi: usize,
        world: usize,
        attn_comp: Box<dyn Compressor>,
        ff_comp: Box<dyn Compressor>,
    ) -> Self {
        let attn = &layer.attn;
        let heads = attn.heads();
        assert!(
            world > 0 && heads.is_multiple_of(world),
            "{heads} heads not divisible across {world} workers"
        );
        let take = |mut shards: Vec<ColumnShard>| shards.swap_remove(tpi);
        let take_row = |mut shards: Vec<RowShard>| shards.swap_remove(tpi);
        RankLayer {
            wq: take(ColumnShard::split(
                &attn.wq.weight.value,
                &attn.wq.bias.value,
                world,
            )),
            wk: take(ColumnShard::split(
                &attn.wk.weight.value,
                &attn.wk.bias.value,
                world,
            )),
            wv: take(ColumnShard::split(
                &attn.wv.weight.value,
                &attn.wv.bias.value,
                world,
            )),
            wo: take_row(RowShard::split(&attn.wo.weight.value, world)),
            wo_bias: Parameter::new(attn.wo.bias.value.clone()),
            ln1: layer.ln1.clone(),
            fc1: take(ColumnShard::split(
                &layer.ff.fc1.weight.value,
                &layer.ff.fc1.bias.value,
                world,
            )),
            fc2: take_row(RowShard::split(&layer.ff.fc2.weight.value, world)),
            fc2_bias: Parameter::new(layer.ff.fc2.bias.value.clone()),
            ln2: layer.ln2.clone(),
            attn_comp,
            ff_comp,
            heads,
            world,
            hidden: attn.hidden(),
            caches: Vec::new(),
        }
    }

    fn local_heads(&self) -> usize {
        self.heads / self.world
    }

    fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Forward for one micro-batch over `[batch·seq, hidden]`, running
    /// both compressed all-reduces through the group's ring.
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        tp: &mut TpGroup,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        let lh = self.local_heads();
        let d = self.head_dim();
        let (q, k, v, ctx, probs, partial) = timed(&mut timers.compute_s, || {
            let q = self.wq.forward_ws(x, ws);
            let k = self.wk.forward_ws(x, ws);
            let v = self.wv.forward_ws(x, ws);
            let (ctx, probs) = attn_context_forward_ws(&q, &k, &v, batch, seq, lh, d, ws);
            let partial = self.wo.partial_ws(&ctx, ws);
            (q, k, v, ctx, probs, partial)
        });
        let s = tp.compressed_all_reduce(self.attn_comp.as_mut(), &partial, timers, ws);
        ws.recycle_tensor(partial);
        let (h1, ln1c, h, act, partial2) = timed(&mut timers.compute_s, || {
            let a = s.add_row_broadcast(&self.wo_bias.value);
            let (h1, ln1c) = self.ln1.forward_cached_ws(&x.add(&a), ws);
            let h = self.fc1.forward_ws(&h1, ws);
            let act = h.gelu();
            let partial2 = self.fc2.partial_ws(&act, ws);
            (h1, ln1c, h, act, partial2)
        });
        let s2 = tp.compressed_all_reduce(self.ff_comp.as_mut(), &partial2, timers, ws);
        ws.recycle_tensor(partial2);
        let (y, ln2c) = timed(&mut timers.compute_s, || {
            let f = s2.add_row_broadcast(&self.fc2_bias.value);
            self.ln2.forward_cached_ws(&h1.add(&f), ws)
        });
        self.caches.push(LayerCache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            ctx,
            h1,
            h,
            act,
            ln1c,
            ln2c,
            batch,
            seq,
        });
        y
    }

    /// Backward for the most recent un-backwarded micro-batch; returns
    /// the input gradient.
    pub fn backward(
        &mut self,
        dy: &Tensor,
        tp: &mut TpGroup,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        let LayerCache {
            x,
            q,
            k,
            v,
            probs,
            ctx,
            h1,
            h,
            act,
            ln1c,
            ln2c,
            batch,
            seq,
        } = self
            .caches
            .pop()
            .expect("RankLayer::backward without forward");
        let lh = self.local_heads();
        let d = self.head_dim();

        let d2 = timed(&mut timers.compute_s, || {
            let d2 = self.ln2.backward_cached_ws(dy, ln2c, ws);
            self.fc2_bias.grad.add_assign(&d2.sum_axis0());
            d2
        });
        let dp = tp.compressed_backward(self.ff_comp.as_mut(), &d2, timers);
        let part = timed(&mut timers.compute_s, || {
            let da = self.fc2.backward_ws(&act, &dp, ws);
            let dh = h.map(gelu_grad).mul(&da);
            ws.recycle_tensor(da);
            let part = self.fc1.backward_ws(&h1, &dh, ws);
            for tmp in [act, h, h1] {
                ws.recycle_tensor(tmp);
            }
            part
        });
        let df = tp.dense_all_reduce(&part, timers, ws);
        ws.recycle_tensor(part);
        let d1 = timed(&mut timers.compute_s, || {
            let dh1 = d2.add(&df);
            let d1 = self.ln1.backward_cached_ws(&dh1, ln1c, ws);
            self.wo_bias.grad.add_assign(&d1.sum_axis0());
            d1
        });
        let dpa = tp.compressed_backward(self.attn_comp.as_mut(), &d1, timers);
        let (pq, pk, pv) = timed(&mut timers.compute_s, || {
            let dctx = self.wo.backward_ws(&ctx, &dpa, ws);
            let (dq, dk, dv) =
                attn_context_backward_ws(&q, &k, &v, &probs, &dctx, batch, seq, lh, d, ws);
            ws.recycle_tensor(dctx);
            let pq = self.wq.backward_ws(&x, &dq, ws);
            let pk = self.wk.backward_ws(&x, &dk, ws);
            let pv = self.wv.backward_ws(&x, &dv, ws);
            for tmp in [dq, dk, dv, ctx, q, k, v] {
                ws.recycle_tensor(tmp);
            }
            (pq, pk, pv)
        });
        // One fused collective instead of three: the reduce is
        // elementwise, so concat → reduce → split gives each block the
        // same rank-order fold, and summing the blocks afterwards keeps
        // the serial `(Σdq + Σdk) + Σdv` association bit for bit —
        // while paying one ring latency instead of three.
        let fused = timed(&mut timers.compute_s, || {
            Tensor::concat_rows(&[&pq, &pk, &pv])
        });
        let n = pq.dims()[0];
        for tmp in [pq, pk, pv] {
            ws.recycle_tensor(tmp);
        }
        let red = tp.dense_all_reduce(&fused, timers, ws);
        ws.recycle_tensor(fused);
        let dx = timed(&mut timers.compute_s, || {
            let mut dx = red.slice_rows(0, n);
            dx.add_assign(&red.slice_rows(n, 2 * n));
            dx.add_assign(&red.slice_rows(2 * n, 3 * n));
            d1.add(&dx)
        });
        ws.recycle_tensor(red);
        dx
    }

    /// Ring-syncs this layer's compressor-parameter gradients (the
    /// threaded counterpart of the serial `sync_compressor_grads`).
    pub fn sync_compressor_grads(&mut self, tp: &mut TpGroup, timers: &mut PhaseTimers) {
        tp.sync_param_grads(self.attn_comp.as_mut(), timers);
        tp.sync_param_grads(self.ff_comp.as_mut(), timers);
    }

    /// Visits this rank's model parameters (shards, replicated norms and
    /// row biases) in the rank-local canonical order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
        f(&mut self.wo_bias);
        self.ln1.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        f(&mut self.fc2_bias);
        self.ln2.visit_params(f);
    }

    /// Visits this rank's compressor parameters (attention reduce, then
    /// feed-forward reduce).
    pub fn visit_compressor_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.attn_comp.visit_params(f);
        self.ff_comp.visit_params(f);
    }

    /// Collects the structured gradient snapshot the driver reassembles
    /// into the serial parameter order.
    pub fn grads(&mut self) -> LayerGrads {
        let grab = |p: &Parameter| p.grad.clone();
        LayerGrads {
            wq: vec![grab(&self.wq.weight), grab(&self.wq.bias)],
            wk: vec![grab(&self.wk.weight), grab(&self.wk.bias)],
            wv: vec![grab(&self.wv.weight), grab(&self.wv.bias)],
            wo_weight: grab(&self.wo.weight),
            wo_bias: grab(&self.wo_bias),
            ln1: {
                let mut v = Vec::new();
                self.ln1.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            fc1: vec![grab(&self.fc1.weight), grab(&self.fc1.bias)],
            fc2_weight: grab(&self.fc2.weight),
            fc2_bias: grab(&self.fc2_bias),
            ln2: {
                let mut v = Vec::new();
                self.ln2.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            attn_comp: {
                let mut v = Vec::new();
                self.attn_comp.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
            ff_comp: {
                let mut v = Vec::new();
                self.ff_comp.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            },
        }
    }
}

/// One rank's gradient snapshot for one layer, in shard-local form.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Query column shard `[weight, bias]`.
    pub wq: Vec<Tensor>,
    /// Key column shard `[weight, bias]`.
    pub wk: Vec<Tensor>,
    /// Value column shard `[weight, bias]`.
    pub wv: Vec<Tensor>,
    /// Attention output row-shard weight.
    pub wo_weight: Tensor,
    /// Replicated attention output bias.
    pub wo_bias: Tensor,
    /// Replicated post-attention norm `[gain, bias]`.
    pub ln1: Vec<Tensor>,
    /// MLP expansion column shard `[weight, bias]`.
    pub fc1: Vec<Tensor>,
    /// MLP contraction row-shard weight.
    pub fc2_weight: Tensor,
    /// Replicated MLP contraction bias.
    pub fc2_bias: Tensor,
    /// Replicated post-MLP norm `[gain, bias]`.
    pub ln2: Vec<Tensor>,
    /// This rank's attention-reduce compressor parameter gradients.
    pub attn_comp: Vec<Tensor>,
    /// This rank's feed-forward-reduce compressor parameter gradients.
    pub ff_comp: Vec<Tensor>,
}
