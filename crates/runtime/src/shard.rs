//! Per-rank checkpoint shards for the `procs` backend.
//!
//! A distributed checkpoint is one file per rank — `dir/rank-<r>.ckpt`
//! — holding exactly the tensors that rank's `visit_owned_params`
//! yields, in visit order. The file is self-verifying: a magic/version
//! header, the writing rank, the training step, and the run's config
//! hash are followed by the tensor payload and an IEEE CRC32 trailer
//! over everything before it (the same CRC the wire frames use). A
//! restore therefore refuses — with a typed [`ShardError`] — a truncated
//! or bit-flipped file, a shard from a different run, a shard taken at
//! a different step, or another rank's shard, instead of silently
//! resuming from the wrong weights.
//!
//! Writes are atomic (temp file + rename), so a worker killed mid-write
//! leaves the previous checkpoint intact.

use crate::wire::{put_u64, put_usize, Reader, WireMsg};
use actcomp_net::crc32;
use actcomp_tensor::Tensor;
use std::io::Write;
use std::path::{Path, PathBuf};

/// First bytes of every shard file: `ACKP`, little-endian.
const MAGIC: u32 = 0x4143_4B50;
/// Bumped on any layout change; restore rejects other versions.
const VERSION: u16 = 1;

/// Why a shard failed to load (or store).
#[derive(Debug)]
pub enum ShardError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file is not a shard, is truncated, or failed its CRC.
    Corrupt {
        /// What was wrong.
        what: String,
    },
    /// The shard is valid but belongs to a different run, step, or
    /// rank than the one restoring it.
    Mismatch {
        /// Which stamped field disagreed.
        field: &'static str,
        /// The value in the file.
        found: u64,
        /// The value this run expects.
        expected: u64,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o: {e}"),
            ShardError::Corrupt { what } => write!(f, "corrupt shard: {what}"),
            ShardError::Mismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "shard {field} mismatch: file has {found:#x}, this run expects {expected:#x}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// The canonical shard path for `rank` inside a checkpoint directory.
pub fn shard_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank-{rank}.ckpt"))
}

/// Serializes and atomically writes one rank's shard.
pub fn write_shard(
    dir: &Path,
    rank: usize,
    step: usize,
    tag: u64,
    tensors: &[Tensor],
) -> Result<(), ShardError> {
    std::fs::create_dir_all(dir)?;
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    put_usize(&mut buf, rank);
    put_usize(&mut buf, step);
    put_u64(&mut buf, tag);
    put_usize(&mut buf, tensors.len());
    for t in tensors {
        t.encode(&mut buf);
    }
    let crc = crc32(0, &buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    // Temp-and-rename keeps the previous checkpoint intact if this
    // process dies mid-write (the exact failure recovery is for).
    let path = shard_path(dir, rank);
    let tmp = dir.join(format!("rank-{rank}.ckpt.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Loads and verifies one rank's shard: CRC first, then the stamped
/// rank / step / config hash against what this run expects.
pub fn read_shard(
    dir: &Path,
    rank: usize,
    step: usize,
    tag: u64,
) -> Result<Vec<Tensor>, ShardError> {
    let path = shard_path(dir, rank);
    let buf = std::fs::read(&path)?;
    if buf.len() < 4 + 2 + 4 {
        return Err(ShardError::Corrupt {
            what: format!("{} bytes is too short for a shard", buf.len()),
        });
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(0, body) != stored {
        return Err(ShardError::Corrupt {
            what: "CRC32 trailer does not match the file contents".to_string(),
        });
    }
    let magic = u32::from_le_bytes(body[0..4].try_into().expect("magic"));
    if magic != MAGIC {
        return Err(ShardError::Corrupt {
            what: format!("bad magic {magic:#010x}"),
        });
    }
    let version = u16::from_le_bytes(body[4..6].try_into().expect("version"));
    if version != VERSION {
        return Err(ShardError::Corrupt {
            what: format!("unsupported shard version {version}"),
        });
    }
    let mut r = Reader::new(&body[6..]);
    let corrupt = |what: &'static str| ShardError::Corrupt {
        what: what.to_string(),
    };
    let file_rank = r.read_usize("shard rank").map_err(|_| corrupt("rank"))?;
    let file_step = r.read_usize("shard step").map_err(|_| corrupt("step"))?;
    let file_tag = r.read_u64("shard tag").map_err(|_| corrupt("tag"))?;
    for (field, found, expected) in [
        ("rank", file_rank as u64, rank as u64),
        ("step", file_step as u64, step as u64),
        ("config hash", file_tag, tag),
    ] {
        if found != expected {
            return Err(ShardError::Mismatch {
                field,
                found,
                expected,
            });
        }
    }
    let count = r
        .read_usize("shard tensor count")
        .map_err(|_| corrupt("tensor count"))?;
    if count > 1 << 24 {
        return Err(corrupt("tensor count"));
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        tensors.push(Tensor::decode(&mut r).map_err(|_| corrupt("tensor payload"))?);
    }
    Ok(tensors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensors() -> Vec<Tensor> {
        vec![
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]),
            Tensor::from_vec(vec![-0.5; 6], [3, 2]),
        ]
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("actcomp-shard-rt-{}", std::process::id()));
        let orig = tensors();
        write_shard(&dir, 1, 7, 0xDEAD_BEEF, &orig).expect("write");
        let back = read_shard(&dir, 1, 7, 0xDEAD_BEEF).expect("read");
        assert_eq!(back.len(), orig.len());
        for (a, b) in back.iter().zip(&orig) {
            assert_eq!(a.dims(), b.dims());
            assert_eq!(a.as_slice(), b.as_slice(), "bitwise identical payload");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_run_step_or_rank_is_refused() {
        let dir = std::env::temp_dir().join(format!("actcomp-shard-mm-{}", std::process::id()));
        write_shard(&dir, 0, 3, 42, &tensors()).expect("write");
        // A shard misplaced under another rank's name must be refused.
        std::fs::copy(shard_path(&dir, 0), shard_path(&dir, 1)).expect("copy");
        for (rank, step, tag, field) in [
            (1usize, 3usize, 42u64, "rank"),
            (0, 4, 42, "step"),
            (0, 3, 43, "config hash"),
        ] {
            match read_shard(&dir, rank, step, tag) {
                Err(ShardError::Mismatch { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected {field} mismatch, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_and_truncation_are_refused() {
        let dir = std::env::temp_dir().join(format!("actcomp-shard-crc-{}", std::process::id()));
        write_shard(&dir, 0, 0, 1, &tensors()).expect("write");
        let path = shard_path(&dir, 0);
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            read_shard(&dir, 0, 0, 1),
            Err(ShardError::Corrupt { .. })
        ));
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("truncate");
        assert!(matches!(
            read_shard(&dir, 0, 0, 1),
            Err(ShardError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_is_an_io_error() {
        let dir = std::env::temp_dir().join("actcomp-shard-none");
        assert!(matches!(read_shard(&dir, 5, 0, 0), Err(ShardError::Io(_))));
    }
}
