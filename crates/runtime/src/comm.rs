//! Channel-based collectives for one tensor-parallel group.
//!
//! Each rank owns a [`TpGroup`] endpoint of a ring over
//! `std::sync::mpsc` channels. The compressed all-reduce runs the same
//! compressor arithmetic as the serial
//! [`actcomp_mp::CompressedAllReduce`] — summable codes (auto-encoder,
//! identity) are summed in rank order and decoded once; non-summable
//! messages (Top-K, Random-K, quantized) travel by all-gather and every
//! rank decodes and sums them locally — so a threaded run with the
//! identity compressor is bit-identical to the serial executor.

use crate::report::{timed, PhaseTimers};
use actcomp_compress::{Compressed, Compressor};
use actcomp_mp::CommBytes;
use actcomp_tensor::Tensor;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A message circulating on the tensor-parallel ring, tagged with the
/// rank that originated it.
#[derive(Debug, Clone)]
enum RingPayload {
    /// A compressed activation message.
    Code(Compressed),
    /// An uncompressed tensor (dense backward reduces).
    Dense(Tensor),
    /// Compressor-parameter gradients (auto-encoder sync).
    Grads(Vec<Tensor>),
}

type RingMsg = (usize, RingPayload);

/// One rank's endpoint of a tensor-parallel ring of `world` ranks.
///
/// All collectives are deterministic: gathered items are indexed by
/// origin rank and reduced in rank order `0..world`, so the result is
/// independent of thread scheduling.
pub struct TpGroup {
    /// This rank's index within the group.
    pub rank: usize,
    /// Group size.
    pub world: usize,
    next_tx: Option<Sender<RingMsg>>,
    prev_rx: Option<Receiver<RingMsg>>,
    /// Cumulative reduce traffic (per-rank accounting, matching the
    /// serial executor's formulas).
    pub bytes: CommBytes,
}

impl std::fmt::Debug for TpGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TpGroup({}/{})", self.rank, self.world)
    }
}

impl TpGroup {
    /// Builds the endpoints of a ring over `world` ranks; endpoint `t`
    /// sends to `(t + 1) % world` and receives from `(t − 1) % world`.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn ring(world: usize) -> Vec<TpGroup> {
        assert!(world > 0, "ring needs at least one rank");
        if world == 1 {
            return vec![TpGroup::solo()];
        }
        let links: Vec<(Sender<RingMsg>, Receiver<RingMsg>)> =
            (0..world).map(|_| channel()).collect();
        let mut txs: Vec<Option<Sender<RingMsg>>> = Vec::with_capacity(world);
        let mut rxs: Vec<Option<Receiver<RingMsg>>> = Vec::with_capacity(world);
        for (tx, rx) in links {
            txs.push(Some(tx));
            rxs.push(Some(rx));
        }
        // Link `t` carries traffic from rank t to rank (t + 1) % world:
        // rank t holds the sender of link t and the receiver of link
        // (t − 1) % world.
        (0..world)
            .map(|t| TpGroup {
                rank: t,
                world,
                next_tx: txs[t].take(),
                prev_rx: rxs[(t + world - 1) % world].take(),
                bytes: CommBytes::default(),
            })
            .collect()
    }

    /// A single-rank group: collectives degenerate to local arithmetic
    /// (matching the serial executor at `tp = 1`).
    pub fn solo() -> TpGroup {
        TpGroup {
            rank: 0,
            world: 1,
            next_tx: None,
            prev_rx: None,
            bytes: CommBytes::default(),
        }
    }

    /// All-gathers one payload per rank around the ring, returning the
    /// payloads indexed by origin rank. Blocking time is charged to the
    /// `wire` phase.
    fn all_gather(&mut self, own: RingPayload, timers: &mut PhaseTimers) -> Vec<RingPayload> {
        let mut out: Vec<Option<RingPayload>> = (0..self.world).map(|_| None).collect();
        out[self.rank] = Some(own.clone());
        if self.world == 1 {
            return out.into_iter().map(|o| o.expect("own payload")).collect();
        }
        timed(&mut timers.wire_s, || {
            let tx = self.next_tx.as_ref().expect("ring sender");
            let rx = self.prev_rx.as_ref().expect("ring receiver");
            let mut carry: RingMsg = (self.rank, own);
            for _ in 0..self.world - 1 {
                tx.send(carry).expect("ring peer hung up");
                let (origin, payload) = rx.recv().expect("ring peer hung up");
                out[origin] = Some(payload.clone());
                carry = (origin, payload);
            }
        });
        out.into_iter()
            .map(|o| o.expect("all-gather visited every rank"))
            .collect()
    }

    /// Compressed all-reduce of this rank's `partial` with the partials
    /// the peer ranks are concurrently contributing.
    ///
    /// Exactly mirrors the serial [`actcomp_mp::CompressedAllReduce`]:
    /// summable codes are summed in rank order and decoded once;
    /// non-summable messages are each decoded locally and summed in
    /// rank order. Byte accounting uses the same ring/all-gather
    /// formulas as the serial executor and accumulates into
    /// [`TpGroup::bytes`].
    pub fn compressed_all_reduce(
        &mut self,
        comp: &mut dyn Compressor,
        partial: &Tensor,
        timers: &mut PhaseTimers,
    ) -> Tensor {
        let p = self.world;
        let per_rank_ar = |bytes: usize| 2 * (p - 1) * bytes / p.max(1);
        let dense = per_rank_ar(partial.len() * 2);
        let msg = timed(&mut timers.encode_s, || comp.compress(partial));
        let summable = comp.summable();
        let gathered = self.all_gather(RingPayload::Code(msg), timers);
        let msgs: Vec<&Compressed> = gathered
            .iter()
            .map(|g| match g {
                RingPayload::Code(c) => c,
                _ => panic!("ring delivered a non-code payload to a reduce"),
            })
            .collect();
        let (out, wire) = timed(&mut timers.decode_s, || {
            if summable {
                let mut total = msgs[0].clone();
                for m in &msgs[1..] {
                    total = total.sum(m);
                }
                let wire = per_rank_ar(msgs[0].wire_bytes(2));
                (comp.decompress(&total), wire)
            } else {
                let mut gathered_bytes = 0;
                let mut out: Option<Tensor> = None;
                for m in &msgs {
                    gathered_bytes += m.wire_bytes(2);
                    let dec = comp.decompress(m);
                    match &mut out {
                        Some(acc) => acc.add_assign(&dec),
                        None => out = Some(dec),
                    }
                }
                let wire = gathered_bytes * (p - 1) / p.max(1);
                (out.expect("at least one rank"), wire)
            }
        });
        self.bytes.add(CommBytes { wire, dense });
        out
    }

    /// Exact (uncompressed) all-reduce, used for the backward reductions
    /// the serial executor performs as plain sums — no bytes counted, to
    /// match its accounting.
    pub fn dense_all_reduce(&mut self, partial: &Tensor, timers: &mut PhaseTimers) -> Tensor {
        let gathered = self.all_gather(RingPayload::Dense(partial.clone()), timers);
        timed(&mut timers.decode_s, || {
            let mut total: Option<Tensor> = None;
            for g in &gathered {
                let t = match g {
                    RingPayload::Dense(t) => t,
                    _ => panic!("ring delivered a non-dense payload to a dense reduce"),
                };
                match &mut total {
                    Some(acc) => acc.add_assign(t),
                    None => total = Some(t.clone()),
                }
            }
            total.expect("at least one rank")
        })
    }

    /// All-reduces `comp`'s parameter gradients across the group and
    /// installs the sum locally — the threaded counterpart of
    /// [`actcomp_mp::CompressedAllReduce::sync_param_grads`]. Summation
    /// runs in rank order, so replicated auto-encoder parameters stay
    /// bit-identical across ranks.
    pub fn sync_param_grads(&mut self, comp: &mut dyn Compressor, timers: &mut PhaseTimers) {
        let mut own: Vec<Tensor> = Vec::new();
        comp.visit_params(&mut |p| own.push(p.grad.clone()));
        let gathered = self.all_gather(RingPayload::Grads(own), timers);
        let sums = timed(&mut timers.decode_s, || {
            let mut sums: Vec<Tensor> = Vec::new();
            for g in &gathered {
                let grads = match g {
                    RingPayload::Grads(v) => v,
                    _ => panic!("ring delivered a non-grad payload to a grad sync"),
                };
                for (i, grad) in grads.iter().enumerate() {
                    if i == sums.len() {
                        sums.push(grad.clone());
                    } else {
                        sums[i].add_assign(grad);
                    }
                }
            }
            sums
        });
        let mut i = 0;
        comp.visit_params(&mut |p| {
            p.grad = sums[i].clone();
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::Identity;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn solo_reduce_matches_serial_single_worker() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [3, 8], 1.0);
        let mut g = TpGroup::solo();
        let mut comp = Identity::new();
        let mut timers = PhaseTimers::default();
        let out = g.compressed_all_reduce(&mut comp, &x, &mut timers);
        assert_eq!(out, x);
        assert_eq!(g.bytes.wire, 0);
    }

    #[test]
    fn threaded_identity_reduce_sums_in_rank_order() {
        let world = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts: Vec<Tensor> = (0..world)
            .map(|_| init::randn(&mut rng, [2, 8], 1.0))
            .collect();
        let mut expect = parts[0].clone();
        for p in &parts[1..] {
            expect.add_assign(p);
        }
        let groups = TpGroup::ring(world);
        let handles: Vec<_> = groups
            .into_iter()
            .zip(parts)
            .map(|(mut g, p)| {
                std::thread::spawn(move || {
                    let mut comp = Identity::new();
                    let mut timers = PhaseTimers::default();
                    let out = g.compressed_all_reduce(&mut comp, &p, &mut timers);
                    (out, g.bytes)
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("rank"))
            .collect();
        for (out, bytes) in &results {
            assert_eq!(out.max_abs_diff(&expect), 0.0, "exact rank-order sum");
            assert_eq!(bytes.wire, bytes.dense, "identity moves dense bytes");
        }
    }
}
