//! Channel-based ring collectives for one tensor-parallel group.
//!
//! Each rank owns a [`TpGroup`] endpoint of a ring over
//! `std::sync::mpsc` channels. Collectives run the same compressor
//! arithmetic as the serial [`actcomp_mp::CompressedAllReduce`], so a
//! threaded run with the identity compressor is bit-identical to the
//! serial executor.
//!
//! # Ring algorithm
//!
//! Dense reduces and summable-code reduces use a **pipelined chain
//! reduce plus ring broadcast** over row chunks:
//!
//! 1. *Chain reduce* (rank order `0 → 1 → … → p−1`): rank 0 ships each
//!    chunk of its partial; every rank in between adds its own rows to
//!    the buffer it received and forwards it. The buffer arriving at
//!    rank `p−1` holds `((x₀ + x₁) + x₂) + …` — exactly the serial
//!    executor's left fold in rank order, which is what keeps the
//!    threaded runtime bitwise equal to serial.
//! 2. *Broadcast* (`p−1 → 0 → 1 → … → p−2`): the root forwards each
//!    finished chunk around the ring; every rank copies it into its
//!    output.
//!
//! A textbook reduce-scatter + all-gather would be cheaper in maximum
//! per-rank traffic, but it reduces every chunk along a *different* rank
//! walk, so its floating-point association depends on the chunk's owner
//! — it cannot reproduce the serial left fold bit for bit. The chain
//! form keeps the fold while still moving at most `2N` elements per rank
//! (versus the gather-based `(p−1)N`, strictly fewer for `p ≥ 3`) and
//! `2(p−1)N` in aggregate across links, which is bandwidth-optimal for
//! an all-reduce.
//!
//! # Chunking and overlap
//!
//! Tensors are split into row chunks ([`RingTuning`]); chunk `i+1` is
//! being encoded/copied while chunk `i` is on the wire and chunk `i−1`
//! is being summed/decoded downstream. Rank 0 paces the pipeline: it
//! keeps at most `pipeline_depth` reduce chunks in flight beyond the
//! broadcasts it has consumed, so memory stays bounded without any
//! blocking sends (channels are unbounded; the lookahead cap is the only
//! back-pressure needed). Because every rank sends its reduce-phase
//! chunks in index order and broadcast forwards in index order, each
//! link's FIFO matches the receiver's processing order up to the
//! reduce/broadcast interleave, which a small stash absorbs.
//!
//! Summable codecs that declare [`Compressor::chunkable`] (identity,
//! auto-encoder) are encoded per chunk and their codes chain-reduced
//! with [`Compressed::sum`] — per-element rank-order folds, bitwise
//! equal to the unchunked message. Non-chunkable codecs travel as a
//! single chunk, preserving their whole-tensor semantics (global Top-K
//! selection, per-tensor quantization ranges, error-feedback residuals).
//! Non-summable messages still all-gather, but each message is decoded
//! as it arrives so decode overlaps the remaining wire hops; the final
//! summation stays in rank order.

use crate::link::{typed_pair, MsgRx, MsgTx, CHAN_RING};
use crate::report::{timed, PhaseTimers};
use crate::trace::TraceHandle;
use crate::wire::{put_f32_slice, put_u8, put_usize, Reader, WireError, WireMsg};
use actcomp_check::{ChannelId, Dir, MsgId};
use actcomp_compress::{Compressed, Compressor};
use actcomp_mp::CommBytes;
use actcomp_net::{Transport, TransportError};
use actcomp_tensor::{pool, Tensor, Workspace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Rows-per-chunk target when no explicit chunk size is configured:
/// split into this many chunks.
const DEFAULT_CHUNKS: usize = 4;

/// Default sender lookahead, in chunks, for the pipeline head (rank 0).
const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// Process-wide `--chunk-rows` override (0 = unset).
static CHUNK_ROWS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide `--pipeline-depth` override (0 = unset).
static PIPELINE_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Lazily-parsed `ACTCOMP_CHUNK_ROWS` environment value.
static ENV_CHUNK_ROWS: OnceLock<Option<usize>> = OnceLock::new();

/// Overrides the ring-collective chunk size (rows per chunk) for the
/// rest of the process — the CLI's `--chunk-rows` flag lands here after
/// validation. Takes precedence over `ACTCOMP_CHUNK_ROWS`.
///
/// # Panics
///
/// Panics if `rows` is zero (`actcomp check` rejects this statically as
/// `AC0501`); [`try_set_chunk_rows`] reports the same condition as a
/// typed error instead.
pub fn set_chunk_rows(rows: usize) {
    try_set_chunk_rows(rows).expect("chunk row count must be at least 1");
}

/// Fallible form of [`set_chunk_rows`]: rejects a zero row count as
/// [`RuntimeError::ZeroChunkRows`](crate::config::RuntimeError::ZeroChunkRows)
/// instead of panicking.
pub fn try_set_chunk_rows(rows: usize) -> Result<(), crate::config::RuntimeError> {
    if rows == 0 {
        return Err(crate::config::RuntimeError::ZeroChunkRows);
    }
    CHUNK_ROWS.store(rows, Ordering::Relaxed);
    Ok(())
}

/// Overrides the ring pipeline depth (maximum reduce chunks in flight
/// ahead of the broadcast) for the rest of the process — the CLI's
/// `--pipeline-depth` flag lands here after validation.
///
/// # Panics
///
/// Panics if `depth` is zero (`AC0502`); [`try_set_pipeline_depth`]
/// reports the same condition as a typed error instead.
pub fn set_pipeline_depth(depth: usize) {
    try_set_pipeline_depth(depth).expect("pipeline depth must be at least 1");
}

/// Fallible form of [`set_pipeline_depth`]: rejects a zero depth as
/// [`RuntimeError::ZeroPipelineDepth`](crate::config::RuntimeError::ZeroPipelineDepth)
/// instead of panicking.
pub fn try_set_pipeline_depth(depth: usize) -> Result<(), crate::config::RuntimeError> {
    if depth == 0 {
        return Err(crate::config::RuntimeError::ZeroPipelineDepth);
    }
    PIPELINE_DEPTH.store(depth, Ordering::Relaxed);
    Ok(())
}

fn env_chunk_rows() -> Option<usize> {
    *ENV_CHUNK_ROWS.get_or_init(|| match std::env::var("ACTCOMP_CHUNK_ROWS") {
        Ok(v) => match pool::parse_count_spec(&v, "chunk row count") {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!(
                    "warning: ignoring invalid ACTCOMP_CHUNK_ROWS ({e}); \
                     using automatic chunking"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// Chunking/pipelining knobs for ring collectives.
///
/// Every endpoint of a ring captures the process-wide configuration at
/// [`TpGroup::ring`] time; tests may override the copy on each endpoint,
/// as long as all endpoints of one ring agree (the chunk plan must be
/// identical on every rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RingTuning {
    /// Rows per chunk; `None` picks `ceil(rows / 4)` per collective.
    pub chunk_rows: Option<usize>,
    /// Maximum reduce chunks rank 0 keeps in flight ahead of the
    /// broadcasts it has consumed (≥ 1).
    pub pipeline_depth: usize,
}

impl RingTuning {
    /// Resolves the process-wide configuration: [`set_chunk_rows`] /
    /// [`set_pipeline_depth`] first, then `ACTCOMP_CHUNK_ROWS`, then
    /// automatic chunking at the default pipeline depth (4).
    pub fn configured() -> RingTuning {
        let chunk_rows = match CHUNK_ROWS.load(Ordering::Relaxed) {
            0 => env_chunk_rows(),
            n => Some(n),
        };
        let pipeline_depth = match PIPELINE_DEPTH.load(Ordering::Relaxed) {
            0 => DEFAULT_PIPELINE_DEPTH,
            n => n,
        };
        RingTuning {
            chunk_rows,
            pipeline_depth,
        }
    }

    /// The per-chunk row counts for a `rows`-row collective. Depends
    /// only on `(self, rows)` — never on runtime state — so every rank
    /// of a ring derives the same plan independently. Public so the
    /// static comm-protocol analyzer can pin its mirror
    /// (`actcomp_check::collectives::ring_chunk_plan`) against the
    /// engine's plan in cross-crate tests.
    pub fn plan(&self, rows: usize) -> Vec<usize> {
        if rows == 0 {
            return vec![0];
        }
        let per = self
            .chunk_rows
            .unwrap_or_else(|| rows.div_ceil(DEFAULT_CHUNKS))
            .max(1);
        let mut plan = Vec::with_capacity(rows.div_ceil(per));
        let mut left = rows;
        while left > 0 {
            let c = per.min(left);
            plan.push(c);
            left -= c;
        }
        plan
    }
}

impl Default for RingTuning {
    fn default() -> Self {
        RingTuning {
            chunk_rows: None,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
        }
    }
}

/// An item travelling a whole-message all-gather, tagged with origin.
#[derive(Debug, Clone)]
pub(crate) enum GatherPayload {
    /// A compressed activation message (non-summable reduce).
    Code(Compressed),
    /// An uncompressed tensor (the gather-based dense reference path).
    Dense(Tensor),
    /// Compressor-parameter gradients (auto-encoder sync).
    Grads(Vec<Tensor>),
}

/// One row chunk of a chain-reduce / broadcast collective.
#[derive(Debug)]
pub(crate) enum ChunkData {
    /// Raw rows of a dense reduce (owned, recycled via `Workspace`).
    Dense(Vec<f32>),
    /// A per-chunk code of a summable compressed reduce.
    Code(Compressed),
}

impl ChunkData {
    /// fp16-equivalent bytes this chunk occupies on the wire.
    fn wire_bytes(&self) -> usize {
        match self {
            ChunkData::Dense(v) => v.len() * 2,
            ChunkData::Code(c) => c.wire_bytes(2),
        }
    }
}

/// A chunk message: reduce-phase (`bcast = false`) or broadcast-phase.
#[derive(Debug)]
pub(crate) struct ChunkMsg {
    bcast: bool,
    idx: usize,
    data: ChunkData,
}

/// Everything a ring link can carry.
#[derive(Debug)]
pub(crate) enum RingMsg {
    Gather(usize, GatherPayload),
    Chunk(ChunkMsg),
}

impl WireMsg for RingMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RingMsg::Gather(origin, payload) => {
                put_u8(out, 0);
                put_usize(out, *origin);
                match payload {
                    GatherPayload::Code(c) => {
                        put_u8(out, 0);
                        c.encode(out);
                    }
                    GatherPayload::Dense(t) => {
                        put_u8(out, 1);
                        t.encode(out);
                    }
                    GatherPayload::Grads(v) => {
                        put_u8(out, 2);
                        v.encode(out);
                    }
                }
            }
            RingMsg::Chunk(m) => {
                put_u8(out, 1);
                put_u8(out, m.bcast as u8);
                put_usize(out, m.idx);
                match &m.data {
                    ChunkData::Dense(rows) => {
                        put_u8(out, 0);
                        put_f32_slice(out, rows);
                    }
                    ChunkData::Code(c) => {
                        put_u8(out, 1);
                        c.encode(out);
                    }
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8("ring message tag")? {
            0 => {
                let origin = r.read_usize("gather origin")?;
                let payload = match r.read_u8("gather payload tag")? {
                    0 => GatherPayload::Code(Compressed::decode(r)?),
                    1 => GatherPayload::Dense(Tensor::decode(r)?),
                    2 => GatherPayload::Grads(Vec::<Tensor>::decode(r)?),
                    _ => {
                        return Err(WireError {
                            what: "gather payload tag",
                        })
                    }
                };
                Ok(RingMsg::Gather(origin, payload))
            }
            1 => {
                let bcast = r.read_u8("chunk bcast flag")? != 0;
                let idx = r.read_usize("chunk index")?;
                let data = match r.read_u8("chunk data tag")? {
                    0 => {
                        let n = r.read_usize("dense chunk length")?;
                        let mut rows = Vec::with_capacity(n.min(1 << 24));
                        for _ in 0..n {
                            rows.push(r.read_f32("dense chunk row")?);
                        }
                        ChunkData::Dense(rows)
                    }
                    1 => ChunkData::Code(Compressed::decode(r)?),
                    _ => {
                        return Err(WireError {
                            what: "chunk data tag",
                        })
                    }
                };
                Ok(RingMsg::Chunk(ChunkMsg { bcast, idx, data }))
            }
            _ => Err(WireError {
                what: "ring message tag",
            }),
        }
    }
}

/// Treats any tensor as `[rows, width]` for chunking purposes (rank-1
/// tensors chunk per element).
fn rows_width(t: &Tensor) -> (usize, usize) {
    let len = t.len();
    if len == 0 {
        return (1, 0);
    }
    let rows = if t.rank() >= 1 { t.dims()[0].max(1) } else { 1 };
    (rows, len / rows)
}

/// Cumulative `(start, end)` element ranges for a row-chunk plan.
fn elem_bounds(plan: &[usize], width: usize) -> Vec<(usize, usize)> {
    let mut bounds = Vec::with_capacity(plan.len());
    let mut at = 0;
    for &rows in plan {
        bounds.push((at * width, (at + rows) * width));
        at += rows;
    }
    bounds
}

/// Cumulative `(start, end)` row ranges for a row-chunk plan.
fn row_bounds(plan: &[usize]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::with_capacity(plan.len());
    let mut at = 0;
    for &rows in plan {
        bounds.push((at, at + rows));
        at += rows;
    }
    bounds
}

/// Encodes chunk `idx` of `partial` (the whole tensor when the plan is a
/// single chunk), charging the compressor to `encode_s` and adding the
/// code's wire size to `own_wire`.
fn encode_chunk(
    comp: &mut dyn Compressor,
    partial: &Tensor,
    bounds: &[(usize, usize)],
    idx: usize,
    timers: &mut PhaseTimers,
    own_wire: &mut usize,
) -> Compressed {
    let code = if bounds.len() == 1 {
        timed(&mut timers.encode_s, || comp.compress(partial))
    } else {
        let (r0, r1) = bounds[idx];
        let chunk = partial.slice_rows(r0, r1);
        timed(&mut timers.encode_s, || comp.compress(&chunk))
    };
    *own_wire += code.wire_bytes(2);
    code
}

/// Decodes a summed chunk code into rows `ebounds[idx]` of `out` (or
/// into `single` when the collective is unchunked, avoiding the copy).
fn consume_total(
    comp: &dyn Compressor,
    code: &Compressed,
    idx: usize,
    ebounds: &[(usize, usize)],
    out: &mut Option<Tensor>,
    single: &mut Option<Tensor>,
    timers: &mut PhaseTimers,
) {
    let dec = timed(&mut timers.decode_s, || comp.decompress(code));
    match out {
        Some(o) => {
            let (s, e) = ebounds[idx];
            o.as_mut_slice()[s..e].copy_from_slice(dec.as_slice());
        }
        None => *single = Some(dec),
    }
}

/// One rank's endpoint of a tensor-parallel ring of `world` ranks.
///
/// All collectives are deterministic: reductions always fold in rank
/// order `0..world` with a chunk plan derived purely from shapes and
/// [`RingTuning`], so the result is independent of thread scheduling and
/// of the chunk plan itself (for dense and chunkable-codec reduces).
pub struct TpGroup {
    /// This rank's index within the group.
    pub rank: usize,
    /// Group size.
    pub world: usize,
    next_tx: Option<MsgTx<RingMsg>>,
    prev_rx: Option<MsgRx<RingMsg>>,
    /// Cumulative reduce traffic (per-rank accounting, matching the
    /// serial executor's formulas — dense backward reduces count
    /// nothing here, exactly as in serial).
    pub bytes: CommBytes,
    /// Ring-vs-gather accounting: `wire` is the fp16-equivalent bytes
    /// this rank *actually sent* in collectives; `dense` is what the
    /// gather-based implementation of the same collectives would have
    /// sent per rank. For the gather reference path the two are equal;
    /// for ring collectives `wire ≤ dense`, strictly less for `p ≥ 3`.
    pub ring_bytes: CommBytes,
    /// Chunking/pipelining knobs, captured from the process-wide
    /// configuration at ring construction. Tests may override, but all
    /// endpoints of one ring must agree.
    pub tuning: RingTuning,
    /// Audit-trace handle; `None` (the default) records nothing.
    trace: Option<TraceHandle>,
    /// Ordinal of the next collective on this ring, reset per step —
    /// the `coll` component of traced chunk/gather message identities.
    coll: usize,
    /// Ordinal of the collective currently in flight.
    active_coll: usize,
}

impl std::fmt::Debug for TpGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TpGroup({}/{})", self.rank, self.world)
    }
}

impl TpGroup {
    /// Builds the endpoints of a ring over `world` ranks; endpoint `t`
    /// sends to `(t + 1) % world` and receives from `(t − 1) % world`.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn ring(world: usize) -> Vec<TpGroup> {
        assert!(world > 0, "ring needs at least one rank");
        if world == 1 {
            return vec![TpGroup::solo()];
        }
        let links: Vec<(MsgTx<RingMsg>, MsgRx<RingMsg>)> =
            (0..world).map(|_| typed_pair()).collect();
        let mut txs: Vec<Option<MsgTx<RingMsg>>> = Vec::with_capacity(world);
        let mut rxs: Vec<Option<MsgRx<RingMsg>>> = Vec::with_capacity(world);
        for (tx, rx) in links {
            txs.push(Some(tx));
            rxs.push(Some(rx));
        }
        // Link `t` carries traffic from rank t to rank (t + 1) % world:
        // rank t holds the sender of link t and the receiver of link
        // (t − 1) % world.
        (0..world)
            .map(|t| {
                TpGroup::from_links(t, world, txs[t].take(), rxs[(t + world - 1) % world].take())
            })
            .collect()
    }

    /// Builds one endpoint from pre-opened links (typed channels or
    /// framed transport channels). `tx`/`rx` must be `Some` whenever
    /// `world > 1`.
    pub(crate) fn from_links(
        rank: usize,
        world: usize,
        tx: Option<MsgTx<RingMsg>>,
        rx: Option<MsgRx<RingMsg>>,
    ) -> TpGroup {
        TpGroup {
            rank,
            world,
            next_tx: tx,
            prev_rx: rx,
            bytes: CommBytes::default(),
            ring_bytes: CommBytes::default(),
            tuning: RingTuning::configured(),
            trace: None,
            coll: 0,
            active_coll: 0,
        }
    }

    /// Builds one endpoint of a ring spanning a transport's whole world:
    /// rank `r` sends to `(r + 1) % world` and receives from
    /// `(r − 1) % world` on the ring channel. Every rank of the
    /// transport's world must call this (the collectives benchmark's
    /// entry point for measuring rings over sockets).
    pub fn over_transport(transport: &mut dyn Transport) -> Result<TpGroup, TransportError> {
        let (rank, world) = (transport.rank(), transport.world());
        if world == 1 {
            return Ok(TpGroup::solo());
        }
        let tx = transport.open_send((rank + 1) % world, CHAN_RING)?;
        let rx = transport.open_recv((rank + world - 1) % world, CHAN_RING)?;
        Ok(TpGroup::from_links(
            rank,
            world,
            Some(MsgTx::Framed(std::sync::Mutex::new(tx))),
            Some(MsgRx::Framed(std::sync::Mutex::new(rx))),
        ))
    }

    /// A single-rank group: collectives degenerate to local arithmetic
    /// (matching the serial executor at `tp = 1`).
    pub fn solo() -> TpGroup {
        TpGroup {
            rank: 0,
            world: 1,
            next_tx: None,
            prev_rx: None,
            bytes: CommBytes::default(),
            ring_bytes: CommBytes::default(),
            tuning: RingTuning::configured(),
            trace: None,
            coll: 0,
            active_coll: 0,
        }
    }

    /// Attaches an audit-trace handle: every subsequent ring send/recv
    /// is recorded in the static analyzer's event vocabulary.
    pub(crate) fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Restarts collective numbering — the worker calls this at the top
    /// of each step so traced ordinals match the per-step static graph.
    pub(crate) fn reset_step(&mut self) {
        self.coll = 0;
    }

    /// Opens the next collective on this ring, fixing the ordinal that
    /// tags its traced messages.
    fn begin_collective(&mut self) {
        self.active_coll = self.coll;
        self.coll += 1;
    }

    /// The traced channel for this rank's outgoing ring link.
    fn trace_send_channel(&self, trace: &TraceHandle) -> ChannelId {
        ChannelId::Ring {
            stage: trace.stage(),
            link: self.rank,
        }
    }

    /// The traced channel for this rank's incoming ring link.
    fn trace_recv_channel(&self, trace: &TraceHandle) -> ChannelId {
        ChannelId::Ring {
            stage: trace.stage(),
            link: (self.rank + self.world - 1) % self.world,
        }
    }

    /// Sends one chunk message to the next rank, counting its actual
    /// wire bytes.
    fn send_chunk(&mut self, bcast: bool, idx: usize, data: ChunkData, timers: &mut PhaseTimers) {
        self.ring_bytes.wire += data.wire_bytes();
        if let Some(trace) = &self.trace {
            trace.record(
                Dir::Send,
                self.trace_send_channel(trace),
                MsgId::Chunk {
                    coll: self.active_coll,
                    bcast,
                    idx,
                },
                Some(data.wire_bytes()),
            );
        }
        let msg = RingMsg::Chunk(ChunkMsg { bcast, idx, data });
        let tx = self.next_tx.as_ref().expect("ring sender");
        timed(&mut timers.wire_s, || {
            tx.send(msg).expect("ring peer hung up");
        });
    }

    /// Receives the chunk message `(bcast, idx)`, stashing any other
    /// chunk that arrives first (the reduce/broadcast interleave on a
    /// link can run at most `pipeline_depth` messages ahead).
    fn recv_chunk(
        &self,
        bcast: bool,
        idx: usize,
        stash: &mut Vec<ChunkMsg>,
        timers: &mut PhaseTimers,
    ) -> ChunkData {
        // Consumption — not channel arrival — is the traced event, so
        // a stash hit records exactly like a direct receive.
        if let Some(trace) = &self.trace {
            trace.record(
                Dir::Recv,
                self.trace_recv_channel(trace),
                MsgId::Chunk {
                    coll: self.active_coll,
                    bcast,
                    idx,
                },
                None,
            );
        }
        if let Some(pos) = stash.iter().position(|m| m.bcast == bcast && m.idx == idx) {
            return stash.swap_remove(pos).data;
        }
        let rx = self.prev_rx.as_ref().expect("ring receiver");
        timed(&mut timers.wire_s, || loop {
            match rx.recv().expect("ring peer hung up") {
                RingMsg::Chunk(m) if m.bcast == bcast && m.idx == idx => return m.data,
                RingMsg::Chunk(m) => stash.push(m),
                RingMsg::Gather(..) => {
                    panic!("ring delivered a gather message to a chunked collective")
                }
            }
        })
    }

    /// Receives a chunk that must be dense rows.
    fn recv_dense_chunk(
        &self,
        bcast: bool,
        idx: usize,
        stash: &mut Vec<ChunkMsg>,
        timers: &mut PhaseTimers,
    ) -> Vec<f32> {
        match self.recv_chunk(bcast, idx, stash, timers) {
            ChunkData::Dense(b) => b,
            ChunkData::Code(_) => panic!("dense reduce received a code chunk"),
        }
    }

    /// Receives a chunk that must be a code.
    fn recv_code_chunk(
        &self,
        bcast: bool,
        idx: usize,
        stash: &mut Vec<ChunkMsg>,
        timers: &mut PhaseTimers,
    ) -> Compressed {
        match self.recv_chunk(bcast, idx, stash, timers) {
            ChunkData::Code(c) => c,
            ChunkData::Dense(_) => panic!("code reduce received a dense chunk"),
        }
    }

    /// All-gathers one payload per rank around the ring, returning the
    /// payloads indexed by origin rank. Blocking time is charged to the
    /// `wire` phase.
    fn all_gather(&mut self, own: GatherPayload, timers: &mut PhaseTimers) -> Vec<GatherPayload> {
        let mut out: Vec<Option<GatherPayload>> = (0..self.world).map(|_| None).collect();
        out[self.rank] = Some(own.clone());
        if self.world == 1 {
            return out.into_iter().map(|o| o.expect("own payload")).collect();
        }
        self.begin_collective();
        timed(&mut timers.wire_s, || {
            let tx = self.next_tx.as_ref().expect("ring sender");
            let rx = self.prev_rx.as_ref().expect("ring receiver");
            let mut carry = (self.rank, own);
            for _ in 0..self.world - 1 {
                if let Some(trace) = &self.trace {
                    trace.record(
                        Dir::Send,
                        self.trace_send_channel(trace),
                        MsgId::Gather {
                            coll: self.active_coll,
                            origin: carry.0,
                        },
                        None,
                    );
                }
                tx.send(RingMsg::Gather(carry.0, carry.1))
                    .expect("ring peer hung up");
                let (origin, payload) = match rx.recv().expect("ring peer hung up") {
                    RingMsg::Gather(origin, payload) => (origin, payload),
                    RingMsg::Chunk(_) => {
                        panic!("ring delivered a chunk message to an all-gather")
                    }
                };
                if let Some(trace) = &self.trace {
                    trace.record(
                        Dir::Recv,
                        self.trace_recv_channel(trace),
                        MsgId::Gather {
                            coll: self.active_coll,
                            origin,
                        },
                        None,
                    );
                }
                out[origin] = Some(payload.clone());
                carry = (origin, payload);
            }
        });
        out.into_iter()
            .map(|o| o.expect("all-gather visited every rank"))
            .collect()
    }

    /// The row-chunk plan `compressed_all_reduce` uses for `t`: a real
    /// plan only when the codec is chunkable, the input is rank 2, and
    /// the group has peers; a single whole-tensor chunk otherwise.
    /// [`TpGroup::compressed_backward`] derives the same plan from the
    /// gradient's (identical) shape to pop the per-chunk caches.
    fn codec_plan(&self, comp: &dyn Compressor, t: &Tensor) -> Vec<usize> {
        if self.world > 1 && comp.chunkable() && t.rank() == 2 && t.dims()[0] > 0 {
            self.tuning.plan(t.dims()[0])
        } else {
            vec![rows_width(t).0]
        }
    }

    /// Compressed all-reduce of this rank's `partial` with the partials
    /// the peer ranks are concurrently contributing.
    ///
    /// Mirrors the serial [`actcomp_mp::CompressedAllReduce`] bit for
    /// bit: summable codes are chain-reduced in rank order and decoded
    /// once (per chunk, for chunkable codecs); non-summable messages are
    /// all-gathered, decoded as they arrive, and summed in rank order.
    /// Byte accounting uses the same formulas as the serial executor and
    /// accumulates into [`TpGroup::bytes`]; the whole call is also
    /// timed into `collective_s` (which overlaps the encode/wire/decode
    /// attribution rather than adding to it).
    pub fn compressed_all_reduce(
        &mut self,
        comp: &mut dyn Compressor,
        partial: &Tensor,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        let t0 = Instant::now();
        let out = if self.world == 1 {
            // Solo: compress/decompress locally, zero bytes — identical
            // to the serial executor at tp = 1.
            let msg = timed(&mut timers.encode_s, || comp.compress(partial));
            timed(&mut timers.decode_s, || comp.decompress(&msg))
        } else if comp.summable() {
            self.summable_ring(comp, partial, timers, ws)
        } else {
            self.gathered_reduce(comp, partial, timers)
        };
        timers.collective_s += t0.elapsed().as_secs_f64();
        out
    }

    /// Chain-reduce + broadcast over per-chunk codes of a summable
    /// compressor (see the module docs for the schedule).
    fn summable_ring(
        &mut self,
        comp: &mut dyn Compressor,
        partial: &Tensor,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        self.begin_collective();
        let plan = self.codec_plan(comp, partial);
        let total = plan.len();
        let bounds = row_bounds(&plan);
        let (_, width) = rows_width(partial);
        let ebounds = elem_bounds(&plan, width);
        let (r, p) = (self.rank, self.world);
        let depth = self.tuning.pipeline_depth.max(1);
        let mut stash: Vec<ChunkMsg> = Vec::new();
        let mut own_wire = 0usize;
        // Unchunked collectives return the decoded tensor directly
        // (`single`); chunked ones assemble rows into a leased `out`.
        let mut out = (total > 1).then(|| ws.lease_tensor(partial.shape().clone()));
        let mut single: Option<Tensor> = None;

        if r == 0 {
            let mut sent = 0;
            while sent < depth.min(total) {
                let code = encode_chunk(comp, partial, &bounds, sent, timers, &mut own_wire);
                self.send_chunk(false, sent, ChunkData::Code(code), timers);
                sent += 1;
            }
            for idx in 0..total {
                let code = self.recv_code_chunk(true, idx, &mut stash, timers);
                consume_total(&*comp, &code, idx, &ebounds, &mut out, &mut single, timers);
                if p > 2 {
                    self.send_chunk(true, idx, ChunkData::Code(code), timers);
                }
                if sent < total {
                    let code = encode_chunk(comp, partial, &bounds, sent, timers, &mut own_wire);
                    self.send_chunk(false, sent, ChunkData::Code(code), timers);
                    sent += 1;
                }
            }
        } else if r < p - 1 {
            for idx in 0..total {
                // Encoding before the blocking receive overlaps this
                // rank's encode with the upstream chain work.
                let own = encode_chunk(comp, partial, &bounds, idx, timers, &mut own_wire);
                let prev = self.recv_code_chunk(false, idx, &mut stash, timers);
                let summed = timed(&mut timers.decode_s, || prev.sum(&own));
                self.send_chunk(false, idx, ChunkData::Code(summed), timers);
            }
            for idx in 0..total {
                let code = self.recv_code_chunk(true, idx, &mut stash, timers);
                consume_total(&*comp, &code, idx, &ebounds, &mut out, &mut single, timers);
                if r != p - 2 {
                    self.send_chunk(true, idx, ChunkData::Code(code), timers);
                }
            }
        } else {
            for idx in 0..total {
                let own = encode_chunk(comp, partial, &bounds, idx, timers, &mut own_wire);
                let prev = self.recv_code_chunk(false, idx, &mut stash, timers);
                let summed = timed(&mut timers.decode_s, || prev.sum(&own));
                // Ship the total downstream before decoding locally so
                // peers' decodes overlap ours.
                self.send_chunk(true, idx, ChunkData::Code(summed.clone()), timers);
                consume_total(
                    &*comp,
                    &summed,
                    idx,
                    &ebounds,
                    &mut out,
                    &mut single,
                    timers,
                );
            }
        }
        debug_assert!(stash.is_empty(), "collective left chunks in the stash");

        // Serial-matching accounting: an all-reduce of `b` own bytes
        // costs `2 (p−1) b / p` per rank.
        let per_rank_ar = |bytes: usize| 2 * (p - 1) * bytes / p;
        self.bytes.add(CommBytes {
            wire: per_rank_ar(own_wire),
            dense: per_rank_ar(partial.len() * 2),
        });
        // Gather-equivalent baseline for the ring-vs-gather comparison.
        self.ring_bytes.dense += (p - 1) * own_wire;
        match out {
            Some(o) => o,
            None => single.expect("unchunked collective decoded once"),
        }
    }

    /// All-gather reduce for non-summable codecs, decoding each message
    /// as it arrives so decode overlaps the remaining wire hops.
    fn gathered_reduce(
        &mut self,
        comp: &mut dyn Compressor,
        partial: &Tensor,
        timers: &mut PhaseTimers,
    ) -> Tensor {
        self.begin_collective();
        let p = self.world;
        let msg = timed(&mut timers.encode_s, || comp.compress(partial));
        let mut gathered_bytes = msg.wire_bytes(2);
        let mut sent_bytes = msg.wire_bytes(2);
        let mut decs: Vec<Option<Tensor>> = (0..p).map(|_| None).collect();
        {
            let tx = self.next_tx.as_ref().expect("ring sender");
            let rx = self.prev_rx.as_ref().expect("ring receiver");
            if let Some(trace) = &self.trace {
                trace.record(
                    Dir::Send,
                    self.trace_send_channel(trace),
                    MsgId::Gather {
                        coll: self.active_coll,
                        origin: self.rank,
                    },
                    Some(msg.wire_bytes(2)),
                );
            }
            timed(&mut timers.wire_s, || {
                tx.send(RingMsg::Gather(self.rank, GatherPayload::Code(msg.clone())))
                    .expect("ring peer hung up");
            });
            // Own decode runs while peers encode and ship.
            decs[self.rank] = Some(timed(&mut timers.decode_s, || comp.decompress(&msg)));
            for hop in 0..p - 1 {
                let (origin, code) = timed(&mut timers.wire_s, || {
                    match rx.recv().expect("ring peer hung up") {
                        RingMsg::Gather(origin, GatherPayload::Code(code)) => (origin, code),
                        _ => panic!("gathered reduce received a non-code message"),
                    }
                });
                if let Some(trace) = &self.trace {
                    trace.record(
                        Dir::Recv,
                        self.trace_recv_channel(trace),
                        MsgId::Gather {
                            coll: self.active_coll,
                            origin,
                        },
                        None,
                    );
                }
                gathered_bytes += code.wire_bytes(2);
                if hop + 1 < p - 1 {
                    sent_bytes += code.wire_bytes(2);
                    if let Some(trace) = &self.trace {
                        trace.record(
                            Dir::Send,
                            self.trace_send_channel(trace),
                            MsgId::Gather {
                                coll: self.active_coll,
                                origin,
                            },
                            Some(code.wire_bytes(2)),
                        );
                    }
                    timed(&mut timers.wire_s, || {
                        tx.send(RingMsg::Gather(origin, GatherPayload::Code(code.clone())))
                            .expect("ring peer hung up");
                    });
                }
                decs[origin] = Some(timed(&mut timers.decode_s, || comp.decompress(&code)));
            }
        }
        let out = timed(&mut timers.decode_s, || {
            let mut it = decs
                .into_iter()
                .map(|d| d.expect("gather visited every rank"));
            let mut acc = it.next().expect("at least one rank");
            for t in it {
                acc.add_assign(&t);
            }
            acc
        });
        self.bytes.add(CommBytes {
            wire: gathered_bytes * (p - 1) / p,
            dense: 2 * (p - 1) * (partial.len() * 2) / p,
        });
        // This path *is* a gather: actual equals the gather baseline.
        self.ring_bytes.add(CommBytes {
            wire: sent_bytes,
            dense: sent_bytes,
        });
        out
    }

    /// Exact (uncompressed) ring all-reduce over row chunks, used for
    /// the backward reductions the serial executor performs as plain
    /// sums — no bytes counted into [`TpGroup::bytes`], to match its
    /// accounting; actual traffic lands in [`TpGroup::ring_bytes`].
    ///
    /// Received chunk buffers are reused in place along the chain (no
    /// full-tensor clone per hop) and recycled into `ws` when consumed.
    pub fn dense_all_reduce(
        &mut self,
        partial: &Tensor,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        if self.world == 1 || partial.is_empty() {
            return partial.clone();
        }
        let t0 = Instant::now();
        let out = self.dense_ring(partial, timers, ws);
        timers.collective_s += t0.elapsed().as_secs_f64();
        self.ring_bytes.dense += (self.world - 1) * partial.len() * 2;
        out
    }

    /// The chunked chain-reduce + broadcast schedule for dense rows.
    fn dense_ring(
        &mut self,
        partial: &Tensor,
        timers: &mut PhaseTimers,
        ws: &mut Workspace,
    ) -> Tensor {
        self.begin_collective();
        let (rows, width) = rows_width(partial);
        let plan = self.tuning.plan(rows);
        let total = plan.len();
        let bounds = elem_bounds(&plan, width);
        let data = partial.as_slice();
        let mut out = ws.lease_tensor(partial.shape().clone());
        let (r, p) = (self.rank, self.world);
        let depth = self.tuning.pipeline_depth.max(1);
        let mut stash: Vec<ChunkMsg> = Vec::new();

        if r == 0 {
            let mut sent = 0;
            let ship = |g: &mut Self, ws: &mut Workspace, idx: usize, timers: &mut PhaseTimers| {
                let (s, e) = bounds[idx];
                let mut buf = ws.lease(e - s);
                buf.copy_from_slice(&data[s..e]);
                g.send_chunk(false, idx, ChunkData::Dense(buf), timers);
            };
            while sent < depth.min(total) {
                ship(self, ws, sent, timers);
                sent += 1;
            }
            for (idx, &(s, e)) in bounds.iter().enumerate() {
                let buf = self.recv_dense_chunk(true, idx, &mut stash, timers);
                timed(&mut timers.decode_s, || {
                    out.as_mut_slice()[s..e].copy_from_slice(&buf);
                });
                if p > 2 {
                    self.send_chunk(true, idx, ChunkData::Dense(buf), timers);
                } else {
                    ws.recycle(buf);
                }
                if sent < total {
                    ship(self, ws, sent, timers);
                    sent += 1;
                }
            }
        } else if r < p - 1 {
            for (idx, &(s, e)) in bounds.iter().enumerate() {
                let mut buf = self.recv_dense_chunk(false, idx, &mut stash, timers);
                timed(&mut timers.decode_s, || {
                    for (b, &v) in buf.iter_mut().zip(&data[s..e]) {
                        *b += v;
                    }
                });
                self.send_chunk(false, idx, ChunkData::Dense(buf), timers);
            }
            for (idx, &(s, e)) in bounds.iter().enumerate() {
                let buf = self.recv_dense_chunk(true, idx, &mut stash, timers);
                timed(&mut timers.decode_s, || {
                    out.as_mut_slice()[s..e].copy_from_slice(&buf);
                });
                if r != p - 2 {
                    self.send_chunk(true, idx, ChunkData::Dense(buf), timers);
                } else {
                    ws.recycle(buf);
                }
            }
        } else {
            for (idx, &(s, e)) in bounds.iter().enumerate() {
                let mut buf = self.recv_dense_chunk(false, idx, &mut stash, timers);
                timed(&mut timers.decode_s, || {
                    for (b, &v) in buf.iter_mut().zip(&data[s..e]) {
                        *b += v;
                    }
                    out.as_mut_slice()[s..e].copy_from_slice(&buf);
                });
                self.send_chunk(true, idx, ChunkData::Dense(buf), timers);
            }
        }
        debug_assert!(stash.is_empty(), "collective left chunks in the stash");
        out
    }

    /// Reference gather-based dense all-reduce — the pre-ring
    /// implementation, kept as the bitwise oracle for the ring path and
    /// as the "before" side of the collectives benchmark. Clones the
    /// full tensor per hop, sums gathered tensors in rank order.
    pub fn dense_all_reduce_gather(
        &mut self,
        partial: &Tensor,
        timers: &mut PhaseTimers,
    ) -> Tensor {
        let t0 = Instant::now();
        let gathered = self.all_gather(GatherPayload::Dense(partial.clone()), timers);
        let out = timed(&mut timers.decode_s, || {
            let mut total: Option<Tensor> = None;
            for g in &gathered {
                let t = match g {
                    GatherPayload::Dense(t) => t,
                    _ => panic!("ring delivered a non-dense payload to a dense reduce"),
                };
                match &mut total {
                    Some(acc) => acc.add_assign(t),
                    None => total = Some(t.clone()),
                }
            }
            total.expect("at least one rank")
        });
        timers.collective_s += t0.elapsed().as_secs_f64();
        if self.world > 1 {
            let moved = (self.world - 1) * partial.len() * 2;
            self.ring_bytes.add(CommBytes {
                wire: moved,
                dense: moved,
            });
        }
        out
    }

    /// Runs the codec backward for a collective that
    /// [`TpGroup::compressed_all_reduce`] chunked: slices `dy` with the
    /// same shape-only plan, pops the per-chunk LIFO caches in *reverse*
    /// chunk order, and reassembles the per-chunk gradients in forward
    /// order. For unchunked codecs this is exactly `comp.backward(dy)`.
    pub fn compressed_backward(
        &self,
        comp: &mut dyn Compressor,
        dy: &Tensor,
        timers: &mut PhaseTimers,
    ) -> Tensor {
        let plan = self.codec_plan(comp, dy);
        if plan.len() <= 1 {
            return timed(&mut timers.encode_s, || comp.backward(dy));
        }
        timed(&mut timers.encode_s, || {
            let bounds = row_bounds(&plan);
            let mut parts: Vec<Option<Tensor>> = (0..plan.len()).map(|_| None).collect();
            for idx in (0..plan.len()).rev() {
                let (r0, r1) = bounds[idx];
                parts[idx] = Some(comp.backward(&dy.slice_rows(r0, r1)));
            }
            let owned: Vec<Tensor> = parts
                .into_iter()
                .map(|p| p.expect("every chunk ran backward"))
                .collect();
            let refs: Vec<&Tensor> = owned.iter().collect();
            Tensor::concat_rows(&refs)
        })
    }

    /// All-reduces `comp`'s parameter gradients across the group and
    /// installs the sum locally — the threaded counterpart of
    /// [`actcomp_mp::CompressedAllReduce::sync_param_grads`]. Summation
    /// runs in rank order, so replicated auto-encoder parameters stay
    /// bit-identical across ranks.
    pub fn sync_param_grads(&mut self, comp: &mut dyn Compressor, timers: &mut PhaseTimers) {
        let mut own: Vec<Tensor> = Vec::new();
        comp.visit_params(&mut |p| own.push(p.grad.clone()));
        let gathered = self.all_gather(GatherPayload::Grads(own), timers);
        let sums = timed(&mut timers.decode_s, || {
            let mut sums: Vec<Tensor> = Vec::new();
            for g in &gathered {
                let grads = match g {
                    GatherPayload::Grads(v) => v,
                    _ => panic!("ring delivered a non-grad payload to a grad sync"),
                };
                for (i, grad) in grads.iter().enumerate() {
                    if i == sums.len() {
                        sums.push(grad.clone());
                    } else {
                        sums[i].add_assign(grad);
                    }
                }
            }
            sums
        });
        let mut i = 0;
        comp.visit_params(&mut |p| {
            p.grad = sums[i].clone();
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::Identity;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn solo_reduce_matches_serial_single_worker() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [3, 8], 1.0);
        let mut g = TpGroup::solo();
        let mut comp = Identity::new();
        let mut timers = PhaseTimers::default();
        let mut ws = Workspace::new();
        let out = g.compressed_all_reduce(&mut comp, &x, &mut timers, &mut ws);
        assert_eq!(out, x);
        assert_eq!(g.bytes.wire, 0);
    }

    #[test]
    fn threaded_identity_reduce_sums_in_rank_order() {
        let world = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts: Vec<Tensor> = (0..world)
            .map(|_| init::randn(&mut rng, [2, 8], 1.0))
            .collect();
        let mut expect = parts[0].clone();
        for p in &parts[1..] {
            expect.add_assign(p);
        }
        let groups = TpGroup::ring(world);
        let handles: Vec<_> = groups
            .into_iter()
            .zip(parts)
            .map(|(mut g, p)| {
                std::thread::spawn(move || {
                    let mut comp = Identity::new();
                    let mut timers = PhaseTimers::default();
                    let mut ws = Workspace::new();
                    let out = g.compressed_all_reduce(&mut comp, &p, &mut timers, &mut ws);
                    (out, g.bytes)
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("rank"))
            .collect();
        for (out, bytes) in &results {
            assert_eq!(out.max_abs_diff(&expect), 0.0, "exact rank-order sum");
            assert_eq!(bytes.wire, bytes.dense, "identity moves dense bytes");
        }
    }

    #[test]
    fn ring_plan_tiles_rows_for_any_chunk_size() {
        for rows in [1usize, 3, 4, 7, 64, 65] {
            for chunk_rows in [None, Some(1), Some(3), Some(64), Some(1000)] {
                let tuning = RingTuning {
                    chunk_rows,
                    pipeline_depth: 4,
                };
                let plan = tuning.plan(rows);
                assert_eq!(plan.iter().sum::<usize>(), rows, "{rows} {chunk_rows:?}");
                assert!(plan.iter().all(|&c| c > 0));
            }
        }
    }
}
