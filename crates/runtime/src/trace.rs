//! Flag-gated comm-event tracing for conformance auditing.
//!
//! When [`RuntimeConfig::trace`](crate::RuntimeConfig) is set, every
//! rank records each send/recv it performs — ring chunks, gather hops,
//! stage broadcasts, and pipeline-boundary messages — as an
//! [`actcomp_check::TraceEvent`] in the exact vocabulary of the static
//! message-flow graph (`actcomp-check`'s `comm_graph` module). The
//! recorded per-rank sequences can then be replayed against the graph
//! with [`actcomp_check::audit_trace`] to prove a real run conformed to
//! the statically verified protocol.
//!
//! Recording is low-overhead by construction: each rank owns its cell
//! and is the only writer, so the mutex is uncontended; with tracing
//! off, no handle exists and every recording site is a `None` check.

use actcomp_check::{ChannelId, Dir, MsgId, TraceEvent};
use std::sync::{Arc, Mutex};

/// Shared storage for one rank's recorded events. The rank thread is
/// the only writer; the driver drains it via `Command::TakeTrace`.
pub(crate) type TraceCell = Arc<Mutex<Vec<TraceEvent>>>;

/// One rank's recording handle: the rank's pipeline stage (needed to
/// name ring channels) plus the shared event cell. Cloned between the
/// rank's [`TpGroup`](crate::TpGroup) (ring events) and its worker
/// (boundary and broadcast events) so all events land in one sequence
/// in program order.
#[derive(Debug, Clone)]
pub(crate) struct TraceHandle {
    stage: usize,
    cell: TraceCell,
}

impl TraceHandle {
    /// Creates a handle for a rank on `stage` writing into `cell`.
    pub(crate) fn new(stage: usize, cell: TraceCell) -> Self {
        TraceHandle { stage, cell }
    }

    /// The pipeline stage this handle records for.
    pub(crate) fn stage(&self) -> usize {
        self.stage
    }

    /// Appends one event to the rank's sequence.
    pub(crate) fn record(&self, dir: Dir, channel: ChannelId, msg: MsgId, bytes: Option<usize>) {
        self.cell
            .lock()
            .expect("trace cell poisoned")
            .push(TraceEvent {
                dir,
                channel,
                msg,
                bytes,
            });
    }

    /// Drains and returns everything recorded so far.
    pub(crate) fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.cell.lock().expect("trace cell poisoned"))
    }
}
