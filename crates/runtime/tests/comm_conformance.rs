//! Conformance of the live engine against the static comm-protocol
//! graph (`actcomp-check`'s AC06xx pass):
//!
//! 1. Every tp × pp × chunk × depth × spec × m grid point the
//!    determinism suite exercises gets a clean static proof (matching,
//!    byte accounting, deadlock freedom), and a recorded trace from a
//!    real engine step replays the graph exactly, rank by rank.
//! 2. The engine's per-rank byte counters equal the graph's closed-form
//!    expectations.
//! 3. Property: any flag combination the static checker accepts runs a
//!    full step to completion (no deadlock, no panic) with a finite
//!    output — the deadlock-freedom proof is load-bearing, not
//!    decorative.
//! 4. The check crate's ring chunk plan is pinned to the engine's
//!    (`RingTuning::plan`), so the two crates cannot drift apart on how
//!    a reduce is chunked.

use actcomp_check::collectives::ring_chunk_plan;
use actcomp_check::{analyze, audit_trace, build_comm_graph, ExperimentConfig, RuntimeSection};
use actcomp_mp::MpConfig;
use actcomp_nn::BertConfig;
use actcomp_runtime::{RingTuning, RuntimeConfig, ThreadedRuntime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const IDS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// The determinism suite's tiny geometry as a checkable experiment
/// config: 4 layers, hidden 16, batch 2 × seq 4, threads backend.
fn experiment(
    tp: usize,
    pp: usize,
    spec: &str,
    m: usize,
    chunk_rows: Option<usize>,
    depth: usize,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.model.layers = 4;
    cfg.model.hidden = 16;
    cfg.model.heads = 4;
    cfg.model.ff_hidden = 32;
    cfg.model.vocab = 32;
    cfg.model.max_seq = 8;
    cfg.parallelism.tp = tp;
    cfg.parallelism.pp = pp;
    let world = tp * pp;
    if world > 4 {
        cfg.cluster.preset = "p3_cluster".to_string();
        cfg.cluster.nodes = world.div_ceil(4);
    }
    cfg.batch.micro_batch = 2;
    cfg.batch.seq = 4;
    cfg.batch.num_micro_batches = 1;
    cfg.plan.spec = spec.to_string();
    cfg.runtime = Some(RuntimeSection {
        micro_batches: Some(m),
        chunk_rows,
        pipeline_depth: Some(depth),
        ..RuntimeSection::threads_default()
    });
    cfg
}

/// The engine configuration equivalent to `experiment(..)`: same shape,
/// same plan resolution, and the ring tuning pinned per engine (not via
/// process globals) so the static graph and the run agree by
/// construction.
fn engine_cfg(cfg: &ExperimentConfig, trace: bool) -> RuntimeConfig {
    let rt = cfg.runtime.as_ref().expect("threads runtime section");
    RuntimeConfig {
        mp: MpConfig {
            bert: BertConfig {
                vocab: cfg.model.vocab,
                hidden: cfg.model.hidden,
                layers: cfg.model.layers,
                heads: cfg.model.heads,
                ff_hidden: cfg.model.ff_hidden,
                max_seq: cfg.model.max_seq,
            },
            tp: cfg.parallelism.tp,
            pp: cfg.parallelism.pp,
            plan: cfg.resolve_plan().expect("validated spec resolves"),
            tokens: cfg.batch.micro_batch * cfg.batch.seq,
            error_feedback: cfg.plan.error_feedback,
        },
        micro_batches: rt.micro_batches.unwrap_or(1),
        tuning: Some(RingTuning {
            chunk_rows: rt.chunk_rows,
            pipeline_depth: rt.pipeline_depth.expect("depth set by experiment()"),
        }),
        trace,
    }
}

/// One grid point: static proof, one real traced step, exact replay,
/// and counter equality.
fn assert_conformant(
    tp: usize,
    pp: usize,
    spec: &str,
    m: usize,
    chunk: Option<usize>,
    depth: usize,
) {
    let ctx = format!("tp={tp} pp={pp} spec={spec} m={m} chunk={chunk:?} depth={depth}");
    let cfg = experiment(tp, pp, spec, m, chunk, depth);
    let graph = build_comm_graph(&cfg).expect("threads config builds a graph");
    let diags = analyze(&graph);
    assert!(diags.is_empty(), "{ctx}: static proof failed: {diags:#?}");

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut rt = ThreadedRuntime::new(&mut rng, engine_cfg(&cfg, true)).expect("valid config");
    let y = rt.forward(&IDS, 2, 4).expect("valid step");
    rt.zero_grad();
    rt.backward(&y).expect("valid grad");

    let trace = rt.take_trace().expect("trace mode is on");
    let audit = audit_trace(&graph, &trace);
    assert!(audit.is_empty(), "{ctx}: trace nonconformant: {audit:#?}");

    // One step ran, so the per-rank counters must equal the graph's
    // closed-form per-step expectations exactly.
    let report = rt.report();
    for r in &report.ranks {
        let exp = &graph.expected[r.rank];
        assert_eq!(
            r.reduce_bytes.wire, exp.reduce_wire,
            "{ctx}: rank {} reduce wire",
            r.rank
        );
        assert_eq!(
            r.reduce_bytes.dense, exp.reduce_dense,
            "{ctx}: rank {} reduce dense",
            r.rank
        );
        assert_eq!(
            r.ring_bytes.wire, exp.ring_wire,
            "{ctx}: rank {} ring wire",
            r.rank
        );
        assert_eq!(
            r.ring_bytes.dense, exp.ring_dense,
            "{ctx}: rank {} ring dense",
            r.rank
        );
        assert_eq!(
            r.boundary_bytes.wire, exp.boundary_wire,
            "{ctx}: rank {} boundary wire",
            r.rank
        );
        assert_eq!(
            r.boundary_bytes.dense, exp.boundary_dense,
            "{ctx}: rank {} boundary dense",
            r.rank
        );
    }
}

#[test]
fn determinism_grid_traces_conform_to_the_static_graph() {
    for tp in [1usize, 2, 4] {
        for pp in [1usize, 2] {
            for chunk in [None, Some(1), Some(3)] {
                for depth in [1usize, 2, 4] {
                    for spec in ["w/o", "T2", "A2"] {
                        for m in [1usize, 2] {
                            assert_conformant(tp, pp, spec, m, chunk, depth);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn consecutive_steps_each_conform() {
    // The per-step ordinal reset: step 2's trace must replay the same
    // per-step graph as step 1, including the SGD update in between.
    let cfg = experiment(2, 2, "T2", 2, Some(1), 2);
    let graph = build_comm_graph(&cfg).expect("graph");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut rt = ThreadedRuntime::new(&mut rng, engine_cfg(&cfg, true)).expect("valid config");
    for step in 0..3 {
        let y = rt.forward(&IDS, 2, 4).expect("valid step");
        rt.zero_grad();
        rt.backward(&y).expect("valid grad");
        rt.sgd_step(1e-2);
        let trace = rt.take_trace().expect("trace mode is on");
        let audit = audit_trace(&graph, &trace);
        assert!(audit.is_empty(), "step {step}: {audit:#?}");
    }
}

#[test]
fn untraced_runs_return_no_trace() {
    let cfg = experiment(2, 1, "w/o", 1, None, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut rt = ThreadedRuntime::new(&mut rng, engine_cfg(&cfg, false)).expect("valid config");
    let y = rt.forward(&IDS, 2, 4).expect("valid step");
    rt.zero_grad();
    rt.backward(&y).expect("valid grad");
    assert!(rt.take_trace().is_none());
}

#[test]
fn ring_chunk_plan_is_pinned_to_the_engine() {
    // The static analyzer sizes ring chunks with its own copy of the
    // plan; any drift from the engine's would desynchronize the graph
    // from reality. Pin them element-for-element.
    for rows in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 16, 37, 100] {
        for chunk in [None, Some(1), Some(2), Some(3), Some(7), Some(1000)] {
            let tuning = RingTuning {
                chunk_rows: chunk,
                pipeline_depth: 4,
            };
            assert_eq!(
                tuning.plan(rows),
                ring_chunk_plan(chunk, rows),
                "rows={rows} chunk={chunk:?}"
            );
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

    /// Deadlock-freedom is a *run* property: any grid point the static
    /// checker accepts must execute a full traced step to completion
    /// with a finite output and a conforming trace.
    #[test]
    fn accepted_plans_run_to_completion(
        tp_i in 0usize..3,
        pp in 1usize..3,
        chunk_i in 0usize..4,
        depth in 1usize..5,
        spec_i in 0usize..4,
        m in 1usize..3,
        seed in 0u64..1000,
    ) {
        let tp = [1usize, 2, 4][tp_i];
        let chunk = [None, Some(1), Some(2), Some(5)][chunk_i];
        let spec = ["w/o", "T2", "A2", "Q1"][spec_i];
        let cfg = experiment(tp, pp, spec, m, chunk, depth);
        // Only statically accepted plans carry the guarantee.
        proptest::prop_assume!(actcomp_check::validate(&cfg).is_ok());
        let graph = build_comm_graph(&cfg).expect("threads config builds a graph");
        proptest::prop_assert!(analyze(&graph).is_empty());

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rt = ThreadedRuntime::new(&mut rng, engine_cfg(&cfg, true)).expect("valid config");
        let y = rt.forward(&IDS, 2, 4).expect("valid step");
        proptest::prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
        rt.zero_grad();
        rt.backward(&y).expect("valid grad");
        let trace = rt.take_trace().expect("trace mode is on");
        proptest::prop_assert!(audit_trace(&graph, &trace).is_empty());
    }
}
