//! Stress test for the channel collectives: four rank threads hammer the
//! ring with hundreds of mixed collectives and must neither deadlock nor
//! diverge — every rank sees the same reduced values and identical,
//! linearly-growing byte counters.

use actcomp_compress::{Compressor, Identity, TopK};
use actcomp_runtime::{PhaseTimers, TpGroup};
use actcomp_tensor::{init, Tensor, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WORLD: usize = 4;
const ITERS: usize = 100;

#[test]
fn hundred_collective_rounds_at_tp4_stay_consistent() {
    let groups = TpGroup::ring(WORLD);
    let handles: Vec<_> = groups
        .into_iter()
        .map(|mut g| {
            std::thread::spawn(move || {
                let rank = g.rank;
                // Every rank derives its partials from the shared seed +
                // its rank id, so peers can't accidentally agree.
                let mut rng = ChaCha8Rng::seed_from_u64(100 + rank as u64);
                let mut topk: Box<dyn Compressor> = Box::new(TopK::new(8));
                let mut ident: Box<dyn Compressor> = Box::new(Identity::new());
                let mut timers = PhaseTimers::default();
                let mut ws = Workspace::new();
                let mut sums = Vec::with_capacity(ITERS);
                let mut per_round_bytes = Vec::with_capacity(ITERS);
                for _ in 0..ITERS {
                    let part = init::randn(&mut rng, [4, 16], 1.0);
                    let before = g.bytes;
                    let compressed =
                        g.compressed_all_reduce(topk.as_mut(), &part, &mut timers, &mut ws);
                    let exact =
                        g.compressed_all_reduce(ident.as_mut(), &part, &mut timers, &mut ws);
                    let dense = g.dense_all_reduce(&part, &mut timers, &mut ws);
                    // The identity "compressed" reduce and the dense
                    // reduce are the same sum, computed two ways.
                    assert_eq!(exact.as_slice(), dense.as_slice());
                    sums.push((compressed.sum(), dense.sum()));
                    per_round_bytes
                        .push((g.bytes.wire - before.wire, g.bytes.dense - before.dense));
                }
                (sums, per_round_bytes, g.bytes)
            })
        })
        .collect();

    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread must not deadlock or panic"))
        .collect();

    // All ranks reduced to identical values every round.
    let (ref_sums, ref_rounds, ref_bytes) = &results[0];
    for (sums, rounds, bytes) in &results[1..] {
        assert_eq!(sums, ref_sums, "ranks disagree on reduced values");
        assert_eq!(rounds, ref_rounds, "ranks disagree on per-round bytes");
        assert_eq!(bytes, ref_bytes, "ranks disagree on cumulative bytes");
    }
    // Byte accounting is stable: every round moves the same traffic.
    let (w0, d0) = ref_rounds[0];
    assert!(w0 > 0 && d0 > 0);
    for &(w, d) in ref_rounds {
        assert_eq!((w, d), (w0, d0), "per-round traffic must not drift");
    }
    assert_eq!(ref_bytes.wire, ITERS * w0);
    assert_eq!(ref_bytes.dense, ITERS * d0);
}

#[test]
fn grad_sync_converges_across_ranks() {
    // Auto-encoder parameter sync: each rank accumulates different
    // gradients; after sync every rank holds the rank-ordered sum.
    use actcomp_compress::AutoEncoder;
    let groups = TpGroup::ring(WORLD);
    let handles: Vec<_> = groups
        .into_iter()
        .map(|mut g| {
            std::thread::spawn(move || {
                let rank = g.rank;
                let mut wrng = ChaCha8Rng::seed_from_u64(7);
                let mut ae: Box<dyn Compressor> = Box::new(AutoEncoder::new(&mut wrng, 16, 4));
                let mut timers = PhaseTimers::default();
                let mut rng = ChaCha8Rng::seed_from_u64(200 + rank as u64);
                let x = init::randn(&mut rng, [4, 16], 1.0);
                let msg = ae.compress(&x);
                let _ = ae.decompress(&msg);
                let _ = ae.backward(&Tensor::ones([4, 16]));
                g.sync_param_grads(ae.as_mut(), &mut timers);
                let mut grads = Vec::new();
                ae.visit_params(&mut |p| grads.push(p.grad.clone()));
                grads
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();
    for grads in &results[1..] {
        assert_eq!(grads.len(), results[0].len());
        for (a, b) in grads.iter().zip(&results[0]) {
            assert_eq!(a.as_slice(), b.as_slice(), "synced grads must be identical");
        }
    }
    let mass: f32 = results[0].iter().map(|g| g.sq_norm()).sum();
    assert!(mass > 0.0, "sync must preserve gradient signal");
}
