//! End-to-end check of the f16 dense wire mode (`--wire-dtype f16`).
//!
//! The wire dtype is process-global, so this lives in its own
//! integration-test binary (its own process) and runs as a single test
//! function — the bit-exact transport-conformance tests must never see
//! a half-precision wire.

use actcomp_compress::plan::CompressionPlan;
use actcomp_mp::MpConfig;
use actcomp_net::{mpsc_world, Transport};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{set_wire_dtype, RuntimeConfig, ThreadedRuntime, WireDtype};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_bert() -> BertConfig {
    BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: 8,
    }
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        mp: MpConfig {
            bert: tiny_bert(),
            tp: 2,
            pp: 2,
            plan: CompressionPlan::none(),
            tokens: 8,
            error_feedback: false,
        },
        micro_batches: 1,
        tuning: None,
        trace: false,
    }
}

const IDS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// One forward over framed mpsc transports.
fn framed_forward() -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    let ts: Vec<Box<dyn Transport>> = mpsc_world(4)
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect();
    let mut rt =
        ThreadedRuntime::with_transports(&serial, cfg(), &mut rt_rng, ts).expect("valid engine");
    rt.forward(&IDS, 2, 4).expect("forward")
}

#[test]
fn f16_wire_rounds_activations_within_tolerance() {
    // Reference: typed channels never touch the wire codec.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    let mut typed = ThreadedRuntime::from_serial(&serial, cfg(), &mut rt_rng).expect("engine");
    let reference = typed.forward(&IDS, 2, 4).expect("forward");

    assert_eq!(set_wire_dtype(WireDtype::F32), WireDtype::F32, "default");
    let f32_out = framed_forward();
    assert_eq!(
        f32_out.as_slice(),
        reference.as_slice(),
        "f32 wire stays bit-identical to typed channels"
    );

    set_wire_dtype(WireDtype::F16);
    let f16_out = framed_forward();
    let f16_again = framed_forward();
    set_wire_dtype(WireDtype::F32);

    // Deterministic: the rounding is a pure function of the values.
    assert_eq!(
        f16_out.as_slice(),
        f16_again.as_slice(),
        "f16 wire runs are reproducible"
    );

    // Half precision carries ~2^-11 relative error per crossing; after
    // 4 layers of collectives plus a pipeline boundary the output must
    // still track the exact run tightly — and not be bit-identical,
    // proving the half wire actually engaged.
    let mut worst = 0.0f64;
    for (a, b) in f16_out.as_slice().iter().zip(reference.as_slice()) {
        let err = (*a as f64 - *b as f64).abs() / (1.0 + (*b as f64).abs());
        worst = worst.max(err);
    }
    assert!(worst > 0.0, "f16 wire must actually round");
    assert!(worst < 5e-2, "f16 wire error too large: {worst}");
}
