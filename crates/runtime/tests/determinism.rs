//! Determinism guarantees of the threaded engine:
//!
//! 1. With compression off, a threaded step is **bit-identical** to the
//!    serial `MpBert` executor — forward outputs and every parameter
//!    gradient — for every tp × pp layout.
//! 2. With lossy compression (A2 auto-encoder, Top-K), two runs from the
//!    same seed produce the same loss trajectory.
//! 3. Traffic accounting matches the serial executor's byte counters.

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_mp::{MpBert, MpConfig};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{RuntimeConfig, ThreadedRuntime};
use actcomp_tensor::{init, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_bert() -> BertConfig {
    BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: 8,
    }
}

fn cfg(tp: usize, pp: usize, plan: CompressionPlan, micro_batches: usize) -> RuntimeConfig {
    RuntimeConfig {
        mp: MpConfig {
            bert: tiny_bert(),
            tp,
            pp,
            plan,
            tokens: 8,
            error_feedback: false,
        },
        micro_batches,
        tuning: None,
        trace: false,
    }
}

const IDS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

#[test]
fn uncompressed_threaded_step_is_bit_identical_to_serial() {
    for tp in [1usize, 2, 4] {
        for pp in [1usize, 2] {
            let c = cfg(tp, pp, CompressionPlan::none(), 1);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let serial = BertEncoder::new(&mut rng, tiny_bert());

            let mut mp_rng = ChaCha8Rng::seed_from_u64(13);
            let mut mp = MpBert::from_serial(&serial, c.mp.clone(), &mut mp_rng);
            let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
            let mut rt = ThreadedRuntime::from_serial(&serial, c, &mut rt_rng).expect("valid");

            let want = mp.forward(&IDS, 2, 4);
            let got = rt.forward(&IDS, 2, 4).expect("valid step");
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "tp={tp} pp={pp}: forward must be bit-identical"
            );

            let mut drng = ChaCha8Rng::seed_from_u64(99);
            let dhidden = init::randn(&mut drng, [8, 16], 1.0);
            mp.zero_grad();
            mp.backward(&dhidden);
            rt.zero_grad();
            rt.backward(&dhidden).expect("valid grad");

            let mut want_grads: Vec<Tensor> = Vec::new();
            mp.visit_all_params(&mut |p| want_grads.push(p.grad.clone()));
            let got_grads = rt.collect_grads();
            assert_eq!(
                want_grads.len(),
                got_grads.len(),
                "tp={tp} pp={pp}: parameter count"
            );
            for (i, (w, g)) in want_grads.iter().zip(&got_grads).enumerate() {
                assert_eq!(
                    g.as_slice(),
                    w.as_slice(),
                    "tp={tp} pp={pp}: grad {i} must be bit-identical"
                );
            }

            // Same forward traffic as the serial executor.
            assert_eq!(rt.report().reduce_bytes, mp.bytes(), "tp={tp} pp={pp}");
        }
    }
}

#[test]
fn microbatched_run_matches_grad_accumulation_shape() {
    // m = 2 splits the batch; outputs concatenate back to the full
    // batch and gradients exist for every parameter.
    let c = cfg(2, 2, CompressionPlan::none(), 2);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut rt = ThreadedRuntime::new(&mut rng, c).expect("valid");
    let y = rt.forward(&IDS, 2, 4).expect("valid step");
    assert_eq!(y.dims(), &[8, 16]);
    rt.zero_grad();
    rt.backward(&Tensor::ones([8, 16])).expect("valid grad");
    let grads = rt.collect_grads();
    assert!(!grads.is_empty());
    let mass: f32 = grads.iter().map(|g| g.sq_norm()).sum();
    assert!(mass > 0.0, "gradients must flow through the pipeline");
}

fn loss_trajectory(spec: CompressorSpec, seed: u64, steps: usize) -> Vec<f32> {
    let plan = CompressionPlan::last_layers(spec, 4, 2);
    let c = cfg(2, 2, plan, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rt = ThreadedRuntime::new(&mut rng, c).expect("valid");
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let y = rt.forward(&IDS, 2, 4).expect("valid step");
        // Quadratic pull toward zero hidden states: L = ½‖y‖², dL/dy = y.
        losses.push(0.5 * y.sq_norm());
        rt.zero_grad();
        rt.backward(&y).expect("valid grad");
        rt.sgd_step(1e-2);
    }
    losses
}

#[test]
fn compressed_runs_are_deterministic_across_identical_runs() {
    for spec in [CompressorSpec::A2, CompressorSpec::T2] {
        let a = loss_trajectory(spec, 21, 3);
        let b = loss_trajectory(spec, 21, 3);
        for (step, (x, y)) in a.iter().zip(&b).enumerate() {
            let denom = x.abs().max(1.0);
            assert!(
                ((x - y) / denom).abs() < 1e-6,
                "{spec:?} step {step}: {x} vs {y}"
            );
        }
        assert!(
            a[steps_last(&a)] < a[0],
            "{spec:?}: training should reduce the loss ({a:?})"
        );
    }
}

fn steps_last(v: &[f32]) -> usize {
    v.len() - 1
}

#[test]
fn error_feedback_runs_are_deterministic() {
    let run = || {
        let plan = CompressionPlan::last_layers(CompressorSpec::T2, 4, 2);
        let mut c = cfg(2, 2, plan, 1);
        c.mp.error_feedback = true;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut rt = ThreadedRuntime::new(&mut rng, c).expect("valid");
        let y1 = rt.forward(&IDS, 2, 4).expect("valid step");
        rt.zero_grad();
        rt.backward(&y1).expect("valid grad");
        rt.sgd_step(1e-2);
        rt.forward(&IDS, 2, 4).expect("valid step")
    };
    let a = run();
    let b = run();
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn report_has_nonzero_phase_timings() {
    let c = cfg(
        2,
        2,
        CompressionPlan::last_layers(CompressorSpec::T2, 4, 2),
        2,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut rt = ThreadedRuntime::new(&mut rng, c).expect("valid");
    let y = rt.forward(&IDS, 2, 4).expect("valid step");
    rt.zero_grad();
    rt.backward(&y).expect("valid grad");
    let report = rt.report();
    assert_eq!(report.ranks.len(), 4);
    assert!(report.totals.compute_s > 0.0, "{report:?}");
    assert!(report.totals.encode_s > 0.0, "{report:?}");
    assert!(report.totals.wire_s > 0.0, "{report:?}");
    assert!(report.totals.decode_s > 0.0, "{report:?}");
    assert!(report.reduce_bytes.wire > 0);
    assert!(report.boundary_bytes.wire > 0);
    assert!(report.reduce_bytes.ratio() > 1.0, "Top-K shrinks reduces");
}

#[test]
fn rejects_invalid_configs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    assert!(ThreadedRuntime::new(&mut rng, cfg(3, 1, CompressionPlan::none(), 1)).is_err());
    assert!(ThreadedRuntime::new(&mut rng, cfg(2, 1, CompressionPlan::none(), 0)).is_err());
    // tokens = 8 not divisible by 3 micro-batches.
    assert!(ThreadedRuntime::new(&mut rng, cfg(2, 1, CompressionPlan::none(), 3)).is_err());
}
