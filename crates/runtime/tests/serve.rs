//! Serving-engine conformance: continuous batching must change
//! throughput, never bits.
//!
//! Each request runs as its own micro-batch, so a batched forward's
//! per-request rows must be **bit-identical** to running each request
//! alone on an identical engine — across tp ∈ {1, 2} × pp ∈ {1, 2},
//! over typed channels, framed mpsc, and Unix-domain sockets, with
//! compression off and with a deterministic Top-K plan (with and
//! without error feedback: each boundary compressor sees the same call
//! sequence either way, so even stateful codecs stay in lockstep).

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_mp::MpConfig;
use actcomp_net::{mpsc_world, SocketOptions, SocketTransport, Transport, TransportKind};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{
    RuntimeConfig, ServeBackend, ServeConfig, ServeEngine, ServeError, ThreadedRuntime,
};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const SEQ: usize = 8;
const NREQ: usize = 6;

fn tiny_bert() -> BertConfig {
    BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: SEQ,
    }
}

/// A forward-only serving config: one micro-batch of exactly one
/// request's tokens, so the compressors are sized per request.
fn cfg(tp: usize, pp: usize, plan: CompressionPlan, error_feedback: bool) -> RuntimeConfig {
    RuntimeConfig {
        mp: MpConfig {
            bert: tiny_bert(),
            tp,
            pp,
            plan,
            tokens: SEQ,
            error_feedback,
        },
        micro_batches: 1,
        tuning: None,
        trace: false,
    }
}

#[derive(Clone, Copy)]
enum Wiring {
    Typed,
    Mpsc,
    Uds,
}

impl Wiring {
    fn name(self) -> &'static str {
        match self {
            Wiring::Typed => "typed",
            Wiring::Mpsc => "mpsc",
            Wiring::Uds => "uds",
        }
    }
}

fn socket_world(kind: TransportKind, world: usize) -> Vec<Box<dyn Transport>> {
    let mut ts: Vec<SocketTransport> = (0..world)
        .map(|r| {
            SocketTransport::bind(kind, r, world, 0x5E12, SocketOptions::default()).expect("bind")
        })
        .collect();
    let addrs: Vec<String> = ts.iter().map(|t| t.local_addr().to_string()).collect();
    for t in ts.iter_mut() {
        for (p, a) in addrs.iter().enumerate() {
            t.set_peer(p, a.clone());
        }
    }
    ts.into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

fn engine(c: RuntimeConfig, wiring: Wiring) -> ThreadedRuntime {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    let world = c.mp.tp * c.mp.pp;
    match wiring {
        Wiring::Typed => ThreadedRuntime::from_serial(&serial, c, &mut rt_rng),
        Wiring::Mpsc => ThreadedRuntime::with_transports(
            &serial,
            c,
            &mut rt_rng,
            mpsc_world(world)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect(),
        ),
        Wiring::Uds => ThreadedRuntime::with_transports(
            &serial,
            c,
            &mut rt_rng,
            socket_world(TransportKind::Uds, world),
        ),
    }
    .expect("valid engine")
}

fn requests() -> Vec<Vec<usize>> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    (0..NREQ)
        .map(|_| {
            (0..SEQ)
                .map(|_| rand::Rng::gen_range(&mut rng, 0..32))
                .collect()
        })
        .collect()
}

fn grid(plan: fn() -> CompressionPlan, error_feedback: bool, wirings: &[Wiring]) {
    let reqs = requests();
    for tp in [1usize, 2] {
        for pp in [1usize, 2] {
            // Reference: each request alone, in arrival order, on one
            // resident engine over typed channels.
            let mut serial = engine(cfg(tp, pp, plan(), error_feedback), Wiring::Typed);
            let want: Vec<Tensor> = reqs
                .iter()
                .map(|ids| serial.infer(ids, 1, SEQ).expect("serial infer"))
                .collect();

            for &wiring in wirings {
                let tag = format!("tp={tp} pp={pp} {}", wiring.name());
                let backend =
                    ServeBackend::Threads(engine(cfg(tp, pp, plan(), error_feedback), wiring));
                let serve = ServeEngine::start(
                    backend,
                    ServeConfig {
                        max_batch: 4,
                        batch_window: Duration::from_millis(2),
                        depth: 2,
                    },
                )
                .expect("engine starts");
                let handle = serve.handle();
                let tickets: Vec<_> = reqs.iter().map(|ids| handle.submit(ids.clone())).collect();
                for (j, t) in tickets.into_iter().enumerate() {
                    let got = t.wait().expect("request completes");
                    assert_eq!(got.dims(), &[SEQ, 16], "{tag}: request {j} shape");
                    assert_eq!(
                        got.as_slice(),
                        want[j].as_slice(),
                        "{tag}: request {j} must be bit-identical to its solo forward"
                    );
                }
                let (stats, report) = serve.finish();
                assert_eq!(stats.completed, NREQ, "{tag}: all requests complete");
                assert_eq!(stats.failed, 0, "{tag}: no failures");
                let batched: usize = stats
                    .batch_hist
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (i + 1) * n)
                    .sum();
                assert_eq!(batched, NREQ, "{tag}: histogram accounts for every request");
                assert!(report.is_some(), "{tag}: per-rank report survives serving");
            }
        }
    }
}

#[test]
fn batched_uncompressed_requests_are_bit_identical_to_solo() {
    grid(
        CompressionPlan::none,
        false,
        &[Wiring::Typed, Wiring::Mpsc, Wiring::Uds],
    );
}

#[test]
fn batched_compressed_requests_are_bit_identical_to_solo() {
    fn plan() -> CompressionPlan {
        CompressionPlan::last_layers(CompressorSpec::T2, 4, 2)
    }
    grid(plan, false, &[Wiring::Typed, Wiring::Mpsc]);
}

#[test]
fn batched_error_feedback_requests_are_bit_identical_to_solo() {
    // Error feedback makes the boundary compressors stateful; the
    // per-compressor call sequence is the arrival order in both modes,
    // so residuals stay in lockstep.
    fn plan() -> CompressionPlan {
        CompressionPlan::last_layers(CompressorSpec::T2, 4, 2)
    }
    grid(plan, true, &[Wiring::Typed]);
}

#[test]
fn malformed_requests_fail_typed_without_entering_the_queue() {
    let serve = ServeEngine::start(
        ServeBackend::Threads(engine(
            cfg(1, 1, CompressionPlan::none(), false),
            Wiring::Typed,
        )),
        ServeConfig::default(),
    )
    .expect("engine starts");
    let handle = serve.handle();
    let err = handle
        .submit(vec![1, 2, 3])
        .wait()
        .expect_err("wrong length");
    assert!(
        matches!(err, ServeError::BadRequest { .. }),
        "typed BadRequest, got {err}"
    );
    // A good request still flows afterwards.
    let ok = handle.submit(vec![1; SEQ]).wait().expect("good request");
    assert_eq!(ok.dims(), &[SEQ, 16]);
    let (stats, _) = serve.finish();
    assert_eq!(stats.completed, 1);
    // The malformed request never reached the dispatcher's counters.
    assert_eq!(stats.failed, 0);
}

#[test]
fn zero_batch_or_depth_is_rejected() {
    for (max_batch, depth) in [(0usize, 2usize), (8, 0)] {
        let err = ServeEngine::start(
            ServeBackend::Threads(engine(
                cfg(1, 1, CompressionPlan::none(), false),
                Wiring::Typed,
            )),
            ServeConfig {
                max_batch,
                batch_window: Duration::ZERO,
                depth,
            },
        )
        .err()
        .expect("invalid config rejected");
        assert!(matches!(err, ServeError::BadRequest { .. }));
    }
}
