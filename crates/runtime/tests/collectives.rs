//! Ring-collective equivalence and byte-accounting tests.
//!
//! The chunked chain-reduce + broadcast collectives must be bitwise
//! interchangeable with the gather-based reference for every group size
//! and chunk plan — determinism is the runtime's core contract — and
//! must move strictly fewer bytes per rank than the gather once the
//! group has three or more ranks.

use actcomp_compress::{AutoEncoder, Identity};
use actcomp_mp::CommBytes;
use actcomp_runtime::{PhaseTimers, RingTuning, TpGroup};
use actcomp_tensor::{init, Tensor, Workspace};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs one collective per rank on its own thread and returns
/// `(output, ring_bytes)` per rank in rank order. `tuning = None`
/// keeps the process-default configuration.
fn run_ranks<F>(
    world: usize,
    tuning: Option<RingTuning>,
    parts: &[Tensor],
    f: F,
) -> Vec<(Tensor, CommBytes)>
where
    F: Fn(&mut TpGroup, &Tensor, &mut PhaseTimers, &mut Workspace) -> Tensor
        + Send
        + Sync
        + Copy
        + 'static,
{
    let mut groups = TpGroup::ring(world);
    if let Some(t) = tuning {
        // Every endpoint of a ring must agree on the chunk plan.
        for g in &mut groups {
            g.tuning = t;
        }
    }
    let handles: Vec<_> = groups
        .into_iter()
        .zip(parts.to_vec())
        .map(|(mut g, p)| {
            std::thread::spawn(move || {
                let mut timers = PhaseTimers::default();
                let mut ws = Workspace::new();
                let out = f(&mut g, &p, &mut timers, &mut ws);
                (out, g.ring_bytes)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect()
}

fn randn_parts(world: usize, rows: usize, width: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..world)
        .map(|_| init::randn(&mut rng, [rows, width], 1.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked ring dense all-reduce is bit-identical to the
    /// gather-based reference for tp ∈ {1, 2, 4}, for row counts that
    /// are not a multiple of the chunk size, and for every pipeline
    /// depth — the chunk plan must never change the fold.
    #[test]
    fn ring_dense_matches_gather_bitwise(
        world_ix in 0usize..3,
        rows in 1usize..9,
        width in 1usize..12,
        chunk_sel in 0usize..5,
        depth in 1usize..5,
        seed in 0u64..1000,
    ) {
        let world = [1, 2, 4][world_ix];
        let parts = randn_parts(world, rows, width, seed);
        // 0 selects automatic chunking; n pins n rows per chunk.
        let chunk_rows = (chunk_sel > 0).then_some(chunk_sel);
        let tuning = RingTuning { chunk_rows, pipeline_depth: depth };
        let ring = run_ranks(world, Some(tuning), &parts, |g, p, t, ws| {
            g.dense_all_reduce(p, t, ws)
        });
        let gather = run_ranks(world, None, &parts, |g, p, t, _| {
            g.dense_all_reduce_gather(p, t)
        });
        for (rank, (r, g)) in ring.iter().zip(&gather).enumerate() {
            prop_assert!(bitwise_eq(&r.0, &g.0), "rank {rank} diverged");
        }
    }

    /// The chunked identity compressed reduce reproduces the serial
    /// executor's left fold bit for bit on every rank, for tp ∈ {1, 2, 4}
    /// and arbitrary chunk plans.
    #[test]
    fn chunked_identity_reduce_matches_serial_fold(
        world_ix in 0usize..3,
        rows in 1usize..9,
        width in 1usize..12,
        chunk_sel in 0usize..5,
        depth in 1usize..5,
        seed in 1000u64..2000,
    ) {
        let world = [1, 2, 4][world_ix];
        let parts = randn_parts(world, rows, width, seed);
        let mut expect = parts[0].clone();
        for p in &parts[1..] {
            expect.add_assign(p);
        }
        let chunk_rows = (chunk_sel > 0).then_some(chunk_sel);
        let tuning = RingTuning { chunk_rows, pipeline_depth: depth };
        let outs = run_ranks(world, Some(tuning), &parts, |g, p, t, ws| {
            let mut comp = Identity::new();
            g.compressed_all_reduce(&mut comp, p, t, ws)
        });
        for (rank, (out, _)) in outs.iter().enumerate() {
            prop_assert!(bitwise_eq(out, &expect), "rank {rank} diverged from serial fold");
        }
    }
}

/// Chunking an auto-encoder collective must not change its output: the
/// encoder/decoder act row-wise, so per-chunk codes summed in rank
/// order decode to the same rows as the whole-tensor code.
#[test]
fn chunked_autoencoder_reduce_matches_unchunked() {
    let world = 4;
    let parts = randn_parts(world, 6, 16, 42);
    let reduce = |g: &mut TpGroup, p: &Tensor, t: &mut PhaseTimers, ws: &mut Workspace| {
        // Same seed on every rank: the auto-encoder weights are
        // replicated, exactly as the runtime builds them.
        let mut wrng = ChaCha8Rng::seed_from_u64(7);
        let mut ae = AutoEncoder::new(&mut wrng, 16, 4);
        g.compressed_all_reduce(&mut ae, p, t, ws)
    };
    let chunked = run_ranks(
        world,
        Some(RingTuning {
            chunk_rows: Some(1),
            pipeline_depth: 2,
        }),
        &parts,
        reduce,
    );
    let whole = run_ranks(
        world,
        Some(RingTuning {
            chunk_rows: Some(1_000_000),
            pipeline_depth: 2,
        }),
        &parts,
        reduce,
    );
    for (rank, (c, w)) in chunked.iter().zip(&whole).enumerate() {
        assert!(
            bitwise_eq(&c.0, &w.0),
            "rank {rank}: chunked AE reduce diverged from unchunked"
        );
    }
}

/// At tp = 4 every rank of a ring collective sends strictly fewer bytes
/// than the gather-based implementation of the same collective (which
/// ships `(p−1)` full payloads per rank), for both the dense reduce and
/// the summable compressed reduce. The gather reference itself reports
/// actual == baseline.
#[test]
fn ring_moves_fewer_bytes_per_rank_than_gather_at_tp4() {
    let world = 4;
    let parts = randn_parts(world, 8, 16, 9);

    let dense = run_ranks(world, None, &parts, |g, p, t, ws| {
        g.dense_all_reduce(p, t, ws)
    });
    for (rank, (_, ring_bytes)) in dense.iter().enumerate() {
        assert!(ring_bytes.dense > 0);
        assert!(
            ring_bytes.wire < ring_bytes.dense,
            "rank {rank}: dense ring sent {} bytes, gather baseline {}",
            ring_bytes.wire,
            ring_bytes.dense
        );
    }

    let compressed = run_ranks(world, None, &parts, |g, p, t, ws| {
        let mut comp = Identity::new();
        g.compressed_all_reduce(&mut comp, p, t, ws)
    });
    for (rank, (_, ring_bytes)) in compressed.iter().enumerate() {
        assert!(
            ring_bytes.wire < ring_bytes.dense,
            "rank {rank}: compressed ring sent {} bytes, gather baseline {}",
            ring_bytes.wire,
            ring_bytes.dense
        );
    }

    let gather = run_ranks(world, None, &parts, |g, p, t, _| {
        g.dense_all_reduce_gather(p, t)
    });
    for (_, ring_bytes) in &gather {
        assert_eq!(
            ring_bytes.wire, ring_bytes.dense,
            "gather is its own baseline"
        );
    }
    // And the ring totals beat the gather totals in aggregate too.
    let ring_total: usize = dense.iter().map(|(_, b)| b.wire).sum();
    let gather_total: usize = gather.iter().map(|(_, b)| b.wire).sum();
    assert!(ring_total < gather_total);
}
