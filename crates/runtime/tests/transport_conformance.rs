//! Transport conformance: the threaded engine must produce **bitwise
//! identical** training steps no matter which wire carries its
//! messages — typed in-process channels, the framed mpsc transport,
//! Unix domain sockets, or loopback TCP.
//!
//! This is the PR 2 invariant extended to `actcomp-net`: with
//! compression off (and, stronger, with a deterministic compressor on)
//! the forward output, every parameter gradient, and the byte counters
//! must agree across all four wirings for every tp × pp layout in the
//! grid tp ∈ {1, 2, 4} × pp ∈ {1, 2}.

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_mp::MpConfig;
use actcomp_net::{mpsc_world, SocketOptions, SocketTransport, Transport, TransportKind};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{RuntimeConfig, ThreadedRuntime};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_bert() -> BertConfig {
    BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: 8,
    }
}

fn cfg(tp: usize, pp: usize, plan: CompressionPlan, micro_batches: usize) -> RuntimeConfig {
    RuntimeConfig {
        mp: MpConfig {
            bert: tiny_bert(),
            tp,
            pp,
            plan,
            tokens: 8,
            error_feedback: false,
        },
        micro_batches,
        tuning: None,
        trace: false,
    }
}

const IDS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Binds `world` socket endpoints of one kind in this process and
/// exchanges the peer table, exactly as the multi-process rendezvous
/// would.
fn socket_world(kind: TransportKind, world: usize) -> Vec<Box<dyn Transport>> {
    let mut ts: Vec<SocketTransport> = (0..world)
        .map(|r| {
            SocketTransport::bind(kind, r, world, 0xC0DE, SocketOptions::default()).expect("bind")
        })
        .collect();
    let addrs: Vec<String> = ts.iter().map(|t| t.local_addr().to_string()).collect();
    for t in ts.iter_mut() {
        for (p, a) in addrs.iter().enumerate() {
            t.set_peer(p, a.clone());
        }
    }
    ts.into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

/// One training step + a second forward on a fresh engine over the
/// given links; returns everything conformance compares.
struct StepResult {
    forward: Tensor,
    grads: Vec<Tensor>,
    reduce_wire: usize,
    reduce_dense: usize,
    boundary_wire: usize,
    boundary_dense: usize,
    second_forward: Tensor,
}

fn run_engine(c: RuntimeConfig, transports: Option<Vec<Box<dyn Transport>>>) -> StepResult {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    let mut rt = match transports {
        None => ThreadedRuntime::from_serial(&serial, c, &mut rt_rng).expect("valid engine"),
        Some(ts) => {
            ThreadedRuntime::with_transports(&serial, c, &mut rt_rng, ts).expect("valid engine")
        }
    };
    let forward = rt.forward(&IDS, 2, 4).expect("forward");
    rt.zero_grad();
    rt.backward(&forward).expect("backward");
    let grads = rt.collect_grads();
    rt.sgd_step(1e-2);
    // A second forward proves optimizer state stayed in sync (the
    // deferred compressor-grad exchange runs between steps).
    let second_forward = rt.forward(&IDS, 2, 4).expect("second forward");
    let report = rt.report();
    StepResult {
        forward,
        grads,
        reduce_wire: report.reduce_bytes.wire,
        reduce_dense: report.reduce_bytes.dense,
        boundary_wire: report.boundary_bytes.wire,
        boundary_dense: report.boundary_bytes.dense,
        second_forward,
    }
}

fn assert_same(tag: &str, want: &StepResult, got: &StepResult) {
    assert_eq!(
        got.forward.as_slice(),
        want.forward.as_slice(),
        "{tag}: forward must be bit-identical"
    );
    assert_eq!(got.grads.len(), want.grads.len(), "{tag}: parameter count");
    for (i, (w, g)) in want.grads.iter().zip(&got.grads).enumerate() {
        assert_eq!(
            g.as_slice(),
            w.as_slice(),
            "{tag}: grad {i} must be bit-identical"
        );
    }
    assert_eq!(got.reduce_wire, want.reduce_wire, "{tag}: ring wire bytes");
    assert_eq!(
        got.reduce_dense, want.reduce_dense,
        "{tag}: ring dense bytes"
    );
    assert_eq!(
        got.boundary_wire, want.boundary_wire,
        "{tag}: boundary wire bytes"
    );
    assert_eq!(
        got.boundary_dense, want.boundary_dense,
        "{tag}: boundary dense bytes"
    );
    assert_eq!(
        got.second_forward.as_slice(),
        want.second_forward.as_slice(),
        "{tag}: post-SGD forward must be bit-identical"
    );
}

fn conformance_grid(plan: fn() -> CompressionPlan, micro_batches: usize) {
    for tp in [1usize, 2, 4] {
        for pp in [1usize, 2] {
            let world = tp * pp;
            let typed = run_engine(cfg(tp, pp, plan(), micro_batches), None);
            let framed = run_engine(
                cfg(tp, pp, plan(), micro_batches),
                Some(
                    mpsc_world(world)
                        .into_iter()
                        .map(|t| Box::new(t) as Box<dyn Transport>)
                        .collect(),
                ),
            );
            assert_same(&format!("tp={tp} pp={pp} mpsc"), &typed, &framed);
            for kind in [TransportKind::Uds, TransportKind::Tcp] {
                let got = run_engine(
                    cfg(tp, pp, plan(), micro_batches),
                    Some(socket_world(kind, world)),
                );
                assert_same(&format!("tp={tp} pp={pp} {kind}"), &typed, &got);
            }
        }
    }
}

#[test]
fn uncompressed_steps_are_bit_identical_across_transports() {
    conformance_grid(CompressionPlan::none, 1);
}

#[test]
fn microbatched_compressed_steps_are_bit_identical_across_transports() {
    // Top-K is deterministic, so even a lossy plan must agree bit-for-
    // bit across wires; m = 2 additionally exercises the pipelined
    // boundary path (fill/drain order, deferred grad sync).
    fn plan() -> CompressionPlan {
        CompressionPlan::last_layers(CompressorSpec::T2, 4, 2)
    }
    conformance_grid(plan, 2);
}

#[test]
fn transport_world_mismatch_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    // tp=2, pp=2 needs 4 transports; hand it 2.
    let err = ThreadedRuntime::with_transports(
        &serial,
        cfg(2, 2, CompressionPlan::none(), 1),
        &mut rt_rng,
        mpsc_world(2)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
    )
    .expect_err("a 2-transport world cannot drive 4 ranks");
    let msg = err.to_string();
    assert!(msg.contains("2") && msg.contains("4"), "{msg}");
}
