//! Transport conformance: the threaded engine must produce **bitwise
//! identical** training steps no matter which wire carries its
//! messages — typed in-process channels, the framed mpsc transport,
//! Unix domain sockets, or loopback TCP.
//!
//! This is the PR 2 invariant extended to `actcomp-net`: with
//! compression off (and, stronger, with a deterministic compressor on)
//! the forward output, every parameter gradient, and the byte counters
//! must agree across all four wirings for every tp × pp layout in the
//! grid tp ∈ {1, 2, 4} × pp ∈ {1, 2}.

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_mp::MpConfig;
use actcomp_net::{
    mpsc_world, FaultPlan, FaultyTransport, FrameRx, FrameTx, SocketOptions, SocketTransport,
    Transport, TransportError, TransportKind,
};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{RuntimeConfig, ThreadedRuntime};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_bert() -> BertConfig {
    BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: 8,
    }
}

fn cfg(tp: usize, pp: usize, plan: CompressionPlan, micro_batches: usize) -> RuntimeConfig {
    RuntimeConfig {
        mp: MpConfig {
            bert: tiny_bert(),
            tp,
            pp,
            plan,
            tokens: 8,
            error_feedback: false,
        },
        micro_batches,
        tuning: None,
        trace: false,
    }
}

const IDS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Binds `world` socket endpoints of one kind in this process and
/// exchanges the peer table, exactly as the multi-process rendezvous
/// would.
fn socket_world(kind: TransportKind, world: usize) -> Vec<Box<dyn Transport>> {
    let mut ts: Vec<SocketTransport> = (0..world)
        .map(|r| {
            SocketTransport::bind(kind, r, world, 0xC0DE, SocketOptions::default()).expect("bind")
        })
        .collect();
    let addrs: Vec<String> = ts.iter().map(|t| t.local_addr().to_string()).collect();
    for t in ts.iter_mut() {
        for (p, a) in addrs.iter().enumerate() {
            t.set_peer(p, a.clone());
        }
    }
    ts.into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

/// One training step + a second forward on a fresh engine over the
/// given links; returns everything conformance compares.
struct StepResult {
    forward: Tensor,
    grads: Vec<Tensor>,
    reduce_wire: usize,
    reduce_dense: usize,
    boundary_wire: usize,
    boundary_dense: usize,
    second_forward: Tensor,
}

fn run_engine(c: RuntimeConfig, transports: Option<Vec<Box<dyn Transport>>>) -> StepResult {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    let mut rt = match transports {
        None => ThreadedRuntime::from_serial(&serial, c, &mut rt_rng).expect("valid engine"),
        Some(ts) => {
            ThreadedRuntime::with_transports(&serial, c, &mut rt_rng, ts).expect("valid engine")
        }
    };
    let forward = rt.forward(&IDS, 2, 4).expect("forward");
    rt.zero_grad();
    rt.backward(&forward).expect("backward");
    let grads = rt.collect_grads();
    rt.sgd_step(1e-2);
    // A second forward proves optimizer state stayed in sync (the
    // deferred compressor-grad exchange runs between steps).
    let second_forward = rt.forward(&IDS, 2, 4).expect("second forward");
    let report = rt.report();
    StepResult {
        forward,
        grads,
        reduce_wire: report.reduce_bytes.wire,
        reduce_dense: report.reduce_bytes.dense,
        boundary_wire: report.boundary_bytes.wire,
        boundary_dense: report.boundary_bytes.dense,
        second_forward,
    }
}

fn assert_same(tag: &str, want: &StepResult, got: &StepResult) {
    assert_eq!(
        got.forward.as_slice(),
        want.forward.as_slice(),
        "{tag}: forward must be bit-identical"
    );
    assert_eq!(got.grads.len(), want.grads.len(), "{tag}: parameter count");
    for (i, (w, g)) in want.grads.iter().zip(&got.grads).enumerate() {
        assert_eq!(
            g.as_slice(),
            w.as_slice(),
            "{tag}: grad {i} must be bit-identical"
        );
    }
    assert_eq!(got.reduce_wire, want.reduce_wire, "{tag}: ring wire bytes");
    assert_eq!(
        got.reduce_dense, want.reduce_dense,
        "{tag}: ring dense bytes"
    );
    assert_eq!(
        got.boundary_wire, want.boundary_wire,
        "{tag}: boundary wire bytes"
    );
    assert_eq!(
        got.boundary_dense, want.boundary_dense,
        "{tag}: boundary dense bytes"
    );
    assert_eq!(
        got.second_forward.as_slice(),
        want.second_forward.as_slice(),
        "{tag}: post-SGD forward must be bit-identical"
    );
}

fn conformance_grid(plan: fn() -> CompressionPlan, micro_batches: usize) {
    for tp in [1usize, 2, 4] {
        for pp in [1usize, 2] {
            let world = tp * pp;
            let typed = run_engine(cfg(tp, pp, plan(), micro_batches), None);
            let framed = run_engine(
                cfg(tp, pp, plan(), micro_batches),
                Some(
                    mpsc_world(world)
                        .into_iter()
                        .map(|t| Box::new(t) as Box<dyn Transport>)
                        .collect(),
                ),
            );
            assert_same(&format!("tp={tp} pp={pp} mpsc"), &typed, &framed);
            for kind in [TransportKind::Uds, TransportKind::Tcp] {
                let got = run_engine(
                    cfg(tp, pp, plan(), micro_batches),
                    Some(socket_world(kind, world)),
                );
                assert_same(&format!("tp={tp} pp={pp} {kind}"), &typed, &got);
            }
        }
    }
}

#[test]
fn uncompressed_steps_are_bit_identical_across_transports() {
    conformance_grid(CompressionPlan::none, 1);
}

#[test]
fn microbatched_compressed_steps_are_bit_identical_across_transports() {
    // Top-K is deterministic, so even a lossy plan must agree bit-for-
    // bit across wires; m = 2 additionally exercises the pipelined
    // boundary path (fill/drain order, deferred grad sync).
    fn plan() -> CompressionPlan {
        CompressionPlan::last_layers(CompressorSpec::T2, 4, 2)
    }
    conformance_grid(plan, 2);
}

/// A 2-rank socket world with rank 0's sends routed through a
/// [`FaultyTransport`] driven by `spec`; returns the faulty send end
/// and the honest receive end of one channel.
fn faulty_socket_pair(kind: TransportKind, spec: &str) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
    let mut world = socket_world(kind, 2);
    let mut recv_side = world.pop().expect("rank 1");
    let send_side = world.pop().expect("rank 0");
    let plan = FaultPlan::parse(spec).expect("valid spec");
    let mut faulty = FaultyTransport::new(send_side, plan);
    let tx = faulty.open_send(1, 1).expect("send side");
    let rx = recv_side.open_recv(0, 1).expect("recv side");
    // Keep both transports (demux threads, socket files) alive for the
    // duration of the test.
    std::mem::forget(faulty);
    std::mem::forget(recv_side);
    (tx, rx)
}

/// The injection grid from the issue: drop / dup / corrupt × uds / tcp.
/// Every fault must surface as typed, bounded-time behaviour at the
/// honest receiver — never a hang, never a garbage decode.
#[test]
fn fault_injection_grid_surfaces_typed_errors_on_sockets() {
    use std::time::Duration;
    for kind in [TransportKind::Uds, TransportKind::Tcp] {
        // drop: the matched frame never arrives; the receiver's typed
        // timeout bounds the wait, and later frames still flow.
        let (mut tx, mut rx) = faulty_socket_pair(kind, "drop:frame=0");
        tx.send(b"swallowed").expect("send");
        assert!(
            matches!(
                rx.recv_timeout(Duration::from_millis(200)),
                Err(TransportError::Timeout { .. })
            ),
            "{kind}: dropped frame must surface as a typed timeout"
        );
        tx.send(b"after-drop").expect("send");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10))
                .expect("later frame"),
            b"after-drop",
            "{kind}: the stream survives a dropped frame"
        );

        // dup: the matched frame arrives exactly twice, in order.
        let (mut tx, mut rx) = faulty_socket_pair(kind, "dup:frame=0");
        tx.send(b"twin").expect("send");
        tx.send(b"solo").expect("send");
        for want in [b"twin" as &[u8], b"twin", b"solo"] {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(10)).expect("frame"),
                want,
                "{kind}: duplicate ordering"
            );
        }

        // corrupt: the CRC trailer catches it and the receiver reports
        // the typed FrameCorrupt — the stream is poisoned, not garbage.
        let (mut tx, mut rx) = faulty_socket_pair(kind, "corrupt:frame=0");
        tx.send(b"poisoned").expect("send");
        assert!(
            matches!(rx.recv(), Err(TransportError::FrameCorrupt { .. })),
            "{kind}: corruption must surface as FrameCorrupt"
        );
    }
}

#[test]
fn transport_world_mismatch_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial = BertEncoder::new(&mut rng, tiny_bert());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(13);
    // tp=2, pp=2 needs 4 transports; hand it 2.
    let err = ThreadedRuntime::with_transports(
        &serial,
        cfg(2, 2, CompressionPlan::none(), 1),
        &mut rt_rng,
        mpsc_world(2)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
    )
    .expect_err("a 2-transport world cannot drive 4 ranks");
    let msg = err.to_string();
    assert!(msg.contains("2") && msg.contains("4"), "{msg}");
}
