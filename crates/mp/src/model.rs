//! The full model-parallel BERT: sharded encoder layers, pipeline
//! boundaries, and per-layer compression placement — the numerically-real
//! counterpart of the system the paper builds on Megatron-LM.

use crate::error::MpConfigError;
use crate::pp::PipelineBoundary;
use crate::reduce::{CommBytes, CompressedAllReduce};
use crate::tp::TpEncoderLayer;
use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_compress::{Compressor, Identity};
use actcomp_nn::{BertConfig, BertEncoder, Embedding, Layer, LayerNorm, Parameter};
use actcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a model-parallel training run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MpConfig {
    /// Architecture.
    pub bert: BertConfig,
    /// Tensor model-parallel degree.
    pub tp: usize,
    /// Pipeline model-parallel degree.
    pub pp: usize,
    /// Which layers are compressed, and how.
    pub plan: CompressionPlan,
    /// Expected tokens per forward pass (`batch · seq`), used to size
    /// sparsifier element counts exactly as the paper's Table 1 does.
    pub tokens: usize,
    /// Wrap every compressor in an [`actcomp_compress::ErrorFeedback`]
    /// accumulator (§3.3: "our implementation also allows the integration
    /// of error-feedback compression algorithms").
    pub error_feedback: bool,
}

impl MpConfig {
    /// Typed variant of [`MpConfig::validate`].
    pub fn try_validate(&self) -> Result<(), MpConfigError> {
        self.bert.try_validate()?;
        if self.tp == 0 || self.pp == 0 {
            return Err(MpConfigError::NonPositiveDegrees);
        }
        if !self.bert.heads.is_multiple_of(self.tp) {
            return Err(MpConfigError::HeadsNotDivisibleByTp {
                heads: self.bert.heads,
                tp: self.tp,
            });
        }
        if self.bert.layers < self.pp {
            return Err(MpConfigError::TooFewLayersForPp {
                layers: self.bert.layers,
                pp: self.pp,
            });
        }
        if self.plan.end_layer() > self.bert.layers {
            return Err(MpConfigError::PlanExceedsLayers);
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if degrees don't divide the architecture.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// A BERT encoder executed with (simulated but numerically real) tensor
/// and pipeline model parallelism, with activation compression installed
/// per the configured [`CompressionPlan`].
///
/// Built by sharding a serial [`BertEncoder`]; with the plan inactive, its
/// outputs match the serial model to floating-point tolerance.
#[derive(Debug)]
pub struct MpBert {
    /// Token embedding (replicated; first stage).
    pub tok: Embedding,
    /// Position embedding (replicated; first stage).
    pub pos: Embedding,
    /// Embedding layer norm.
    pub emb_ln: LayerNorm,
    layers: Vec<TpEncoderLayer>,
    /// `pp − 1` boundaries; `boundaries[b]` sits before the first layer of
    /// stage `b + 1`.
    boundaries: Vec<PipelineBoundary>,
    stage_offsets: Vec<usize>,
    config: MpConfig,
    bytes: CommBytes,
}

impl MpBert {
    /// Builds the model from a fresh serial initialization.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`MpBert::try_new`] is the
    /// non-panicking variant.
    pub fn new(rng: &mut ChaCha8Rng, config: MpConfig) -> Self {
        match Self::try_new(rng, config) {
            Ok(mp) => mp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Typed variant of [`MpBert::new`].
    pub fn try_new(rng: &mut ChaCha8Rng, config: MpConfig) -> Result<Self, MpConfigError> {
        config.try_validate()?;
        let serial = BertEncoder::new(rng, config.bert.clone());
        Self::try_from_serial(&serial, config, rng)
    }

    /// Shards an existing serial encoder (used to compare compressed runs
    /// against an identically-initialized baseline, and to "load a
    /// checkpoint" into a different parallel layout as §4.4 does).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`MpBert::try_from_serial`] is
    /// the non-panicking variant.
    pub fn from_serial(serial: &BertEncoder, config: MpConfig, rng: &mut ChaCha8Rng) -> Self {
        match Self::try_from_serial(serial, config, rng) {
            Ok(mp) => mp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Typed variant of [`MpBert::from_serial`].
    pub fn try_from_serial(
        serial: &BertEncoder,
        config: MpConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, MpConfigError> {
        config.try_validate()?;
        let h = config.bert.hidden;
        let n = config.tokens * h;

        let wrap = |c: Box<dyn Compressor>, active: bool| -> Box<dyn Compressor> {
            if active && config.error_feedback {
                Box::new(actcomp_compress::ErrorFeedback::new(c))
            } else {
                c
            }
        };
        let make_reduce = |covered: bool, rng: &mut ChaCha8Rng| -> CompressedAllReduce {
            // TP=1 has no all-reduce, hence no TP compression point.
            let spec = if covered && config.tp > 1 {
                config.plan.spec
            } else {
                CompressorSpec::Baseline
            };
            let seed: u64 = rng.gen();
            CompressedAllReduce::new(
                (0..config.tp)
                    .map(|_| {
                        // Auto-encoders must be replicated (identical
                        // weights) across workers; other compressors get
                        // independent streams.
                        let mut wrng = ChaCha8Rng::seed_from_u64(seed);
                        wrap(
                            spec.build(&mut wrng, n, h),
                            spec != CompressorSpec::Baseline,
                        )
                    })
                    .collect(),
            )
        };

        let layers: Vec<TpEncoderLayer> = serial
            .layers
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                let covered = config.plan.covers(l);
                TpEncoderLayer::from_serial(
                    layer,
                    config.tp,
                    make_reduce(covered, rng),
                    make_reduce(covered, rng),
                )
            })
            .collect();

        let stage_offsets = stage_offsets(config.bert.layers, config.pp);
        let boundaries = (0..config.pp - 1)
            .map(|b| {
                let receiving_first = stage_offsets[b + 1];
                let comp: Box<dyn Compressor> = if config.plan.covers(receiving_first) {
                    let mut wrng = ChaCha8Rng::seed_from_u64(rng.gen());
                    wrap(config.plan.spec.build(&mut wrng, n, h), true)
                } else {
                    Box::new(Identity::new())
                };
                PipelineBoundary::new(comp)
            })
            .collect();

        Ok(MpBert {
            tok: serial.tok.clone(),
            pos: serial.pos.clone(),
            emb_ln: serial.emb_ln.clone(),
            layers,
            boundaries,
            stage_offsets,
            config,
            bytes: CommBytes::default(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &MpConfig {
        &self.config
    }

    /// Cumulative model-parallel traffic since construction.
    pub fn bytes(&self) -> CommBytes {
        self.bytes
    }

    /// Forward pass: embeds `ids` and runs all stages/layers, applying
    /// pipeline-boundary compression between stages and tensor-parallel
    /// compression inside covered layers.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != batch * seq` or `seq` exceeds the model's
    /// maximum.
    pub fn forward(&mut self, ids: &[usize], batch: usize, seq: usize) -> Tensor {
        assert_eq!(ids.len(), batch * seq, "ids length != batch*seq");
        assert!(seq <= self.config.bert.max_seq, "sequence too long");
        let tok = self.tok.forward(ids);
        let pos_ids: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let pos = self.pos.forward(&pos_ids);
        let mut x = self.emb_ln.forward(&tok.add(&pos));
        for l in 0..self.layers.len() {
            if let Some(b) = self.boundary_before(l) {
                x = self.boundaries[b].forward(&x);
            }
            let (y, bytes) = self.layers[l].forward(&x, batch, seq);
            self.bytes.add(bytes);
            x = y;
        }
        x
    }

    /// Backward pass from the gradient of the final hidden states.
    pub fn backward(&mut self, dhidden: &Tensor) {
        let mut d = dhidden.clone();
        for l in (0..self.layers.len()).rev() {
            d = self.layers[l].backward(&d);
            if let Some(b) = self.boundary_before(l) {
                d = self.boundaries[b].backward(&d);
            }
        }
        let demb = self.emb_ln.backward(&d);
        self.tok.backward(&demb);
        self.pos.backward(&demb);
        for layer in &mut self.layers {
            layer.sync_compressor_grads();
        }
    }

    /// Index of the boundary crossed *before* layer `l`, if any.
    fn boundary_before(&self, l: usize) -> Option<usize> {
        self.stage_offsets
            .iter()
            .position(|&o| o == l)
            .and_then(|stage| stage.checked_sub(1))
    }

    /// Visits model parameters (embeddings, norms, sharded layers).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        self.emb_ln.visit_params(f);
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits compressor parameters (auto-encoder matrices at TP reduces
    /// and pipeline boundaries).
    pub fn visit_compressor_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for layer in &mut self.layers {
            layer.visit_compressor_params(f);
        }
        for b in &mut self.boundaries {
            b.visit_params(f);
        }
    }

    /// Visits model and compressor parameters (everything the optimizer
    /// updates).
    pub fn visit_all_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.visit_params(f);
        self.visit_compressor_params(f);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_all_params(&mut |p| p.zero_grad());
    }

    /// Total trainable scalars, including compressor parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_all_params(&mut |p| n += p.len());
        n
    }

    /// Reassembles a serial checkpoint from the sharded weights,
    /// *dropping* all compressor parameters — the paper's §4.4 workflow:
    /// "we can use the AE at the pre-training phase and remove it during
    /// the fine-tuning phase".
    pub fn to_serial(&self) -> BertEncoder {
        let layers = self.layers.iter().map(|l| l.to_serial()).collect();
        BertEncoder::from_parts(
            self.tok.clone(),
            self.pos.clone(),
            self.emb_ln.clone(),
            layers,
            self.config.bert.clone(),
        )
    }
}

/// First (global) layer index of each of `pp` stages over `layers` layers.
///
/// Extra layers (when `pp` doesn't divide `layers`) are front-loaded onto
/// the earliest stages. Shared with the threaded runtime so both
/// executions agree on the stage → layer mapping.
pub fn stage_offsets(layers: usize, pp: usize) -> Vec<usize> {
    let base = layers / pp;
    let extra = layers % pp;
    let mut offsets = Vec::with_capacity(pp);
    let mut acc = 0;
    for s in 0..pp {
        offsets.push(acc);
        acc += base + usize::from(s < extra);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(tp: usize, pp: usize, plan: CompressionPlan) -> MpConfig {
        MpConfig {
            bert: BertConfig {
                vocab: 32,
                hidden: 16,
                layers: 4,
                heads: 4,
                ff_hidden: 32,
                max_seq: 8,
            },
            tp,
            pp,
            plan,
            tokens: 2 * 4,
            error_feedback: false,
        }
    }

    #[test]
    fn uncompressed_mp_matches_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = tiny_config(2, 2, CompressionPlan::none());
        let mut serial = BertEncoder::new(&mut rng, cfg.bert.clone());
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        let mut mp = MpBert::from_serial(&serial, cfg, &mut rng2);
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let want = serial.forward(&ids, 2, 4);
        let got = mp.forward(&ids, 2, 4);
        assert!(
            got.max_abs_diff(&want) < 1e-4,
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn stage_offsets_balanced() {
        assert_eq!(stage_offsets(24, 4), vec![0, 6, 12, 18]);
        assert_eq!(stage_offsets(4, 2), vec![0, 2]);
        assert_eq!(stage_offsets(5, 2), vec![0, 3]);
    }

    #[test]
    fn boundary_placement_follows_plan() {
        // Compress last 2 of 4 layers, PP=2: boundary feeds stage 1 whose
        // first layer (2) is covered → boundary compressed → traffic ratio > 1.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let plan = CompressionPlan::last_layers(CompressorSpec::Q2, 4, 2);
        let mut mp = MpBert::new(&mut rng, tiny_config(1, 2, plan));
        let ids = [1usize; 8];
        let _ = mp.forward(&ids, 2, 4);
        let boundary_bytes = mp.boundaries[0].bytes();
        assert!(
            boundary_bytes.ratio() > 2.0,
            "ratio {}",
            boundary_bytes.ratio()
        );
    }

    #[test]
    fn tp1_applies_no_tensor_compression() {
        // With TP=1 there is no all-reduce; compression must not perturb
        // the math inside layers (only at the PP boundary).
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg_plan = CompressionPlan::last_layers(CompressorSpec::A1, 4, 2);
        let serial_cfg = tiny_config(1, 1, CompressionPlan::none());
        let mut serial = BertEncoder::new(&mut rng, serial_cfg.bert.clone());
        let mut rng2 = ChaCha8Rng::seed_from_u64(3);
        let mut mp = MpBert::from_serial(&serial, tiny_config(1, 1, cfg_plan), &mut rng2);
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let want = serial.forward(&ids, 2, 4);
        let got = mp.forward(&ids, 2, 4);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn compression_perturbs_but_training_signal_flows() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let plan = CompressionPlan::last_layers(CompressorSpec::Q2, 4, 2);
        let cfg = tiny_config(2, 2, plan);
        let mut serial = BertEncoder::new(&mut rng, cfg.bert.clone());
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let mut mp = MpBert::from_serial(&serial, cfg, &mut rng2);
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let want = serial.forward(&ids, 2, 4);
        let got = mp.forward(&ids, 2, 4);
        let diff = got.max_abs_diff(&want);
        assert!(diff > 1e-6, "4-bit quantization should perturb the output");

        mp.zero_grad();
        mp.backward(&Tensor::ones([8, 16]));
        let mut grad_mass = 0.0;
        mp.visit_params(&mut |p| grad_mass += p.grad.sq_norm());
        assert!(grad_mass > 0.0, "gradients must flow through compression");
    }

    #[test]
    fn param_count_includes_ae_when_active() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let plan = CompressionPlan::last_layers(CompressorSpec::A2, 4, 2);
        let mut with_ae = MpBert::new(&mut rng, tiny_config(2, 2, plan));
        let mut rng2 = ChaCha8Rng::seed_from_u64(6);
        let mut without = MpBert::new(&mut rng2, tiny_config(2, 2, CompressionPlan::none()));
        assert!(with_ae.num_params() > without.num_params());
    }

    #[test]
    #[should_panic(expected = "not divisible by TP")]
    fn config_validation_rejects_bad_tp() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut cfg = tiny_config(1, 1, CompressionPlan::none());
        cfg.tp = 3;
        MpBert::new(&mut rng, cfg);
    }
}

#[cfg(test)]
mod serial_round_trip_tests {
    use super::*;

    #[test]
    fn to_serial_round_trips_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cfg = MpConfig {
            bert: BertConfig {
                vocab: 32,
                hidden: 16,
                layers: 4,
                heads: 4,
                ff_hidden: 32,
                max_seq: 8,
            },
            tp: 2,
            pp: 2,
            plan: CompressionPlan::last_layers(CompressorSpec::A2, 4, 2),
            tokens: 8,
            error_feedback: false,
        };
        let mut serial = BertEncoder::new(&mut rng, cfg.bert.clone());
        let mut rng2 = ChaCha8Rng::seed_from_u64(12);
        let mp = MpBert::from_serial(&serial, cfg, &mut rng2);
        let mut rebuilt = mp.to_serial();

        // Identical forward outputs (compressors dropped, weights exact).
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let want = serial.forward(&ids, 2, 4);
        let got = rebuilt.forward(&ids, 2, 4);
        assert!(
            got.max_abs_diff(&want) < 1e-6,
            "round-trip diff {}",
            got.max_abs_diff(&want)
        );
        assert_eq!(rebuilt.num_params(), serial.num_params());
    }
}
