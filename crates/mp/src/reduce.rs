//! The compressed all-reduce at the heart of the paper's §3.2.
//!
//! In Megatron tensor parallelism, each worker holds a *partial* activation
//! (its shard's contribution) and the workers sum them with an all-reduce.
//! The paper compresses each partial before the reduce:
//!
//! - the auto-encoder's codes are linear in the input, so codes can be
//!   summed on the wire and the result decoded once (true all-reduce);
//! - sparse/quantized messages cannot be summed, so they travel by
//!   all-gather and every worker decodes and sums the gathered messages.
//!
//! Both paths are executed here with real arithmetic, one compressor
//! instance per simulated worker, so accuracy experiments measure exactly
//! what the lossy reduce does to training.

use actcomp_compress::Compressor;
use actcomp_nn::Parameter;
use actcomp_tensor::Tensor;

/// Byte counters for the traffic a compressed reduce generates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CommBytes {
    /// Bytes this operation put on the wire.
    pub wire: usize,
    /// Bytes the equivalent uncompressed operation would have moved.
    pub dense: usize,
}

impl CommBytes {
    /// Accumulates another operation's bytes.
    pub fn add(&mut self, other: CommBytes) {
        self.wire += other.wire;
        self.dense += other.dense;
    }

    /// Wire-level compression ratio achieved so far.
    pub fn ratio(&self) -> f64 {
        self.dense as f64 / self.wire.max(1) as f64
    }
}

/// A compressed sum-reduction across `world` simulated tensor-parallel
/// workers.
///
/// Holds one [`Compressor`] per worker (auto-encoder instances are
/// initialized identically and kept in sync by [`CompressedAllReduce::sync_param_grads`]).
pub struct CompressedAllReduce {
    workers: Vec<Box<dyn Compressor>>,
}

impl std::fmt::Debug for CompressedAllReduce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompressedAllReduce({} x {})",
            self.workers.len(),
            self.workers.first().map(|w| w.name()).unwrap_or("?")
        )
    }
}

impl CompressedAllReduce {
    /// Builds a reduce over per-worker compressors.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty.
    pub fn new(workers: Vec<Box<dyn Compressor>>) -> Self {
        assert!(!workers.is_empty(), "reduce needs at least one worker");
        CompressedAllReduce { workers }
    }

    /// Number of participating workers.
    pub fn world(&self) -> usize {
        self.workers.len()
    }

    /// Reduces the per-worker partials into their (lossy) sum, returning
    /// the reduced tensor and the bytes moved.
    ///
    /// # Panics
    ///
    /// Panics if `partials.len()` differs from the world size or shapes
    /// disagree.
    pub fn forward(&mut self, partials: &[Tensor]) -> (Tensor, CommBytes) {
        assert_eq!(
            partials.len(),
            self.world(),
            "{} partials for {} workers",
            partials.len(),
            self.world()
        );
        // Per-rank byte accounting: a ring all-reduce moves 2(p−1)/p · S
        // per rank; an all-gather delivers (p−1) peer messages per rank.
        let p_world = self.world();
        let per_rank_ar = |bytes: usize| 2 * (p_world - 1) * bytes / p_world.max(1);
        let dense = per_rank_ar(partials[0].len() * 2);
        let summable = self.workers[0].summable();
        if summable {
            // Compress per worker, sum codes on the wire, decode once.
            let msgs: Vec<_> = self
                .workers
                .iter_mut()
                .zip(partials)
                .map(|(w, p)| w.compress(p))
                .collect();
            let mut total = msgs[0].clone();
            for m in &msgs[1..] {
                total = total.sum(m);
            }
            let wire = per_rank_ar(msgs[0].wire_bytes(2));
            let out = self.workers[0].decompress(&total);
            (out, CommBytes { wire, dense })
        } else {
            // All-gather messages; every worker decodes and sums locally.
            // (Simulated once — all workers produce the same sum.)
            let mut gathered = 0;
            let mut out: Option<Tensor> = None;
            for (w, p) in self.workers.iter_mut().zip(partials) {
                let msg = w.compress(p);
                gathered += msg.wire_bytes(2);
                let dec = w.decompress(&msg);
                match &mut out {
                    Some(acc) => acc.add_assign(&dec),
                    None => out = Some(dec),
                }
            }
            // Each rank receives the other (p−1) ranks' messages.
            let wire = gathered * (p_world - 1) / p_world.max(1);
            (out.expect("at least one worker"), CommBytes { wire, dense })
        }
    }

    /// Routes the gradient of the reduced output back to each worker's
    /// partial, accumulating any compressor-parameter gradients.
    ///
    /// The sum node's gradient fans out identically; each worker's
    /// compressor then applies its own backward rule (AE matmuls, sparse
    /// mask, straight-through).
    pub fn backward(&mut self, dy: &Tensor) -> Vec<Tensor> {
        self.workers.iter_mut().map(|w| w.backward(dy)).collect()
    }

    /// Sums compressor-parameter gradients across workers and installs the
    /// sum in every instance — the gradient all-reduce that keeps
    /// replicated auto-encoder parameters in sync.
    pub fn sync_param_grads(&mut self) {
        let mut sums: Vec<Tensor> = Vec::new();
        for w in &mut self.workers {
            let mut i = 0;
            w.visit_params(&mut |p| {
                if i == sums.len() {
                    sums.push(p.grad.clone());
                } else {
                    sums[i].add_assign(&p.grad);
                }
                i += 1;
            });
        }
        for w in &mut self.workers {
            let mut i = 0;
            w.visit_params(&mut |p| {
                p.grad = sums[i].clone();
                i += 1;
            });
        }
    }

    /// Visits every worker's compressor parameters (for the optimizer).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for w in &mut self.workers {
            w.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::spec::CompressorSpec;
    use actcomp_compress::{AutoEncoder, Identity, TopK};
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn partials(seed: u64, world: usize, rows: usize, h: usize) -> Vec<Tensor> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..world)
            .map(|_| init::randn(&mut rng, [rows, h], 1.0))
            .collect()
    }

    #[test]
    fn identity_reduce_is_exact_sum() {
        let ps = partials(0, 4, 3, 8);
        let mut reduce = CompressedAllReduce::new(
            (0..4)
                .map(|_| Box::new(Identity::new()) as Box<dyn Compressor>)
                .collect(),
        );
        let (out, bytes) = reduce.forward(&ps);
        let mut expect = ps[0].clone();
        for p in &ps[1..] {
            expect.add_assign(p);
        }
        assert!(out.max_abs_diff(&expect) < 1e-5);
        assert_eq!(bytes.wire, bytes.dense);
    }

    #[test]
    fn ae_reduce_equals_decode_of_summed_codes() {
        // With identical AE weights, reduce(x_i) == dec(Σ enc(x_i))
        // == dec(enc(Σ x_i)) by linearity.
        let ps = partials(1, 2, 4, 16);
        let mk = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Box::new(AutoEncoder::new(&mut rng, 16, 4)) as Box<dyn Compressor>
        };
        let mut reduce = CompressedAllReduce::new(vec![mk(7), mk(7)]);
        let (out, bytes) = reduce.forward(&ps);

        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut single = AutoEncoder::new(&mut rng, 16, 4);
        let direct = single.round_trip(&ps[0].add(&ps[1]));
        assert!(out.max_abs_diff(&direct) < 1e-4);
        assert!(bytes.wire < bytes.dense);
    }

    #[test]
    fn topk_reduce_sums_decoded_messages() {
        let ps = partials(2, 2, 2, 8);
        let mut reduce = CompressedAllReduce::new(vec![
            Box::new(TopK::new(4)) as Box<dyn Compressor>,
            Box::new(TopK::new(4)),
        ]);
        let (out, bytes) = reduce.forward(&ps);
        let mut t0 = TopK::new(4);
        let mut t1 = TopK::new(4);
        let expect = t0.round_trip(&ps[0]).add(&t1.round_trip(&ps[1]));
        assert!(out.max_abs_diff(&expect) < 1e-6);
        assert!(bytes.wire < bytes.dense);
    }

    #[test]
    fn backward_fans_out_per_worker() {
        let ps = partials(3, 2, 2, 8);
        let mut reduce = CompressedAllReduce::new(vec![
            Box::new(TopK::new(4)) as Box<dyn Compressor>,
            Box::new(TopK::new(4)),
        ]);
        let _ = reduce.forward(&ps);
        let dy = Tensor::ones([2, 8]);
        let dxs = reduce.backward(&dy);
        assert_eq!(dxs.len(), 2);
        // Each worker's gradient is masked to its own kept support.
        for (dx, p) in dxs.iter().zip(&ps) {
            let mut t = TopK::new(4);
            let kept = t.round_trip(p);
            for j in 0..dx.len() {
                if kept[j] == 0.0 && p[j] != 0.0 {
                    assert_eq!(dx[j], 0.0);
                }
            }
        }
    }

    #[test]
    fn ae_grads_sync_across_workers() {
        let ps = partials(4, 2, 4, 16);
        let spec = CompressorSpec::A2;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 4 * 16;
        let w0 = spec.build(&mut rng, n, 16);
        let mut rng2 = ChaCha8Rng::seed_from_u64(9);
        let w1 = spec.build(&mut rng2, n, 16);
        let mut reduce = CompressedAllReduce::new(vec![w0, w1]);
        let _ = reduce.forward(&ps);
        let _ = reduce.backward(&Tensor::ones([4, 16]));
        reduce.sync_param_grads();
        // After sync, every worker's grads are identical.
        let mut all: Vec<Tensor> = Vec::new();
        reduce.visit_params(&mut |p| all.push(p.grad.clone()));
        let half = all.len() / 2;
        for i in 0..half {
            assert!(all[i].max_abs_diff(&all[half + i]) < 1e-6);
        }
    }
}
