//! Single-worker shard primitives.
//!
//! [`crate::TpAttention`] and [`crate::TpFeedForward`] simulate all
//! tensor-parallel workers inside one struct; the threaded runtime
//! (`actcomp-runtime`) instead gives each OS thread exactly one shard.
//! Both build on the types here so the per-shard arithmetic — and
//! therefore the floating-point result, which depends on operation
//! order — is shared rather than duplicated.

use actcomp_nn::Parameter;
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{CompiledPlan, FusePolicy, OutBind};
use actcomp_tensor::{workspace, Tensor, Workspace};

/// One worker's shard of a column-parallel linear: full input, a
/// `[in, out/world]` weight slice and its `[out/world]` bias slice.
#[derive(Debug, Clone)]
pub struct ColumnShard {
    /// This worker's `[in, out/world]` weight columns.
    pub weight: Parameter,
    /// This worker's `[out/world]` bias slice.
    pub bias: Parameter,
}

impl ColumnShard {
    /// Splits a full `[in, out]` weight and `[out]` bias into `world`
    /// column shards, one per worker.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides the output width.
    pub fn split(weight: &Tensor, bias: &Tensor, world: usize) -> Vec<ColumnShard> {
        let weights = weight.split_cols(world);
        let biases = bias.reshaped([1, bias.len()]).split_cols(world);
        weights
            .into_iter()
            .zip(biases)
            .map(|(w, b)| {
                let width = b.len();
                ColumnShard {
                    weight: Parameter::new(w),
                    bias: Parameter::new(b.reshape([width])),
                }
            })
            .collect()
    }

    /// `x · W + b` for this worker's slice; `x` is the full (replicated)
    /// input.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, ws))
    }

    /// [`ColumnShard::forward`] with caller-provided scratch: the same
    /// `matmul → bias` graph segment the serial [`actcomp_nn::Linear`]
    /// emits, so a shard's columns are bit-identical to the serial
    /// layer's column slice.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = self.bias.value.len();
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gw = g.input(kin, n);
        let gb = g.input_vec(n);
        let y = g.matmul(gx, gw);
        let h = g.bias_add(y, gb);
        g.mark_output(h);
        let plan = g.compile(FusePolicy::Auto).expect("column shard graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                self.weight.value.as_slice(),
                self.bias.value.as_slice(),
            ],
            vec![OutBind::Lease],
            ws,
        );
        Tensor::from_vec(res[0].take().expect("leased output"), [m, n])
    }

    /// Accumulates weight/bias gradients from `dout` against the forward
    /// input `x`, returning this worker's *partial* input gradient (the
    /// caller sums partials across workers).
    pub fn backward(&mut self, x: &Tensor, dout: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(x, dout, ws))
    }

    /// [`ColumnShard::backward`] with caller-provided scratch; one graph
    /// segment whose weight/bias gradient outputs accumulate in place
    /// (`grad += xᵀ dout`, no temporary).
    pub fn backward_ws(&mut self, x: &Tensor, dout: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = dout.dims()[1];
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gdy = g.input(m, n);
        let gw = g.input(kin, n);
        let dw = g.matmul_tn(gx, gdy);
        let db = g.sum_axis0(gdy);
        let dx = g.matmul_nt(gdy, gw);
        g.mark_output(dw);
        g.mark_output(db);
        g.mark_output(dx);
        let plan = g.compile(FusePolicy::Auto).expect("column shard backward");
        let mut res = plan.run(
            &[x.as_slice(), dout.as_slice(), self.weight.value.as_slice()],
            vec![
                OutBind::Acc(self.weight.grad.as_mut_slice()),
                OutBind::Acc(self.bias.grad.as_mut_slice()),
                OutBind::Lease,
            ],
            ws,
        );
        Tensor::from_vec(res[2].take().expect("leased dx"), [m, kin])
    }

    /// Visits the weight then the bias.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// One worker's shard of a row-parallel linear: a `[in/world, out]`
/// weight slice producing a *partial* output that must be all-reduced.
///
/// The shared output bias is owned by the caller (it is added once,
/// after the reduce), so this type holds only the weight.
#[derive(Debug, Clone)]
pub struct RowShard {
    /// This worker's `[in/world, out]` weight rows.
    pub weight: Parameter,
}

impl RowShard {
    /// Splits a full `[in, out]` weight into `world` row shards.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides the input width.
    pub fn split(weight: &Tensor, world: usize) -> Vec<RowShard> {
        weight
            .split_rows(world)
            .into_iter()
            .map(|w| RowShard {
                weight: Parameter::new(w),
            })
            .collect()
    }

    /// This worker's partial output `x · W` (pre-reduce, no bias).
    pub fn partial(&self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.partial_ws(x, ws))
    }

    /// [`RowShard::partial`] with caller-provided scratch.
    pub fn partial_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = self.weight.value.dims()[1];
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gw = g.input(kin, n);
        let y = g.matmul(gx, gw);
        g.mark_output(y);
        let plan = g.compile(FusePolicy::Auto).expect("row shard graph");
        let mut res = plan.run(
            &[x.as_slice(), self.weight.value.as_slice()],
            vec![OutBind::Lease],
            ws,
        );
        Tensor::from_vec(res[0].take().expect("leased partial"), [m, n])
    }

    /// Accumulates the weight gradient from the (post-reduce) partial
    /// gradient `dpartial` against the forward input shard `x`, returning
    /// the input-shard gradient.
    pub fn backward(&mut self, x: &Tensor, dpartial: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(x, dpartial, ws))
    }

    /// [`RowShard::backward`] with caller-provided scratch; one graph
    /// segment, weight gradient accumulating in place.
    pub fn backward_ws(&mut self, x: &Tensor, dpartial: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = dpartial.dims()[1];
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gdy = g.input(m, n);
        let gw = g.input(kin, n);
        let dw = g.matmul_tn(gx, gdy);
        let dx = g.matmul_nt(gdy, gw);
        g.mark_output(dw);
        g.mark_output(dx);
        let plan = g.compile(FusePolicy::Auto).expect("row shard backward");
        let mut res = plan.run(
            &[
                x.as_slice(),
                dpartial.as_slice(),
                self.weight.value.as_slice(),
            ],
            vec![
                OutBind::Acc(self.weight.grad.as_mut_slice()),
                OutBind::Lease,
            ],
            ws,
        );
        Tensor::from_vec(res[1].take().expect("leased dx"), [m, kin])
    }

    /// Visits the weight.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
    }
}

/// Extracts the `[seq, d]` block of local head `hd`, batch `t` from a
/// `[batch·seq, width]` worker tensor.
pub fn head_block(x: &Tensor, t: usize, hd: usize, seq: usize, d: usize, width: usize) -> Tensor {
    workspace::with_thread_default(|ws| head_block_ws(x, t, hd, seq, d, width, ws))
}

/// [`head_block`] into a buffer leased from `ws`.
#[allow(clippy::too_many_arguments)]
pub fn head_block_ws(
    x: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    width: usize,
    ws: &mut Workspace,
) -> Tensor {
    let mut out = ws.lease(seq * d);
    let base = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * width + base;
        out[r * d..(r + 1) * d].copy_from_slice(&x.as_slice()[row..row + d]);
    }
    Tensor::from_vec(out, [seq, d])
}

/// Writes a `[seq, d]` block back into a `[batch·seq, width]` tensor.
pub fn write_head_block(
    out: &mut Tensor,
    block: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    width: usize,
) {
    let base = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * width + base;
        out.as_mut_slice()[row..row + d].copy_from_slice(&block.as_slice()[r * d..(r + 1) * d]);
    }
}

/// Scaled-dot-product attention over one worker's local heads: consumes
/// the worker's `[batch·seq, local_heads·d]` query/key/value shards and
/// returns the context plus per-`(batch, head)` softmax probabilities for
/// the backward pass.
pub fn attn_context_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    batch: usize,
    seq: usize,
    local_heads: usize,
    d: usize,
) -> (Tensor, Vec<Tensor>) {
    workspace::with_thread_default(|ws| {
        attn_context_forward_ws(q, k, v, batch, seq, local_heads, d, ws)
    })
}

/// Per-head `q kᵀ → scaled scores` plan: the `1/√d` scale fuses into the
/// `nt` GEMM's register-tile epilogue. Compiled once per call, run per
/// (batch, head).
fn scores_plan(seq: usize, d: usize, scale: f32) -> CompiledPlan {
    let mut g = Graph::new();
    let gq = g.input(seq, d);
    let gk = g.input(seq, d);
    let s = g.matmul_nt(gq, gk);
    let ss = g.scale(s, scale);
    g.mark_output(ss);
    g.compile(FusePolicy::Forced(vec![s]))
        .expect("scores graph: scale always fuses")
}

/// [`attn_context_forward`] with caller-provided scratch: head blocks and
/// score matrices are leased from `ws` and recycled per head; the softmax
/// scale executes inside the scores GEMM's epilogue.
#[allow(clippy::too_many_arguments)]
pub fn attn_context_forward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    batch: usize,
    seq: usize,
    local_heads: usize,
    d: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<Tensor>) {
    let hw = local_heads * d;
    let scale = 1.0 / (d as f32).sqrt();
    let sc_plan = scores_plan(seq, d, scale);
    let cx_plan = {
        let mut g = Graph::new();
        let gp = g.input(seq, seq);
        let gv = g.input(seq, d);
        let c = g.matmul(gp, gv);
        g.mark_output(c);
        g.compile(FusePolicy::Auto).expect("context graph")
    };
    let mut ctx = ws.lease_tensor([batch * seq, hw]);
    let mut probs = Vec::with_capacity(batch * local_heads);
    for t in 0..batch {
        for hd in 0..local_heads {
            let qb = head_block_ws(q, t, hd, seq, d, hw, ws);
            let kb = head_block_ws(k, t, hd, seq, d, hw, ws);
            let vb = head_block_ws(v, t, hd, seq, d, hw, ws);
            let mut sres = sc_plan.run(&[qb.as_slice(), kb.as_slice()], vec![OutBind::Lease], ws);
            let scores = Tensor::from_vec(sres[0].take().expect("leased scores"), [seq, seq]);
            let p = scores.softmax_rows();
            let mut cres = cx_plan.run(&[p.as_slice(), vb.as_slice()], vec![OutBind::Lease], ws);
            let c = Tensor::from_vec(cres[0].take().expect("leased context"), [seq, d]);
            write_head_block(&mut ctx, &c, t, hd, seq, d, hw);
            for tmp in [qb, kb, vb, scores, c] {
                ws.recycle_tensor(tmp);
            }
            probs.push(p);
        }
    }
    (ctx, probs)
}

/// Backward of [`attn_context_forward`]: returns the `(dq, dk, dv)` shard
/// gradients from the context gradient `dctx` and the cached
/// probabilities.
#[allow(clippy::too_many_arguments)]
pub fn attn_context_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    probs: &[Tensor],
    dctx: &Tensor,
    batch: usize,
    seq: usize,
    local_heads: usize,
    d: usize,
) -> (Tensor, Tensor, Tensor) {
    workspace::with_thread_default(|ws| {
        attn_context_backward_ws(q, k, v, probs, dctx, batch, seq, local_heads, d, ws)
    })
}

/// [`attn_context_backward`] with caller-provided scratch.
#[allow(clippy::too_many_arguments)]
pub fn attn_context_backward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    probs: &[Tensor],
    dctx: &Tensor,
    batch: usize,
    seq: usize,
    local_heads: usize,
    d: usize,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Tensor) {
    let hw = local_heads * d;
    let scale = 1.0 / (d as f32).sqrt();
    let mut dq = ws.lease_tensor([batch * seq, hw]);
    let mut dk = ws.lease_tensor([batch * seq, hw]);
    let mut dv = ws.lease_tensor([batch * seq, hw]);
    // c = p v → dp = dc vᵀ ; dv = pᵀ dc, then after the softmax backward
    // s = α q kᵀ → dq = (α ds) k ; dk = (α ds)ᵀ q. Two plans, compiled
    // once and run per (batch, head).
    let ctx_bwd = {
        let mut g = Graph::new();
        let gdc = g.input(seq, d);
        let gvb = g.input(seq, d);
        let gp = g.input(seq, seq);
        let dp = g.matmul_nt(gdc, gvb);
        let dvb = g.matmul_tn(gp, gdc);
        g.mark_output(dp);
        g.mark_output(dvb);
        g.compile(FusePolicy::Auto).expect("context backward graph")
    };
    let score_bwd = {
        let mut g = Graph::new();
        let gds = g.input(seq, seq);
        let gkb = g.input(seq, d);
        let gqb = g.input(seq, d);
        let dss = g.scale(gds, scale);
        let dqb = g.matmul(dss, gkb);
        let dkb = g.matmul_tn(dss, gqb);
        g.mark_output(dqb);
        g.mark_output(dkb);
        g.compile(FusePolicy::Auto).expect("scores backward graph")
    };
    for t in 0..batch {
        for hd in 0..local_heads {
            let p = &probs[t * local_heads + hd];
            let qb = head_block_ws(q, t, hd, seq, d, hw, ws);
            let kb = head_block_ws(k, t, hd, seq, d, hw, ws);
            let vb = head_block_ws(v, t, hd, seq, d, hw, ws);
            let dc = head_block_ws(dctx, t, hd, seq, d, hw, ws);

            let mut cres = ctx_bwd.run(
                &[dc.as_slice(), vb.as_slice(), p.as_slice()],
                vec![OutBind::Lease, OutBind::Lease],
                ws,
            );
            let dp = Tensor::from_vec(cres[0].take().expect("leased dp"), [seq, seq]);
            let dvb = Tensor::from_vec(cres[1].take().expect("leased dvb"), [seq, d]);
            let ds = Tensor::softmax_rows_backward(p, &dp);
            let mut sres = score_bwd.run(
                &[ds.as_slice(), kb.as_slice(), qb.as_slice()],
                vec![OutBind::Lease, OutBind::Lease],
                ws,
            );
            let dqb = Tensor::from_vec(sres[0].take().expect("leased dqb"), [seq, d]);
            let dkb = Tensor::from_vec(sres[1].take().expect("leased dkb"), [seq, d]);

            write_head_block(&mut dq, &dqb, t, hd, seq, d, hw);
            write_head_block(&mut dk, &dkb, t, hd, seq, d, hw);
            write_head_block(&mut dv, &dvb, t, hd, seq, d, hw);
            for tmp in [qb, kb, vb, dc, dp, dvb, ds, dqb, dkb] {
                ws.recycle_tensor(tmp);
            }
        }
    }
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn column_shards_concat_to_full_output() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = init::randn(&mut rng, [4, 6], 1.0);
        let b = init::randn(&mut rng, [6], 1.0);
        let x = init::randn(&mut rng, [3, 4], 1.0);
        let full = x.matmul(&w).add_row_broadcast(&b);
        let shards = ColumnShard::split(&w, &b, 2);
        let outs: Vec<Tensor> = shards.iter().map(|s| s.forward(&x)).collect();
        let refs: Vec<&Tensor> = outs.iter().collect();
        assert!(Tensor::concat_cols(&refs).max_abs_diff(&full) < 1e-6);
    }

    #[test]
    fn row_shard_partials_sum_to_full_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = init::randn(&mut rng, [6, 4], 1.0);
        let x = init::randn(&mut rng, [3, 6], 1.0);
        let full = x.matmul(&w);
        let shards = RowShard::split(&w, 2);
        let xs = x.split_cols(2);
        let mut sum = shards[0].partial(&xs[0]);
        sum.add_assign(&shards[1].partial(&xs[1]));
        assert!(sum.max_abs_diff(&full) < 1e-5);
    }

    #[test]
    fn attn_context_round_trips_through_backward_shapes() {
        let (batch, seq, lh, d) = (2, 3, 2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let q = init::randn(&mut rng, [batch * seq, lh * d], 1.0);
        let k = init::randn(&mut rng, [batch * seq, lh * d], 1.0);
        let v = init::randn(&mut rng, [batch * seq, lh * d], 1.0);
        let (ctx, probs) = attn_context_forward(&q, &k, &v, batch, seq, lh, d);
        assert_eq!(ctx.dims(), &[batch * seq, lh * d]);
        assert_eq!(probs.len(), batch * lh);
        let dctx = init::randn(&mut rng, [batch * seq, lh * d], 1.0);
        let (dq, dk, dv) = attn_context_backward(&q, &k, &v, &probs, &dctx, batch, seq, lh, d);
        assert_eq!(dq.dims(), q.dims());
        assert_eq!(dk.dims(), k.dims());
        assert_eq!(dv.dims(), v.dims());
    }
}
