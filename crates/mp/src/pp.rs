//! Pipeline-parallel stage boundaries with activation compression (§3.3).

use crate::reduce::CommBytes;
use actcomp_compress::Compressor;
use actcomp_nn::Parameter;
use actcomp_tensor::Tensor;

/// A pipeline-stage boundary: the activation crossing it is compressed on
/// the sending stage and decompressed on the receiving stage.
///
/// The backward edge carries the gradient with respect to the boundary
/// activation; for sparsifiers it reuses the forward support and for the
/// auto-encoder it is the code-space gradient, so no *additional* loss is
/// introduced on the way back (the compressor's `backward` is the exact
/// adjoint of its lossy forward).
pub struct PipelineBoundary {
    compressor: Box<dyn Compressor>,
    bytes: CommBytes,
}

impl std::fmt::Debug for PipelineBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PipelineBoundary({})", self.compressor.name())
    }
}

impl PipelineBoundary {
    /// Creates a boundary with the given compressor.
    pub fn new(compressor: Box<dyn Compressor>) -> Self {
        PipelineBoundary {
            compressor,
            bytes: CommBytes::default(),
        }
    }

    /// Sends `x` across the boundary: the receiving stage sees the
    /// compress→decompress round trip.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let msg = self.compressor.compress(x);
        self.bytes.add(CommBytes {
            wire: msg.wire_bytes(2),
            dense: x.len() * 2,
        });
        self.compressor.decompress(&msg)
    }

    /// Sends the gradient back across the boundary.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.compressor.backward(dy)
    }

    /// Cumulative traffic accounting.
    pub fn bytes(&self) -> CommBytes {
        self.bytes
    }

    /// Visits compressor parameters (auto-encoder boundaries are
    /// trainable).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.compressor.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::{Identity, Quantizer, TopK};
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_boundary_is_transparent() {
        let mut b = PipelineBoundary::new(Box::new(Identity::new()));
        let x = Tensor::ones([4, 8]);
        assert_eq!(b.forward(&x), x);
        assert_eq!(b.backward(&x), x);
        assert_eq!(b.bytes().ratio(), 1.0);
    }

    #[test]
    fn compressed_boundary_reduces_traffic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [16, 32], 1.0);
        let mut b = PipelineBoundary::new(Box::new(Quantizer::new(4)));
        let y = b.forward(&x);
        assert!(x.max_abs_diff(&y) > 0.0);
        assert!(b.bytes().ratio() > 3.0, "ratio {}", b.bytes().ratio());
    }

    #[test]
    fn traffic_accumulates_across_sends() {
        let mut b = PipelineBoundary::new(Box::new(TopK::new(4)));
        let x = Tensor::ones([8, 8]);
        let _ = b.forward(&x);
        let w1 = b.bytes().wire;
        let _ = b.forward(&x);
        assert_eq!(b.bytes().wire, 2 * w1);
    }

    #[test]
    fn backward_respects_forward_support() {
        let mut b = PipelineBoundary::new(Box::new(TopK::new(1)));
        let x = Tensor::from_vec(vec![5.0, 1.0], [1, 2]);
        let _ = b.forward(&x);
        let dx = b.backward(&Tensor::ones([1, 2]));
        assert_eq!(dx.as_slice(), &[1.0, 0.0]);
    }
}
