//! # actcomp-mp
//!
//! Numerically-real model-parallel execution for the `actcomp`
//! reproduction of *"Does Compressing Activations Help Model Parallel
//! Training?"* (MLSys 2024).
//!
//! Where `actcomp-distsim` *costs* model parallelism, this crate
//! *executes* it: encoder layers are genuinely sharded across simulated
//! tensor-parallel workers (Megatron's column-then-row split), partial
//! activations are summed through a [`CompressedAllReduce`] that runs the
//! real compressor arithmetic, and pipeline stages exchange activations
//! through compressing [`PipelineBoundary`]s. With compression disabled
//! the whole stack is numerically equivalent to the serial `actcomp-nn`
//! model (tested), so the accuracy experiments isolate exactly the effect
//! the paper studies.
//!
//! - [`reduce`]: compressed all-reduce / all-gather with byte accounting,
//! - [`shard`]: single-worker shard primitives (also the building blocks
//!   of the threaded `actcomp-runtime` engine),
//! - [`tp`]: sharded attention, MLP, and encoder blocks,
//! - [`pp`]: compressing stage boundaries,
//! - [`model`]: [`MpBert`] — the full model with a per-layer
//!   [`CompressionPlan`](actcomp_compress::CompressionPlan),
//! - [`error`]: typed configuration errors ([`MpConfigError`],
//!   [`ShardError`]).
//!
//! # Example
//!
//! ```
//! use actcomp_mp::{MpBert, MpConfig};
//! use actcomp_compress::{plan::CompressionPlan, spec::CompressorSpec};
//! use actcomp_nn::BertConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let cfg = MpConfig {
//!     bert: BertConfig { vocab: 32, hidden: 16, layers: 4, heads: 4, ff_hidden: 32, max_seq: 8 },
//!     tp: 2,
//!     pp: 2,
//!     plan: CompressionPlan::last_layers(CompressorSpec::A2, 4, 2),
//!     tokens: 8,
//!     error_feedback: false,
//! };
//! let mut model = MpBert::new(&mut rng, cfg);
//! let hidden = model.forward(&[1, 2, 3, 4, 5, 6, 7, 8], 2, 4);
//! assert_eq!(hidden.dims(), &[8, 16]);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod model;
pub mod pp;
pub mod reduce;
pub mod shard;
pub mod tp;

pub use error::{MpConfigError, ShardError};
pub use model::{stage_offsets, MpBert, MpConfig};
pub use pp::PipelineBoundary;
pub use reduce::{CommBytes, CompressedAllReduce};
pub use shard::{ColumnShard, RowShard};
pub use tp::{TpAttention, TpEncoderLayer, TpFeedForward};
