//! Typed errors for user-reachable model-parallel configuration paths.
//!
//! The panicking `validate`/`from_serial` entry points are kept for
//! ergonomic test code, but they are thin wrappers over the `try_*`
//! variants here, so embedding callers (the CLI, the threaded runtime)
//! can surface configuration mistakes as values instead of crashes. The
//! `Display` text is byte-identical to the historical panic messages.

use actcomp_nn::BertConfigError;

/// Why an [`crate::MpConfig`] cannot describe a runnable model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpConfigError {
    /// The underlying architecture is impossible.
    Bert(BertConfigError),
    /// `tp` or `pp` is zero.
    NonPositiveDegrees,
    /// Attention heads cannot be split evenly across TP workers.
    HeadsNotDivisibleByTp {
        /// Head count.
        heads: usize,
        /// Tensor-parallel degree.
        tp: usize,
    },
    /// Fewer layers than pipeline stages.
    TooFewLayersForPp {
        /// Encoder layer count.
        layers: usize,
        /// Pipeline-parallel degree.
        pp: usize,
    },
    /// The compression plan covers layers past the end of the model.
    PlanExceedsLayers,
}

impl std::fmt::Display for MpConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpConfigError::Bert(e) => e.fmt(f),
            MpConfigError::NonPositiveDegrees => f.write_str("parallel degrees must be positive"),
            MpConfigError::HeadsNotDivisibleByTp { heads, tp } => {
                write!(f, "{heads} heads not divisible by TP={tp}")
            }
            MpConfigError::TooFewLayersForPp { layers, pp } => {
                write!(f, "{layers} layers < PP={pp}")
            }
            MpConfigError::PlanExceedsLayers => f.write_str("compression plan exceeds layer count"),
        }
    }
}

impl std::error::Error for MpConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpConfigError::Bert(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BertConfigError> for MpConfigError {
    fn from(e: BertConfigError) -> Self {
        MpConfigError::Bert(e)
    }
}

/// Why a serial layer cannot be sharded across the requested workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The supplied all-reduce serves a different number of workers.
    ReduceWorldMismatch {
        /// Workers the reduce was built for.
        reduce_world: usize,
        /// Workers requested for the shard.
        world: usize,
    },
    /// Attention heads cannot be split evenly across the workers.
    HeadsNotDivisible {
        /// Head count.
        heads: usize,
        /// Worker count.
        world: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ReduceWorldMismatch { .. } => f.write_str("reduce world mismatch"),
            ShardError::HeadsNotDivisible { heads, world } => {
                write!(f, "{heads} heads not divisible across {world} workers")
            }
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_panic_messages() {
        assert_eq!(
            MpConfigError::NonPositiveDegrees.to_string(),
            "parallel degrees must be positive"
        );
        assert_eq!(
            MpConfigError::HeadsNotDivisibleByTp { heads: 4, tp: 3 }.to_string(),
            "4 heads not divisible by TP=3"
        );
        assert_eq!(
            MpConfigError::TooFewLayersForPp { layers: 2, pp: 4 }.to_string(),
            "2 layers < PP=4"
        );
        assert_eq!(
            MpConfigError::PlanExceedsLayers.to_string(),
            "compression plan exceeds layer count"
        );
        assert_eq!(
            ShardError::ReduceWorldMismatch {
                reduce_world: 2,
                world: 4
            }
            .to_string(),
            "reduce world mismatch"
        );
        assert_eq!(
            ShardError::HeadsNotDivisible { heads: 4, world: 3 }.to_string(),
            "4 heads not divisible across 3 workers"
        );
    }
}
