//! Tensor-parallel (Megatron-style) transformer sublayers with real
//! sharded arithmetic and compressed all-reduces.
//!
//! Each simulated worker owns a column shard of the attention QKV / MLP
//! expansion weights and a row shard of the output projections. The two
//! row-parallel projections per layer are where Megatron all-reduces
//! partial activations — and where the paper inserts compression (its
//! Figure 3's `C`/`DC` pairs). With the identity compressor the sharded
//! layer is numerically equivalent to the serial `actcomp_nn` layer
//! (verified by tests), so any accuracy change is attributable to the
//! compressor alone.

use crate::error::ShardError;
use crate::reduce::{CommBytes, CompressedAllReduce};
use crate::shard::{attn_context_backward, attn_context_forward, ColumnShard, RowShard};
use actcomp_nn::{EncoderLayer, Layer, LayerNorm, Parameter};
use actcomp_tensor::Tensor;

/// Column-parallel linear: full input, per-worker output shards.
#[derive(Debug)]
struct ColumnShards {
    /// One [`ColumnShard`] per worker.
    shards: Vec<ColumnShard>,
    cache_x: Option<Tensor>,
}

impl ColumnShards {
    fn from_full(weight: &Tensor, bias: &Tensor, world: usize) -> Self {
        ColumnShards {
            shards: ColumnShard::split(weight, bias, world),
            cache_x: None,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.cache_x = Some(x.clone());
        self.shards.iter().map(|s| s.forward(x)).collect()
    }

    /// Returns the summed input gradient.
    fn backward(&mut self, douts: &[Tensor]) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("ColumnShards::backward without forward");
        let mut dx: Option<Tensor> = None;
        for (shard, dout) in self.shards.iter_mut().zip(douts) {
            let part = shard.backward(&x, dout);
            match &mut dx {
                Some(acc) => acc.add_assign(&part),
                None => dx = Some(part),
            }
        }
        dx.expect("at least one shard")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for shard in &mut self.shards {
            shard.visit_params(f);
        }
    }

    /// Reassembles the full (weight, bias) pair from the shards.
    fn to_full(&self) -> (Tensor, Tensor) {
        let ws: Vec<&Tensor> = self.shards.iter().map(|s| &s.weight.value).collect();
        let weight = Tensor::concat_cols(&ws);
        let mut bias = Vec::new();
        for s in &self.shards {
            bias.extend_from_slice(s.bias.value.as_slice());
        }
        let blen = bias.len();
        (weight, Tensor::from_vec(bias, [blen]))
    }
}

/// Row-parallel linear: per-worker input shards, partial outputs reduced
/// through a (possibly compressing) all-reduce; single shared bias added
/// after the reduce.
#[derive(Debug)]
struct RowShards {
    /// One [`RowShard`] per worker.
    shards: Vec<RowShard>,
    /// Shared `[out]` bias.
    bias: Parameter,
    reduce: CompressedAllReduce,
    cache_inputs: Option<Vec<Tensor>>,
}

impl RowShards {
    fn from_full(weight: &Tensor, bias: &Tensor, reduce: CompressedAllReduce) -> Self {
        let world = reduce.world();
        RowShards {
            shards: RowShard::split(weight, world),
            bias: Parameter::new(bias.clone()),
            reduce,
            cache_inputs: None,
        }
    }

    /// `inputs[i]` is worker `i`'s `[n, in/world]` shard.
    fn forward(&mut self, inputs: Vec<Tensor>) -> (Tensor, CommBytes) {
        let partials: Vec<Tensor> = inputs
            .iter()
            .zip(&self.shards)
            .map(|(x, s)| s.partial(x))
            .collect();
        let (sum, bytes) = self.reduce.forward(&partials);
        let y = sum.add_row_broadcast(&self.bias.value);
        self.cache_inputs = Some(inputs);
        (y, bytes)
    }

    /// Returns per-worker input-shard gradients.
    fn backward(&mut self, dy: &Tensor) -> Vec<Tensor> {
        let inputs = self
            .cache_inputs
            .take()
            .expect("RowShards::backward without forward");
        self.bias.grad.add_assign(&dy.sum_axis0());
        let dpartials = self.reduce.backward(dy);
        inputs
            .iter()
            .zip(&mut self.shards)
            .zip(&dpartials)
            .map(|((x, s), dp)| s.backward(x, dp))
            .collect()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for s in &mut self.shards {
            s.visit_params(f);
        }
        f(&mut self.bias);
    }

    /// Reassembles the full (weight, bias) pair from the shards.
    fn to_full(&self) -> (Tensor, Tensor) {
        let ws: Vec<&Tensor> = self.shards.iter().map(|s| &s.weight.value).collect();
        (Tensor::concat_rows(&ws), self.bias.value.clone())
    }
}

/// Tensor-parallel multi-head self-attention (heads sharded across
/// workers, Megatron's column-then-row split).
#[derive(Debug)]
pub struct TpAttention {
    wq: ColumnShards,
    wk: ColumnShards,
    wv: ColumnShards,
    wo: RowShards,
    heads: usize,
    world: usize,
    hidden: usize,
    cache: Option<TpAttnCache>,
}

#[derive(Debug)]
struct TpAttnCache {
    q: Vec<Tensor>,
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    /// Softmax probabilities per (worker, batch·local_head).
    probs: Vec<Vec<Tensor>>,
    batch: usize,
    seq: usize,
}

impl TpAttention {
    /// Shards a serial attention layer across `world` workers.
    ///
    /// # Panics
    ///
    /// Panics unless `world` divides the head count.
    pub fn from_serial(
        attn: &actcomp_nn::MultiHeadAttention,
        world: usize,
        reduce: CompressedAllReduce,
    ) -> Self {
        match Self::try_from_serial(attn, world, reduce) {
            Ok(tp) => tp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Typed variant of [`TpAttention::from_serial`].
    pub fn try_from_serial(
        attn: &actcomp_nn::MultiHeadAttention,
        world: usize,
        reduce: CompressedAllReduce,
    ) -> Result<Self, ShardError> {
        if reduce.world() != world {
            return Err(ShardError::ReduceWorldMismatch {
                reduce_world: reduce.world(),
                world,
            });
        }
        if world == 0 || !attn.heads().is_multiple_of(world) {
            return Err(ShardError::HeadsNotDivisible {
                heads: attn.heads(),
                world,
            });
        }
        Ok(TpAttention {
            wq: ColumnShards::from_full(&attn.wq.weight.value, &attn.wq.bias.value, world),
            wk: ColumnShards::from_full(&attn.wk.weight.value, &attn.wk.bias.value, world),
            wv: ColumnShards::from_full(&attn.wv.weight.value, &attn.wv.bias.value, world),
            wo: RowShards::from_full(&attn.wo.weight.value, &attn.wo.bias.value, reduce),
            heads: attn.heads(),
            world,
            hidden: attn.hidden(),
            cache: None,
        })
    }

    fn local_heads(&self) -> usize {
        self.heads / self.world
    }

    fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Forward over `[batch·seq, hidden]`.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, CommBytes) {
        let d = self.head_dim();
        let lh = self.local_heads();

        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);

        let mut ctx: Vec<Tensor> = Vec::with_capacity(self.world);
        let mut probs: Vec<Vec<Tensor>> = Vec::with_capacity(self.world);
        for wkr in 0..self.world {
            let (wctx, wprobs) = attn_context_forward(&q[wkr], &k[wkr], &v[wkr], batch, seq, lh, d);
            ctx.push(wctx);
            probs.push(wprobs);
        }

        let (y, bytes) = self.wo.forward(ctx);
        self.cache = Some(TpAttnCache {
            q,
            k,
            v,
            probs,
            batch,
            seq,
        });
        (y, bytes)
    }

    /// Backward; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let TpAttnCache {
            q,
            k,
            v,
            probs,
            batch,
            seq,
        } = self
            .cache
            .take()
            .expect("TpAttention::backward without forward");
        let d = self.head_dim();
        let lh = self.local_heads();

        let dctx = self.wo.backward(dy);
        let mut dq = Vec::with_capacity(self.world);
        let mut dk = Vec::with_capacity(self.world);
        let mut dv = Vec::with_capacity(self.world);
        for wkr in 0..self.world {
            let (dqw, dkw, dvw) = attn_context_backward(
                &q[wkr],
                &k[wkr],
                &v[wkr],
                &probs[wkr],
                &dctx[wkr],
                batch,
                seq,
                lh,
                d,
            );
            dq.push(dqw);
            dk.push(dkw);
            dv.push(dvw);
        }

        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits model parameters (not compressor parameters).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    /// Access to the attention's compressed reduce (AE parameters, sync).
    pub fn reduce_mut(&mut self) -> &mut CompressedAllReduce {
        &mut self.wo.reduce
    }

    /// Reassembles the serial attention layer from the shards.
    pub fn to_serial(&self) -> actcomp_nn::MultiHeadAttention {
        use actcomp_nn::Linear;
        let (qw, qb) = self.wq.to_full();
        let (kw, kb) = self.wk.to_full();
        let (vw, vb) = self.wv.to_full();
        let (ow, ob) = self.wo.to_full();
        actcomp_nn::MultiHeadAttention::from_parts(
            Linear::from_parts(qw, qb),
            Linear::from_parts(kw, kb),
            Linear::from_parts(vw, vb),
            Linear::from_parts(ow, ob),
            self.heads,
        )
    }
}

/// Tensor-parallel feed-forward block (column-parallel expansion,
/// row-parallel contraction with compressed reduce).
#[derive(Debug)]
pub struct TpFeedForward {
    fc1: ColumnShards,
    fc2: RowShards,
    cache_h: Option<Vec<Tensor>>,
}

impl TpFeedForward {
    /// Shards a serial feed-forward block across `world` workers.
    ///
    /// # Panics
    ///
    /// Panics if the reduce serves a different worker count.
    pub fn from_serial(
        ff: &actcomp_nn::FeedForward,
        world: usize,
        reduce: CompressedAllReduce,
    ) -> Self {
        match Self::try_from_serial(ff, world, reduce) {
            Ok(tp) => tp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Typed variant of [`TpFeedForward::from_serial`].
    pub fn try_from_serial(
        ff: &actcomp_nn::FeedForward,
        world: usize,
        reduce: CompressedAllReduce,
    ) -> Result<Self, ShardError> {
        if reduce.world() != world {
            return Err(ShardError::ReduceWorldMismatch {
                reduce_world: reduce.world(),
                world,
            });
        }
        Ok(TpFeedForward {
            fc1: ColumnShards::from_full(&ff.fc1.weight.value, &ff.fc1.bias.value, world),
            fc2: RowShards::from_full(&ff.fc2.weight.value, &ff.fc2.bias.value, reduce),
            cache_h: None,
        })
    }

    /// Forward over `[tokens, hidden]`.
    pub fn forward(&mut self, x: &Tensor) -> (Tensor, CommBytes) {
        let h = self.fc1.forward(x);
        let a: Vec<Tensor> = h.iter().map(|t| t.gelu()).collect();
        self.cache_h = Some(h);
        self.fc2.forward(a)
    }

    /// Backward; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let h = self
            .cache_h
            .take()
            .expect("TpFeedForward::backward without forward");
        let da = self.fc2.backward(dy);
        let dh: Vec<Tensor> = h
            .iter()
            .zip(&da)
            .map(|(hi, dai)| hi.map(actcomp_tensor::ops::gelu_grad).mul(dai))
            .collect();
        self.fc1.backward(&dh)
    }

    /// Visits model parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    /// Access to the block's compressed reduce.
    pub fn reduce_mut(&mut self) -> &mut CompressedAllReduce {
        &mut self.fc2.reduce
    }

    /// Reassembles the serial feed-forward block from the shards.
    pub fn to_serial(&self) -> actcomp_nn::FeedForward {
        use actcomp_nn::Linear;
        let (w1, b1) = self.fc1.to_full();
        let (w2, b2) = self.fc2.to_full();
        actcomp_nn::FeedForward::from_parts(Linear::from_parts(w1, b1), Linear::from_parts(w2, b2))
    }
}

/// One tensor-parallel encoder block: sharded attention and MLP with two
/// (possibly compressed) all-reduces, replicated layer norms.
#[derive(Debug)]
pub struct TpEncoderLayer {
    /// Sharded attention sublayer.
    pub attn: TpAttention,
    /// Post-attention layer norm (replicated).
    pub ln1: LayerNorm,
    /// Sharded feed-forward sublayer.
    pub ff: TpFeedForward,
    /// Post-FF layer norm (replicated).
    pub ln2: LayerNorm,
}

impl TpEncoderLayer {
    /// Shards a serial encoder layer across `world` workers, installing
    /// the two compressed reduces.
    ///
    /// # Panics
    ///
    /// Panics if `world` doesn't divide the head count or a reduce serves
    /// a different worker count.
    pub fn from_serial(
        layer: &EncoderLayer,
        world: usize,
        attn_reduce: CompressedAllReduce,
        ff_reduce: CompressedAllReduce,
    ) -> Self {
        match Self::try_from_serial(layer, world, attn_reduce, ff_reduce) {
            Ok(tp) => tp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Typed variant of [`TpEncoderLayer::from_serial`].
    pub fn try_from_serial(
        layer: &EncoderLayer,
        world: usize,
        attn_reduce: CompressedAllReduce,
        ff_reduce: CompressedAllReduce,
    ) -> Result<Self, ShardError> {
        Ok(TpEncoderLayer {
            attn: TpAttention::try_from_serial(&layer.attn, world, attn_reduce)?,
            ln1: layer.ln1.clone(),
            ff: TpFeedForward::try_from_serial(&layer.ff, world, ff_reduce)?,
            ln2: layer.ln2.clone(),
        })
    }

    /// Forward over `[batch·seq, hidden]`; returns output plus the bytes
    /// both reduces moved.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, CommBytes) {
        let (a, mut bytes) = self.attn.forward(x, batch, seq);
        let h1 = self.ln1.forward(&x.add(&a));
        let (f, b2) = self.ff.forward(&h1);
        bytes.add(b2);
        (self.ln2.forward(&h1.add(&f)), bytes)
    }

    /// Backward; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d2 = self.ln2.backward(dy);
        let df = self.ff.backward(&d2);
        let dh1 = d2.add(&df);
        let d1 = self.ln1.backward(&dh1);
        let dxa = self.attn.backward(&d1);
        d1.add(&dxa)
    }

    /// Visits model parameters (excluding compressor parameters — use
    /// [`TpEncoderLayer::visit_compressor_params`]).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ff.visit_params(f);
        self.ln2.visit_params(f);
    }

    /// Visits compressor (auto-encoder) parameters.
    pub fn visit_compressor_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.attn.reduce_mut().visit_params(f);
        self.ff.reduce_mut().visit_params(f);
    }

    /// All-reduces compressor-parameter gradients across workers.
    pub fn sync_compressor_grads(&mut self) {
        self.attn.reduce_mut().sync_param_grads();
        self.ff.reduce_mut().sync_param_grads();
    }

    /// Reassembles the serial encoder layer (dropping compressors — the
    /// paper's §4.4 observation that the AE can be removed after
    /// pre-training).
    pub fn to_serial(&self) -> EncoderLayer {
        EncoderLayer::from_parts(
            self.attn.to_serial(),
            self.ln1.clone(),
            self.ff.to_serial(),
            self.ln2.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::{Compressor, Identity};
    use actcomp_nn::EncoderLayer;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn identity_reduce(world: usize) -> CompressedAllReduce {
        CompressedAllReduce::new(
            (0..world)
                .map(|_| Box::new(Identity::new()) as Box<dyn Compressor>)
                .collect(),
        )
    }

    fn serial_layer(seed: u64) -> EncoderLayer {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        EncoderLayer::new(&mut rng, 8, 4, 16)
    }

    #[test]
    fn tp_forward_matches_serial_with_identity() {
        for world in [1, 2, 4] {
            let mut serial = serial_layer(0);
            let mut tp = TpEncoderLayer::from_serial(
                &serial,
                world,
                identity_reduce(world),
                identity_reduce(world),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let x = init::randn(&mut rng, [6, 8], 1.0); // batch 3, seq 2
            let want = serial.forward(&x, 3, 2);
            let (got, bytes) = tp.forward(&x, 3, 2);
            assert!(
                got.max_abs_diff(&want) < 1e-4,
                "world {world}: diff {}",
                got.max_abs_diff(&want)
            );
            if world > 1 {
                assert!(bytes.dense > 0);
            }
        }
    }

    #[test]
    fn tp_backward_matches_serial_with_identity() {
        let mut serial = serial_layer(2);
        let world = 2;
        let mut tp = TpEncoderLayer::from_serial(
            &serial,
            world,
            identity_reduce(world),
            identity_reduce(world),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::randn(&mut rng, [4, 8], 1.0); // batch 2, seq 2
        let dy = init::randn(&mut rng, [4, 8], 1.0);

        let _ = serial.forward(&x, 2, 2);
        let dx_serial = serial.backward(&dy);
        let _ = tp.forward(&x, 2, 2);
        let dx_tp = tp.backward(&dy);
        assert!(
            dx_tp.max_abs_diff(&dx_serial) < 1e-4,
            "dx diff {}",
            dx_tp.max_abs_diff(&dx_serial)
        );

        // Parameter gradients: the shards' grads concatenated must equal
        // the serial layer's. Check total gradient mass as a strong proxy.
        let mut serial_mass = 0.0f32;
        serial.visit_params(&mut |p| serial_mass += p.grad.sq_norm());
        let mut tp_mass = 0.0f32;
        tp.visit_params(&mut |p| tp_mass += p.grad.sq_norm());
        assert!(
            (serial_mass - tp_mass).abs() / serial_mass < 1e-3,
            "grad mass {serial_mass} vs {tp_mass}"
        );
    }

    #[test]
    fn param_count_preserved_by_sharding() {
        let mut serial = serial_layer(4);
        let mut count_serial = 0;
        serial.visit_params(&mut |p| count_serial += p.len());
        let mut tp =
            TpEncoderLayer::from_serial(&serial, 2, identity_reduce(2), identity_reduce(2));
        let mut count_tp = 0;
        tp.visit_params(&mut |p| count_tp += p.len());
        assert_eq!(count_serial, count_tp);
    }

    #[test]
    fn compressed_reduce_changes_output_boundedly() {
        use actcomp_compress::Quantizer;
        let serial = serial_layer(5);
        let world = 2;
        let quant_reduce = || {
            CompressedAllReduce::new(
                (0..world)
                    .map(|_| Box::new(Quantizer::new(8)) as Box<dyn Compressor>)
                    .collect(),
            )
        };
        let mut tp_exact = TpEncoderLayer::from_serial(
            &serial,
            world,
            identity_reduce(world),
            identity_reduce(world),
        );
        let mut tp_q = TpEncoderLayer::from_serial(&serial, world, quant_reduce(), quant_reduce());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x = init::randn(&mut rng, [4, 8], 1.0);
        let (y_exact, _) = tp_exact.forward(&x, 2, 2);
        let (y_q, bytes) = tp_q.forward(&x, 2, 2);
        let diff = y_q.max_abs_diff(&y_exact);
        assert!(diff > 0.0, "8-bit quantization should perturb the output");
        assert!(diff < 0.5, "8-bit quantization error too large: {diff}");
        assert!(bytes.ratio() > 1.5, "ratio {}", bytes.ratio());
    }

    #[test]
    fn tp_gradients_match_finite_difference_through_compression() {
        // Gradcheck the full TP layer with an AE compressor in the loop.
        use actcomp_compress::AutoEncoder;
        let serial = serial_layer(7);
        let world = 2;
        let ae_reduce = |seed: u64| {
            CompressedAllReduce::new(
                (0..world)
                    .map(|_| {
                        let mut rng = ChaCha8Rng::seed_from_u64(seed);
                        Box::new(AutoEncoder::new(&mut rng, 8, 3)) as Box<dyn Compressor>
                    })
                    .collect(),
            )
        };
        let mut tp = TpEncoderLayer::from_serial(&serial, world, ae_reduce(10), ae_reduce(11));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x = init::randn(&mut rng, [2, 8], 0.5); // batch 1, seq 2
        let dy = init::randn(&mut rng, [2, 8], 1.0);

        let _ = tp.forward(&x, 1, 2);
        let dx = tp.backward(&dy);

        let eps = 1e-2;
        for j in 0..x.len() {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let lp = tp.forward(&xp, 1, 2).0.mul(&dy).sum();
            let _ = tp.backward(&Tensor::zeros_like(&dy));
            let lm = tp.forward(&xm, 1, 2).0.mul(&dy).sum();
            let _ = tp.backward(&Tensor::zeros_like(&dy));
            let fd = (lp - lm) / (2.0 * eps);
            let denom = 1.0f32.max(dx[j].abs()).max(fd.abs());
            assert!(
                (dx[j] - fd).abs() / denom < 5e-2,
                "dx[{j}] {} vs fd {fd}",
                dx[j]
            );
        }
    }
}
