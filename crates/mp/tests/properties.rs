//! Property-based tests of the model-parallel execution layer.

use actcomp_compress::{AutoEncoder, Compressor, Identity, Quantizer, TopK};
use actcomp_mp::{CompressedAllReduce, TpEncoderLayer};
use actcomp_nn::EncoderLayer;
use actcomp_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn identity_reduce(world: usize) -> CompressedAllReduce {
    CompressedAllReduce::new(
        (0..world)
            .map(|_| Box::new(Identity::new()) as Box<dyn Compressor>)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TP sharding is numerically transparent for any world that divides
    /// the head count, any batch/seq, any seed.
    #[test]
    fn tp_equals_serial_under_identity(
        seed in 0u64..1000,
        world in prop::sample::select(vec![1usize, 2, 4]),
        batch in 1usize..4,
        seq in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut serial = EncoderLayer::new(&mut rng, 8, 4, 16);
        let mut tp = TpEncoderLayer::from_serial(
            &serial,
            world,
            identity_reduce(world),
            identity_reduce(world),
        );
        let x = init::randn(&mut rng, [batch * seq, 8], 1.0);
        let want = serial.forward(&x, batch, seq);
        let (got, _) = tp.forward(&x, batch, seq);
        prop_assert!(got.max_abs_diff(&want) < 1e-3,
            "world {} diff {}", world, got.max_abs_diff(&want));
    }

    /// The identity reduce is an exact sum for any number of workers.
    #[test]
    fn identity_reduce_is_sum(seed in 0u64..1000, world in 1usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partials: Vec<Tensor> =
            (0..world).map(|_| init::randn(&mut rng, [3, 8], 1.0)).collect();
        let mut reduce = identity_reduce(world);
        let (out, bytes) = reduce.forward(&partials);
        let mut want = partials[0].clone();
        for p in &partials[1..] {
            want.add_assign(p);
        }
        prop_assert!(out.max_abs_diff(&want) < 1e-4);
        prop_assert_eq!(bytes.wire, bytes.dense);
    }

    /// Quantized reduces stay within the per-worker quantization error
    /// budget: |reduce(x) − Σx| ≤ Σ per-worker half-steps.
    #[test]
    fn quantized_reduce_error_bounded(seed in 0u64..500, world in 2usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partials: Vec<Tensor> =
            (0..world).map(|_| init::randn(&mut rng, [4, 8], 1.0)).collect();
        let mut reduce = CompressedAllReduce::new(
            (0..world)
                .map(|_| Box::new(Quantizer::new(8)) as Box<dyn Compressor>)
                .collect(),
        );
        let (out, _) = reduce.forward(&partials);
        let mut exact = partials[0].clone();
        for p in &partials[1..] {
            exact.add_assign(p);
        }
        let budget: f32 = partials
            .iter()
            .map(|p| (p.max() - p.min()) / 255.0 / 2.0 + 1e-5)
            .sum();
        prop_assert!(out.max_abs_diff(&exact) <= budget,
            "error {} > budget {}", out.max_abs_diff(&exact), budget);
    }

    /// Top-K reduce gradients are supported only on kept positions.
    #[test]
    fn topk_reduce_backward_support(seed in 0u64..500, k in 1usize..16) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partials: Vec<Tensor> =
            (0..2).map(|_| init::randn(&mut rng, [2, 8], 1.0)).collect();
        let mut reduce = CompressedAllReduce::new(
            (0..2).map(|_| Box::new(TopK::new(k)) as Box<dyn Compressor>).collect(),
        );
        let _ = reduce.forward(&partials);
        let dxs = reduce.backward(&Tensor::ones([2, 8]));
        for dx in &dxs {
            let nz = dx.as_slice().iter().filter(|v| **v != 0.0).count();
            prop_assert!(nz <= k.min(16));
        }
    }

    /// AE reduces commute with scaling (linearity survives the whole
    /// reduce path).
    #[test]
    fn ae_reduce_is_linear(seed in 0u64..500, scale in 0.1f32..3.0) {
        let mk = || {
            CompressedAllReduce::new(
                (0..2)
                    .map(|_| {
                        let mut r = ChaCha8Rng::seed_from_u64(99);
                        Box::new(AutoEncoder::new(&mut r, 8, 3)) as Box<dyn Compressor>
                    })
                    .collect(),
            )
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partials: Vec<Tensor> =
            (0..2).map(|_| init::randn(&mut rng, [2, 8], 1.0)).collect();
        let scaled: Vec<Tensor> = partials.iter().map(|p| p.scale(scale)).collect();
        let (y1, _) = mk().forward(&scaled);
        let (y2, _) = mk().forward(&partials);
        prop_assert!(y1.max_abs_diff(&y2.scale(scale)) < 1e-2 * (1.0 + y1.abs_max()));
    }
}
