//! # actcomp-nn
//!
//! Neural-network layers with explicit, layer-wise backpropagation — the
//! training stack underneath the `actcomp` reproduction of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! The paper fine-tunes and pre-trains BERT-style encoders with compression
//! operators spliced into model-parallel boundaries. This crate provides
//! the serial reference implementation of that architecture:
//!
//! - primitive layers ([`Linear`], [`LayerNorm`], [`Gelu`], [`Dropout`],
//!   [`Embedding`]) implementing the [`Layer`] forward/backward contract,
//! - [`MultiHeadAttention`] with a complete manual backward pass,
//! - the [`transformer`] module: encoder blocks, [`BertEncoder`], and
//!   classification / regression / MLM heads,
//! - [`loss`] functions and [`optim`] (SGD, Adam/AdamW),
//! - [`testutil`]: finite-difference gradient checking used by this crate
//!   and by `actcomp-mp` to validate compression-in-the-graph layers.
//!
//! Every layer's gradients are verified against central finite differences
//! in its unit tests.
//!
//! # Example
//!
//! ```
//! use actcomp_nn::{BertConfig, BertEncoder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut cfg = BertConfig::tiny();
//! cfg.layers = 2;
//! let mut model = BertEncoder::new(&mut rng, cfg);
//! let hidden = model.forward(&[1, 2, 3, 4], 1, 4); // batch 1, seq 4
//! assert_eq!(hidden.dims(), &[4, 64]);
//! ```

#![warn(missing_docs)]

mod activation;
mod attention;
pub mod checkpoint;
mod dropout;
mod embedding;
mod layernorm;
mod linear;
mod module;

pub mod loss;
pub mod optim;
mod schedule;
pub mod testutil;
pub mod transformer;

pub use activation::{Gelu, Relu, Tanh};
pub use attention::MultiHeadAttention;
pub use checkpoint::{Checkpoint, OptimizerState, TrainingState};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layernorm::{LayerNorm, LnCache};
pub use linear::Linear;
pub use module::{Layer, Parameter};
pub use schedule::LrSchedule;
pub use transformer::{
    BertConfig, BertConfigError, BertEncoder, ClassifierHead, EncoderLayer, FeedForward, MlmHead,
};
