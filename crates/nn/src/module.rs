//! Trainable parameters and the layer abstraction.

use actcomp_tensor::Tensor;

/// A trainable tensor together with its accumulated gradient.
///
/// Layers own their `Parameter`s; optimizers receive `&mut Parameter`
/// collections via [`Layer::visit_params`] (or a model's equivalent) and
/// update `value` from `grad`.
///
/// # Examples
///
/// ```
/// use actcomp_nn::Parameter;
/// use actcomp_tensor::Tensor;
///
/// let mut p = Parameter::new(Tensor::ones([2, 2]));
/// p.grad.as_mut_slice()[0] = 1.0;
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Parameter {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros_like(&value);
        Parameter { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros_like(&self.value);
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Always false (parameters are never empty tensors).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A differentiable transformation with cached forward state.
///
/// The workspace uses *layer-wise* backpropagation rather than a taped
/// autograd: each layer caches whatever it needs during [`Layer::forward`]
/// and consumes that cache in [`Layer::backward`]. A layer must therefore
/// see calls in strict `forward → backward` alternation (asserted by the
/// implementations).
///
/// Inputs and outputs are rank-2 `[tokens, features]` tensors; attention
/// layers, which additionally need the `(batch, seq)` factorization, expose
/// their own inherent methods and participate in encoder blocks directly.
pub trait Layer {
    /// Runs the layer on `x`, caching intermediate state for backward.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates the output gradient `dy`, accumulating parameter
    /// gradients and returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Layer::forward`].
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers and
    /// serialization).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter));

    /// Switches between training and evaluation behaviour (dropout etc.).
    /// Default: no-op.
    fn set_training(&mut self, _training: bool) {}

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Layer for Doubler {
        fn forward(&mut self, x: &Tensor) -> Tensor {
            x.scale(2.0)
        }
        fn backward(&mut self, dy: &Tensor) -> Tensor {
            dy.scale(2.0)
        }
        fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
    }

    #[test]
    fn default_trait_methods() {
        let mut d = Doubler;
        assert_eq!(d.num_params(), 0);
        d.zero_grad();
        d.set_training(false);
        let y = d.forward(&Tensor::ones([2, 2]));
        assert_eq!(y.sum(), 8.0);
    }

    #[test]
    fn parameter_zero_grad() {
        let mut p = Parameter::new(Tensor::full(3.0, [4]));
        p.grad = Tensor::ones([4]);
        assert_eq!(p.grad.sum(), 4.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 4);
    }
}
