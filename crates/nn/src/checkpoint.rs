//! Checkpoint serialization for encoders and heads.
//!
//! A checkpoint is the model configuration plus every parameter value in
//! `visit_params` order (gradients are not persisted). The format is JSON
//! via serde — human-inspectable and adequate at the scales this
//! workspace trains.

use crate::{BertConfig, BertEncoder, Parameter};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serialized model snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture the parameters belong to.
    pub config: BertConfig,
    /// Parameter values, in `visit_params` order.
    pub params: Vec<Tensor>,
}

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Parse(serde_json::Error),
    /// Parameter list does not fit the target model.
    Mismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            LoadError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            LoadError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse(e) => Some(e),
            LoadError::Mismatch(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Parse(e)
    }
}

impl Checkpoint {
    /// Snapshots an encoder's parameters.
    pub fn from_encoder(encoder: &mut BertEncoder) -> Self {
        let mut params = Vec::new();
        encoder.visit_params(&mut |p: &mut Parameter| params.push(p.value.clone()));
        Checkpoint {
            config: encoder.config().clone(),
            params,
        }
    }

    /// Rebuilds an encoder from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Mismatch`] if the parameter count or any shape
    /// disagrees with the stored configuration.
    pub fn into_encoder(self) -> Result<BertEncoder, LoadError> {
        // Build a skeleton with the right architecture, then overwrite.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut encoder = BertEncoder::new(&mut rng, self.config.clone());
        let mut idx = 0;
        let mut err: Option<String> = None;
        let params = &self.params;
        encoder.visit_params(&mut |p: &mut Parameter| {
            if err.is_some() {
                return;
            }
            match params.get(idx) {
                Some(v) if v.shape().same_as(p.value.shape()) => {
                    p.value = v.clone();
                    p.zero_grad();
                }
                Some(v) => {
                    err = Some(format!(
                        "param {idx}: stored shape {} != model shape {}",
                        v.shape(),
                        p.value.shape()
                    ));
                }
                None => err = Some(format!("missing parameter {idx}")),
            }
            idx += 1;
        });
        if let Some(msg) = err {
            return Err(LoadError::Mismatch(msg));
        }
        if idx != self.params.len() {
            return Err(LoadError::Mismatch(format!(
                "checkpoint has {} parameters but model visits {idx}",
                self.params.len()
            )));
        }
        Ok(encoder)
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LoadError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> BertConfig {
        BertConfig {
            vocab: 16,
            hidden: 8,
            layers: 2,
            heads: 2,
            ff_hidden: 16,
            max_seq: 8,
        }
    }

    #[test]
    fn round_trips_through_memory() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let ids = [1usize, 2, 3, 4];
        let want = original.forward(&ids, 1, 4);

        let ckpt = Checkpoint::from_encoder(&mut original);
        let mut restored = ckpt.into_encoder().expect("restore");
        let got = restored.forward(&ids, 1, 4);
        assert!(got.max_abs_diff(&want) < 1e-7);
    }

    #[test]
    fn round_trips_through_disk() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let dir = std::env::temp_dir().join("actcomp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");

        Checkpoint::from_encoder(&mut original)
            .save(&path)
            .expect("save");
        let mut restored = Checkpoint::load(&path)
            .expect("load")
            .into_encoder()
            .expect("restore");
        let ids = [5usize, 6, 7, 8];
        assert!(
            restored
                .forward(&ids, 1, 4)
                .max_abs_diff(&original.forward(&ids, 1, 4))
                < 1e-7
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_truncated_checkpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let mut ckpt = Checkpoint::from_encoder(&mut original);
        ckpt.params.pop();
        assert!(matches!(ckpt.into_encoder(), Err(LoadError::Mismatch(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let mut ckpt = Checkpoint::from_encoder(&mut original);
        ckpt.params[0] = Tensor::zeros([3, 3]);
        let err = ckpt.into_encoder().unwrap_err();
        assert!(err.to_string().contains("stored shape"));
    }

    #[test]
    fn load_errors_are_reportable() {
        let err = Checkpoint::load("/definitely/not/here.json").unwrap_err();
        assert!(err.to_string().contains("i/o"));
    }
}
