//! Checkpoint serialization for encoders and heads.
//!
//! A checkpoint is the model configuration plus every parameter value in
//! `visit_params` order (gradients are not persisted), and — for resuming
//! training rather than just inference — the step counter and optimizer
//! slot state ([`OptimizerState`]). Both training fields are
//! serde-defaulted, so checkpoints written before they existed still
//! load. The format is JSON via serde — human-inspectable and adequate
//! at the scales this workspace trains.

use crate::optim::{Adam, Sgd};
use crate::{BertConfig, BertEncoder, Parameter};
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Optimizer slot state persisted alongside the parameters, so a
/// restored run continues the exact optimization trajectory instead of
/// restarting momentum/moment estimates from zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// SGD momentum buffers (empty when momentum is disabled — plain
    /// SGD is stateless).
    Sgd {
        /// Momentum buffers in parameter-visit order.
        velocity: Vec<Tensor>,
    },
    /// Adam bias-correction counter and moment estimates.
    Adam {
        /// Optimization steps taken (drives bias correction).
        step: u64,
        /// First moments in parameter-visit order.
        m: Vec<Tensor>,
        /// Second moments in parameter-visit order.
        v: Vec<Tensor>,
    },
}

impl OptimizerState {
    /// Snapshots an SGD optimizer's slots.
    pub fn of_sgd(opt: &Sgd) -> Self {
        OptimizerState::Sgd {
            velocity: opt.velocity().to_vec(),
        }
    }

    /// Snapshots an Adam optimizer's slots and counter.
    pub fn of_adam(opt: &Adam) -> Self {
        let (m, v) = opt.moments();
        OptimizerState::Adam {
            step: opt.steps(),
            m: m.to_vec(),
            v: v.to_vec(),
        }
    }

    /// Restores the state into an SGD optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Mismatch`] if the state was taken from a
    /// different optimizer kind.
    pub fn apply_to_sgd(&self, opt: &mut Sgd) -> Result<(), LoadError> {
        match self {
            OptimizerState::Sgd { velocity } => {
                opt.set_velocity(velocity.clone());
                Ok(())
            }
            OptimizerState::Adam { .. } => Err(LoadError::Mismatch(
                "checkpoint holds Adam state, not SGD".to_string(),
            )),
        }
    }

    /// Restores the state into an Adam optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Mismatch`] if the state was taken from a
    /// different optimizer kind.
    pub fn apply_to_adam(&self, opt: &mut Adam) -> Result<(), LoadError> {
        match self {
            OptimizerState::Adam { step, m, v } => {
                opt.set_state(*step, m.clone(), v.clone());
                Ok(())
            }
            OptimizerState::Sgd { .. } => Err(LoadError::Mismatch(
                "checkpoint holds SGD state, not Adam".to_string(),
            )),
        }
    }
}

/// Step counter plus optimizer slots — everything beyond the weights a
/// resumed run needs to continue the same trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingState {
    /// Training step the snapshot was taken at.
    pub step: usize,
    /// Optimizer slot state.
    pub optimizer: OptimizerState,
}

/// A serialized model snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture the parameters belong to.
    pub config: BertConfig,
    /// Parameter values, in `visit_params` order.
    pub params: Vec<Tensor>,
    /// Training state, when the checkpoint is meant for resuming
    /// training rather than inference. `None` for model-only snapshots
    /// — including every checkpoint written before this field existed,
    /// which still load (missing `Option` fields decode as `None`).
    pub training: Option<TrainingState>,
}

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Parse(serde_json::Error),
    /// Parameter list does not fit the target model.
    Mismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            LoadError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            LoadError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse(e) => Some(e),
            LoadError::Mismatch(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Parse(e)
    }
}

impl Checkpoint {
    /// Snapshots an encoder's parameters.
    pub fn from_encoder(encoder: &mut BertEncoder) -> Self {
        let mut params = Vec::new();
        encoder.visit_params(&mut |p: &mut Parameter| params.push(p.value.clone()));
        Checkpoint {
            config: encoder.config().clone(),
            params,
            training: None,
        }
    }

    /// Attaches training state (step counter + optimizer slots) to a
    /// model snapshot, turning it into a resumable checkpoint.
    pub fn with_training_state(mut self, step: usize, optimizer: OptimizerState) -> Self {
        self.training = Some(TrainingState { step, optimizer });
        self
    }

    /// Rebuilds an encoder from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Mismatch`] if the parameter count or any shape
    /// disagrees with the stored configuration.
    pub fn into_encoder(self) -> Result<BertEncoder, LoadError> {
        // Build a skeleton with the right architecture, then overwrite.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut encoder = BertEncoder::new(&mut rng, self.config.clone());
        let mut idx = 0;
        let mut err: Option<String> = None;
        let params = &self.params;
        encoder.visit_params(&mut |p: &mut Parameter| {
            if err.is_some() {
                return;
            }
            match params.get(idx) {
                Some(v) if v.shape().same_as(p.value.shape()) => {
                    p.value = v.clone();
                    p.zero_grad();
                }
                Some(v) => {
                    err = Some(format!(
                        "param {idx}: stored shape {} != model shape {}",
                        v.shape(),
                        p.value.shape()
                    ));
                }
                None => err = Some(format!("missing parameter {idx}")),
            }
            idx += 1;
        });
        if let Some(msg) = err {
            return Err(LoadError::Mismatch(msg));
        }
        if idx != self.params.len() {
            return Err(LoadError::Mismatch(format!(
                "checkpoint has {} parameters but model visits {idx}",
                self.params.len()
            )));
        }
        Ok(encoder)
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LoadError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> BertConfig {
        BertConfig {
            vocab: 16,
            hidden: 8,
            layers: 2,
            heads: 2,
            ff_hidden: 16,
            max_seq: 8,
        }
    }

    #[test]
    fn round_trips_through_memory() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let ids = [1usize, 2, 3, 4];
        let want = original.forward(&ids, 1, 4);

        let ckpt = Checkpoint::from_encoder(&mut original);
        let mut restored = ckpt.into_encoder().expect("restore");
        let got = restored.forward(&ids, 1, 4);
        assert!(got.max_abs_diff(&want) < 1e-7);
    }

    #[test]
    fn round_trips_through_disk() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let dir = std::env::temp_dir().join("actcomp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");

        Checkpoint::from_encoder(&mut original)
            .save(&path)
            .expect("save");
        let mut restored = Checkpoint::load(&path)
            .expect("load")
            .into_encoder()
            .expect("restore");
        let ids = [5usize, 6, 7, 8];
        assert!(
            restored
                .forward(&ids, 1, 4)
                .max_abs_diff(&original.forward(&ids, 1, 4))
                < 1e-7
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_truncated_checkpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let mut ckpt = Checkpoint::from_encoder(&mut original);
        ckpt.params.pop();
        assert!(matches!(ckpt.into_encoder(), Err(LoadError::Mismatch(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut original = BertEncoder::new(&mut rng, tiny());
        let mut ckpt = Checkpoint::from_encoder(&mut original);
        ckpt.params[0] = Tensor::zeros([3, 3]);
        let err = ckpt.into_encoder().unwrap_err();
        assert!(err.to_string().contains("stored shape"));
    }

    #[test]
    fn load_errors_are_reportable() {
        let err = Checkpoint::load("/definitely/not/here.json").unwrap_err();
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn optimizer_state_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut model = BertEncoder::new(&mut rng, tiny());
        // Exercise momentum so the velocity buffers are non-trivial.
        let mut opt = Sgd::with_momentum(1e-2, 0.9);
        for _ in 0..2 {
            let y = model.forward(&[1, 2, 3, 4], 1, 4);
            model.backward(&y);
            crate::optim::step(&mut opt, |f| model.visit_params(f));
            model.visit_params(&mut |p| p.zero_grad());
        }
        let ckpt = Checkpoint::from_encoder(&mut model)
            .with_training_state(2, OptimizerState::of_sgd(&opt));
        let json = serde_json::to_string(&ckpt).expect("encode");
        let back: Checkpoint = serde_json::from_str(&json).expect("decode");
        let training = back.training.expect("state present");
        assert_eq!(training.step, 2);
        let mut restored = Sgd::with_momentum(1e-2, 0.9);
        training
            .optimizer
            .apply_to_sgd(&mut restored)
            .expect("same kind");
        assert_eq!(restored.velocity().len(), opt.velocity().len());
        for (a, b) in restored.velocity().iter().zip(opt.velocity()) {
            assert_eq!(a.as_slice(), b.as_slice(), "bitwise identical slots");
        }
        // Wrong-kind restore is a typed error, not silent garbage.
        let mut adam = Adam::new(1e-3);
        assert!(matches!(
            training.optimizer.apply_to_adam(&mut adam),
            Err(LoadError::Mismatch(_))
        ));
    }

    #[test]
    fn pre_training_state_checkpoints_still_load() {
        // JSON written before the `training` field existed.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut model = BertEncoder::new(&mut rng, tiny());
        let full = Checkpoint::from_encoder(&mut model);
        let legacy = format!(
            "{{\"config\":{},\"params\":{}}}",
            serde_json::to_string(&full.config).unwrap(),
            serde_json::to_string(&full.params).unwrap()
        );
        let back: Checkpoint = serde_json::from_str(&legacy).expect("legacy decode");
        assert!(back.training.is_none());
        assert!(back.into_encoder().is_ok());
    }
}
