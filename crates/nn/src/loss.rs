//! Loss functions returning `(loss, dlogits)` pairs.

use actcomp_tensor::{workspace, Tensor, Workspace};

/// Mean softmax cross-entropy over rows of `[n, classes]` logits.
///
/// Returns the scalar loss and the gradient with respect to the logits
/// (already divided by `n`, so it can be fed straight into backward).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows or any label is
/// out of range.
///
/// # Examples
///
/// ```
/// use actcomp_nn::loss::softmax_cross_entropy;
/// use actcomp_tensor::{workspace, Tensor, Workspace};
///
/// let logits = Tensor::from_vec(vec![10.0, -10.0], [1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-4); // confidently correct
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    workspace::with_thread_default(|ws| softmax_cross_entropy_ws(logits, labels, ws))
}

/// [`softmax_cross_entropy`] with caller-provided scratch: the gradient
/// is assembled in a single leased buffer (copy of the probabilities,
/// label subtraction, and `1/n` scaling fused in place) instead of a
/// clone plus an extra scaled copy.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows or any label
/// is out of range.
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    assert_eq!(
        logits.rank(),
        2,
        "logits must be rank 2, got {}",
        logits.shape()
    );
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "{} labels for {n} rows", labels.len());
    let probs = logits.softmax_rows();
    let mut loss = 0.0f32;
    let mut grad = ws.lease(n * c);
    grad.copy_from_slice(probs.as_slice());
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        loss -= probs.as_slice()[i * c + y].max(1e-12).ln();
        grad[i * c + y] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    for g in &mut grad {
        *g *= inv_n;
    }
    ws.recycle_tensor(probs);
    (loss * inv_n, Tensor::from_vec(grad, [n, c]))
}

/// Masked mean softmax cross-entropy: rows whose `labels[i]` is `None` are
/// ignored (the MLM objective masks most positions).
///
/// Returns `(loss, dlogits)`; if no position is labelled, the loss is zero
/// and the gradient is all zeros.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-range labels.
pub fn masked_cross_entropy(logits: &Tensor, labels: &[Option<usize>]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be rank 2");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "{} labels for {n} rows", labels.len());
    let count = labels.iter().flatten().count();
    if count == 0 {
        return (0.0, Tensor::zeros_like(logits));
    }
    let probs = logits.softmax_rows();
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros_like(logits);
    for (i, lab) in labels.iter().enumerate() {
        if let Some(y) = lab {
            assert!(*y < c, "label {y} out of range for {c} classes");
            loss -= probs.as_slice()[i * c + y].max(1e-12).ln();
            for j in 0..c {
                grad.as_mut_slice()[i * c + j] = probs.as_slice()[i * c + j];
            }
            grad.as_mut_slice()[i * c + y] -= 1.0;
        }
    }
    let inv = 1.0 / count as f32;
    (loss * inv, grad.scale(inv))
}

/// Mean squared error between `[n, 1]` predictions and targets.
///
/// Returns `(loss, dpred)`.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the number of predictions.
pub fn mse(pred: &Tensor, targets: &[f32]) -> (f32, Tensor) {
    assert_eq!(
        pred.len(),
        targets.len(),
        "{} predictions for {} targets",
        pred.len(),
        targets.len()
    );
    let n = targets.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros_like(pred);
    for i in 0..targets.len() {
        let d = pred[i] - targets[i];
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        assert!(grad.sum_axis1().norm() < 1e-6);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 1.2, 0.1, 0.9, -0.7], [2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for j in 0..logits.len() {
            let mut lp = logits.clone();
            lp[j] += eps;
            let mut lm = logits.clone();
            lm[j] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).0;
            let fm = softmax_cross_entropy(&lm, &labels).0;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((grad[j] - fd).abs() < 1e-3, "j={j}: {} vs {fd}", grad[j]);
        }
    }

    #[test]
    fn masked_cross_entropy_ignores_unlabelled() {
        let logits = Tensor::from_vec(vec![5.0, -5.0, 0.0, 0.0], [2, 2]);
        let (loss, grad) = masked_cross_entropy(&logits, &[Some(0), None]);
        assert!(loss < 1e-3);
        assert_eq!(&grad.as_slice()[2..], &[0.0, 0.0]);
    }

    #[test]
    fn masked_cross_entropy_all_masked() {
        let logits = Tensor::ones([2, 3]);
        let (loss, grad) = masked_cross_entropy(&logits, &[None, None]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn mse_known_values() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let (loss, grad) = mse(&pred, &[0.0, 2.0]);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad[0] - 1.0).abs() < 1e-6);
        assert_eq!(grad[1], 0.0);
    }
}
