//! BERT-style Transformer encoder built from the primitive layers.

use crate::{Dropout, Embedding, Layer, LayerNorm, Linear, MultiHeadAttention, Parameter, Tanh};
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{FusePolicy, OutBind};
use actcomp_tensor::{workspace, Tensor, Workspace};
use rand::Rng;

/// An architecturally impossible [`BertConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BertConfigError {
    /// Some hyper-parameter is zero.
    ZeroField,
    /// Attention cannot split the hidden width evenly across heads.
    HiddenNotDivisibleByHeads {
        /// Hidden width.
        hidden: usize,
        /// Head count.
        heads: usize,
    },
}

impl std::fmt::Display for BertConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BertConfigError::ZeroField => {
                f.write_str("every architecture hyper-parameter must be positive")
            }
            BertConfigError::HiddenNotDivisibleByHeads { hidden, heads } => {
                write!(f, "hidden {hidden} not divisible by heads {heads}")
            }
        }
    }
}

impl std::error::Error for BertConfigError {}

/// Hyper-parameters of a BERT-style encoder.
///
/// The paper's throughput experiments use the BERT-Large configuration
/// ([`BertConfig::bert_large`]); the accuracy experiments in this
/// reproduction use a scaled-down configuration ([`BertConfig::tiny`])
/// that trains quickly on CPU while keeping the same architecture.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width `h`.
    pub hidden: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Feed-forward inner width (typically `4·hidden`).
    pub ff_hidden: usize,
    /// Maximum sequence length (size of the position table).
    pub max_seq: usize,
}

impl BertConfig {
    /// The 345M-parameter BERT-Large configuration used by the paper's
    /// throughput experiments (24 layers, hidden 1024, 16 heads).
    pub fn bert_large() -> Self {
        BertConfig {
            vocab: 30_522,
            hidden: 1024,
            layers: 24,
            heads: 16,
            ff_hidden: 4096,
            max_seq: 512,
        }
    }

    /// A CPU-trainable configuration used by the accuracy experiments:
    /// 12 layers, hidden 64, 4 heads. Keeps BERT-Large's depth:width
    /// *structure* (layers ≫ heads, `ff = 4h`) at a scale where hundreds of
    /// fine-tuning runs finish in minutes.
    pub fn tiny() -> Self {
        BertConfig {
            vocab: 256,
            hidden: 64,
            layers: 12,
            heads: 4,
            ff_hidden: 256,
            max_seq: 64,
        }
    }

    /// Typed variant of [`BertConfig::validate`].
    pub fn try_validate(&self) -> Result<(), BertConfigError> {
        let fields = [
            self.vocab,
            self.hidden,
            self.layers,
            self.heads,
            self.ff_hidden,
            self.max_seq,
        ];
        if fields.contains(&0) {
            return Err(BertConfigError::ZeroField);
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(BertConfigError::HiddenNotDivisibleByHeads {
                hidden: self.hidden,
                heads: self.heads,
            });
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads` or any field is zero.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Approximate parameter count of the encoder (embeddings + layers).
    pub fn num_params(&self) -> usize {
        let per_layer = 4 * self.hidden * self.hidden           // qkvo
            + 4 * self.hidden                                    // qkvo biases
            + 2 * self.hidden * self.ff_hidden                   // mlp
            + self.ff_hidden + self.hidden                       // mlp biases
            + 4 * self.hidden; // two layer norms
        self.vocab * self.hidden
            + self.max_seq * self.hidden
            + 2 * self.hidden // embedding layer norm
            + self.layers * per_layer
    }
}

/// Position-wise feed-forward block: `Linear → GELU → Linear`.
///
/// Forward and backward each execute as **one** op-graph segment: the
/// up-projection fuses `bias + GELU` into its GEMM epilogue (stashing the
/// pre-activation for backward in the same pass), the down-projection
/// fuses its bias, and the backward `nt` GEMM fuses the GELU-derivative
/// multiply.
#[derive(Debug, Clone)]
pub struct FeedForward {
    /// Expansion projection `[h, ff]`.
    pub fc1: Linear,
    /// Contraction projection `[ff, h]`.
    pub fc2: Linear,
    /// `(x, pre-activation h₁, activation a)` from the last forward.
    cache: Option<(Tensor, Tensor, Tensor)>,
}

impl FeedForward {
    /// Creates a feed-forward block `hidden → ff_hidden → hidden`.
    pub fn new(rng: &mut impl Rng, hidden: usize, ff_hidden: usize) -> Self {
        FeedForward {
            fc1: Linear::new(rng, hidden, ff_hidden),
            fc2: Linear::new(rng, ff_hidden, hidden),
            cache: None,
        }
    }

    /// Assembles a block from existing projections.
    ///
    /// # Panics
    ///
    /// Panics if the projections' widths don't chain.
    pub fn from_parts(fc1: Linear, fc2: Linear) -> Self {
        assert_eq!(
            fc1.fan_out(),
            fc2.fan_in(),
            "feed-forward widths don't chain"
        );
        FeedForward {
            fc1,
            fc2,
            cache: None,
        }
    }

    /// [`Layer::forward`] with caller-provided scratch.
    pub fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, h) = (x.dims()[0], x.dims()[1]);
        let ff = self.fc1.fan_out();
        let mut g = Graph::new();
        let gx = g.input(m, h);
        let gw1 = g.input(h, ff);
        let gb1 = g.input_vec(ff);
        let gw2 = g.input(ff, h);
        let gb2 = g.input_vec(h);
        let y1 = g.matmul(gx, gw1);
        let h1 = g.bias_add(y1, gb1);
        let a = g.gelu(h1);
        let y2 = g.matmul(a, gw2);
        let out = g.bias_add(y2, gb2);
        g.mark_output(out);
        g.mark_output(h1); // pre-activation, stashed by the fused up-GEMM
        g.mark_output(a);
        let plan = g.compile(FusePolicy::Auto).expect("ffn forward graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                self.fc1.weight.value.as_slice(),
                self.fc1.bias.value.as_slice(),
                self.fc2.weight.value.as_slice(),
                self.fc2.bias.value.as_slice(),
            ],
            vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
            ws,
        );
        let out = Tensor::from_vec(res[0].take().expect("leased out"), [m, h]);
        let h1 = Tensor::from_vec(res[1].take().expect("leased h1"), [m, ff]);
        let a = Tensor::from_vec(res[2].take().expect("leased a"), [m, ff]);
        self.cache = Some((x.clone(), h1, a));
        out
    }

    /// [`Layer::backward`] with caller-provided scratch. Parameter
    /// gradients accumulate in place; the GELU-derivative multiply fuses
    /// into the `dy·W₂ᵀ` GEMM's epilogue.
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let (x, h1, a) = self
            .cache
            .take()
            .expect("FeedForward::backward called without forward");
        let (m, h) = (dy.dims()[0], dy.dims()[1]);
        let ff = self.fc1.fan_out();
        let mut g = Graph::new();
        let gdy = g.input(m, h);
        let ga = g.input(m, ff);
        let gh1 = g.input(m, ff);
        let gx = g.input(m, x.dims()[1]);
        let gw2 = g.input(ff, h);
        let gw1 = g.input(x.dims()[1], ff);
        let dw2 = g.matmul_tn(ga, gdy);
        let db2 = g.sum_axis0(gdy);
        let da = g.matmul_nt(gdy, gw2);
        let dh = g.gelu_grad_mul(da, gh1);
        let dw1 = g.matmul_tn(gx, dh);
        let db1 = g.sum_axis0(dh);
        let dx = g.matmul_nt(dh, gw1);
        g.mark_output(dw2);
        g.mark_output(db2);
        g.mark_output(dw1);
        g.mark_output(db1);
        g.mark_output(dx);
        let plan = g.compile(FusePolicy::Auto).expect("ffn backward graph");
        let mut res = plan.run(
            &[
                dy.as_slice(),
                a.as_slice(),
                h1.as_slice(),
                x.as_slice(),
                self.fc2.weight.value.as_slice(),
                self.fc1.weight.value.as_slice(),
            ],
            vec![
                OutBind::Acc(self.fc2.weight.grad.as_mut_slice()),
                OutBind::Acc(self.fc2.bias.grad.as_mut_slice()),
                OutBind::Acc(self.fc1.weight.grad.as_mut_slice()),
                OutBind::Acc(self.fc1.bias.grad.as_mut_slice()),
                OutBind::Lease,
            ],
            ws,
        );
        let dx = Tensor::from_vec(res[4].take().expect("leased dx"), [m, x.dims()[1]]);
        for tmp in [x, h1, a] {
            ws.recycle_tensor(tmp);
        }
        dx
    }
}

impl Layer for FeedForward {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, ws))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(dy, ws))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// One post-LN Transformer encoder block:
/// `x → x + Attn(x) → LN → · + FF(·) → LN`.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    /// Self-attention sublayer.
    pub attn: MultiHeadAttention,
    /// Post-attention layer norm.
    pub ln1: LayerNorm,
    /// Feed-forward sublayer.
    pub ff: FeedForward,
    /// Post-FF layer norm.
    pub ln2: LayerNorm,
}

impl EncoderLayer {
    /// Creates an encoder block for the given widths.
    pub fn new(rng: &mut impl Rng, hidden: usize, heads: usize, ff_hidden: usize) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(rng, hidden, heads),
            ln1: LayerNorm::new(hidden),
            ff: FeedForward::new(rng, hidden, ff_hidden),
            ln2: LayerNorm::new(hidden),
        }
    }

    /// Assembles a block from existing sublayers.
    pub fn from_parts(
        attn: MultiHeadAttention,
        ln1: LayerNorm,
        ff: FeedForward,
        ln2: LayerNorm,
    ) -> Self {
        EncoderLayer { attn, ln1, ff, ln2 }
    }

    /// Forward pass over `[batch·seq, hidden]`. Each residual + layer
    /// norm runs as one graph segment ([`LayerNorm::forward_residual`]),
    /// so the residual sums never persist as caller-held activations.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        let a = self.attn.forward(x, batch, seq);
        let h1 = self.ln1.forward_residual(x, &a);
        let f = self.ff.forward(&h1);
        self.ln2.forward_residual(&h1, &f)
    }

    /// Backward pass; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d2 = self.ln2.backward(dy);
        let df = self.ff.backward(&d2);
        let dh1 = d2.add(&df);
        let d1 = self.ln1.backward(&dh1);
        let dxa = self.attn.backward(&d1);
        d1.add(&dxa)
    }

    /// Visits all trainable parameters in the block.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ff.visit_params(f);
        self.ln2.visit_params(f);
    }
}

/// Token + position embeddings followed by a stack of [`EncoderLayer`]s.
///
/// This is the serial (single-"GPU") reference model; `actcomp-mp` provides
/// the tensor/pipeline-parallel execution of the same architecture.
#[derive(Debug, Clone)]
pub struct BertEncoder {
    /// Token embedding table.
    pub tok: Embedding,
    /// Learned position embedding table.
    pub pos: Embedding,
    /// Embedding layer norm.
    pub emb_ln: LayerNorm,
    /// Encoder blocks.
    pub layers: Vec<EncoderLayer>,
    config: BertConfig,
}

impl BertEncoder {
    /// Builds an encoder from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`BertConfig::validate`]).
    pub fn new(rng: &mut impl Rng, config: BertConfig) -> Self {
        config.validate();
        let layers = (0..config.layers)
            .map(|_| EncoderLayer::new(rng, config.hidden, config.heads, config.ff_hidden))
            .collect();
        BertEncoder {
            tok: Embedding::new(rng, config.vocab, config.hidden),
            pos: Embedding::new(rng, config.max_seq, config.hidden),
            emb_ln: LayerNorm::new(config.hidden),
            layers,
            config,
        }
    }

    /// Assembles an encoder from existing components (used when
    /// reassembling a model-parallel checkpoint, §4.4's "remove the AE
    /// at fine-tuning time" workflow).
    ///
    /// # Panics
    ///
    /// Panics if the component count disagrees with the configuration.
    pub fn from_parts(
        tok: Embedding,
        pos: Embedding,
        emb_ln: LayerNorm,
        layers: Vec<EncoderLayer>,
        config: BertConfig,
    ) -> Self {
        config.validate();
        assert_eq!(layers.len(), config.layers, "layer count mismatch");
        assert_eq!(tok.vocab(), config.vocab, "vocab mismatch");
        BertEncoder {
            tok,
            pos,
            emb_ln,
            layers,
            config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Embeds `ids` (length `batch·seq`, row-major `[batch][seq]`) and runs
    /// all encoder layers, returning `[batch·seq, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != batch * seq` or `seq > max_seq`.
    pub fn forward(&mut self, ids: &[usize], batch: usize, seq: usize) -> Tensor {
        assert_eq!(ids.len(), batch * seq, "ids length != batch*seq");
        assert!(
            seq <= self.config.max_seq,
            "seq {} > max_seq {}",
            seq,
            self.config.max_seq
        );
        let tok = self.tok.forward(ids);
        let pos_ids: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let pos = self.pos.forward(&pos_ids);
        let mut x = self.emb_ln.forward(&tok.add(&pos));
        for layer in &mut self.layers {
            x = layer.forward(&x, batch, seq);
        }
        x
    }

    /// Backpropagates through all layers and embeddings.
    pub fn backward(&mut self, dhidden: &Tensor) {
        let mut d = dhidden.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        let demb = self.emb_ln.backward(&d);
        self.tok.backward(&demb);
        self.pos.backward(&demb);
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        self.emb_ln.visit_params(f);
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total trainable scalar count.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Classification head: `[CLS]` pooling → `Linear → tanh → Linear`.
///
/// Matches BERT's pooler + classifier. For regression tasks use
/// `classes = 1` and an MSE loss.
#[derive(Debug, Clone)]
pub struct ClassifierHead {
    /// Pooler projection `[h, h]`.
    pub pooler: Linear,
    act: Tanh,
    /// Final projection `[h, classes]`.
    pub classifier: Linear,
    /// Optional dropout between pooler and classifier.
    pub dropout: Dropout,
    cache_dims: Option<(usize, usize)>,
}

impl ClassifierHead {
    /// Creates a head producing `classes` logits per sequence.
    pub fn new(rng: &mut impl Rng, hidden: usize, classes: usize, dropout: f32, seed: u64) -> Self {
        ClassifierHead {
            pooler: Linear::new(rng, hidden, hidden),
            act: Tanh::new(),
            classifier: Linear::new(rng, hidden, classes),
            dropout: Dropout::new(dropout, seed),
            cache_dims: None,
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classifier.fan_out()
    }

    /// Pools the first token of each sequence and produces logits
    /// `[batch, classes]` from hidden states `[batch·seq, hidden]`.
    pub fn forward(&mut self, hidden: &Tensor, batch: usize, seq: usize) -> Tensor {
        let h = hidden.dims()[1];
        let mut cls = Vec::with_capacity(batch * h);
        for t in 0..batch {
            let row = t * seq;
            cls.extend_from_slice(&hidden.as_slice()[row * h..(row + 1) * h]);
        }
        let cls = Tensor::from_vec(cls, [batch, h]);
        let p = self.pooler.forward(&cls);
        let a = self.act.forward(&p);
        let a = self.dropout.forward(&a);
        self.cache_dims = Some((batch, seq));
        self.classifier.forward(&a)
    }

    /// Backward pass; returns the gradient scattered back into the
    /// `[batch·seq, hidden]` hidden-state layout.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        let (batch, seq) = self
            .cache_dims
            .take()
            .expect("ClassifierHead::backward called without forward");
        let da = self.classifier.backward(dlogits);
        let da = self.dropout.backward(&da);
        let dp = self.act.backward(&da);
        let dcls = self.pooler.backward(&dp);
        let h = dcls.dims()[1];
        let mut dhidden = Tensor::zeros([batch * seq, h]);
        for t in 0..batch {
            let row = t * seq;
            dhidden.as_mut_slice()[row * h..(row + 1) * h]
                .copy_from_slice(&dcls.as_slice()[t * h..(t + 1) * h]);
        }
        dhidden
    }

    /// Visits the head's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.pooler.visit_params(f);
        self.classifier.visit_params(f);
    }

    /// Enables or disables dropout.
    pub fn set_training(&mut self, training: bool) {
        self.dropout.set_training(training);
    }
}

/// Masked-language-model head: a single projection to vocabulary logits at
/// every position.
#[derive(Debug, Clone)]
pub struct MlmHead {
    /// Projection `[h, vocab]`.
    pub proj: Linear,
}

impl MlmHead {
    /// Creates an MLM head.
    pub fn new(rng: &mut impl Rng, hidden: usize, vocab: usize) -> Self {
        MlmHead {
            proj: Linear::new(rng, hidden, vocab),
        }
    }

    /// Produces `[batch·seq, vocab]` logits.
    pub fn forward(&mut self, hidden: &Tensor) -> Tensor {
        self.proj.forward(hidden)
    }

    /// Backward pass; returns `dhidden`.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.proj.backward(dlogits)
    }

    /// Visits the head's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.proj.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny2() -> BertConfig {
        BertConfig {
            vocab: 16,
            hidden: 8,
            layers: 2,
            heads: 2,
            ff_hidden: 16,
            max_seq: 8,
        }
    }

    #[test]
    fn config_validation_and_params() {
        let c = BertConfig::bert_large();
        c.validate();
        // BERT-Large is ~345M params (paper §4.1); embeddings put ours close.
        let p = c.num_params();
        assert!(p > 300_000_000 && p < 400_000_000, "param count {p}");
    }

    #[test]
    fn encoder_forward_shape_and_determinism() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut enc = BertEncoder::new(&mut rng, tiny2());
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let y1 = enc.forward(&ids, 2, 4);
        let y2 = enc.forward(&ids, 2, 4);
        assert_eq!(y1.dims(), &[8, 8]);
        assert_eq!(y1, y2);
        assert!(y1.all_finite());
    }

    #[test]
    fn reported_params_match_actual() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = tiny2();
        let expected = cfg.num_params();
        let mut enc = BertEncoder::new(&mut rng, cfg);
        assert_eq!(enc.num_params(), expected);
    }

    #[test]
    fn encoder_layer_grad_flows() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut layer = EncoderLayer::new(&mut rng, 8, 2, 16);
        let x = init::randn(&mut rng, [4, 8], 1.0);
        let y = layer.forward(&x, 2, 2);
        let dx = layer.backward(&Tensor::full(1.0, y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.norm() > 0.0);
        assert!(dx.all_finite());
    }

    #[test]
    fn classifier_head_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut head = ClassifierHead::new(&mut rng, 8, 3, 0.0, 0);
        let hidden = init::randn(&mut rng, [6, 8], 1.0); // batch 2, seq 3
        let logits = head.forward(&hidden, 2, 3);
        assert_eq!(logits.dims(), &[2, 3]);
        let dh = head.backward(&Tensor::ones([2, 3]));
        assert_eq!(dh.dims(), &[6, 8]);
        // Gradient only lands on CLS rows (0 and 3).
        assert!(dh.slice_rows(1, 3).norm() == 0.0);
        assert!(dh.slice_rows(0, 1).norm() > 0.0);
    }

    #[test]
    fn mlm_head_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut head = MlmHead::new(&mut rng, 8, 16);
        let hidden = init::randn(&mut rng, [6, 8], 1.0);
        let logits = head.forward(&hidden);
        assert_eq!(logits.dims(), &[6, 16]);
    }
}
