//! Optimizers operating on [`Parameter`] collections.
//!
//! Optimizers hold per-parameter state keyed by visitation order, so a
//! model's `visit_params` traversal must be stable across steps (all models
//! in this workspace have a fixed layer structure, so it is).

use crate::Parameter;
use actcomp_tensor::Tensor;

/// A gradient-based parameter updater.
///
/// State (momentum, moments) is keyed by the order in which parameters are
/// visited, so use a stable traversal such as a model's `visit_params`.
pub trait Optimizer {
    /// Updates the `index`-th visited parameter from its gradient.
    fn update(&mut self, index: usize, param: &mut Parameter);
}

/// Drives one optimization step: visits every parameter through `visit`
/// and applies `opt` to each in order.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{optim, Linear, Layer};
/// use actcomp_nn::optim::Sgd;
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut layer = Linear::new(&mut rng, 4, 2);
/// let mut opt = Sgd::new(0.1);
/// layer.forward(&Tensor::ones([1, 4]));
/// layer.backward(&Tensor::ones([1, 2]));
/// optim::step(&mut opt, |f| layer.visit_params(f));
/// ```
pub fn step<O: Optimizer + ?Sized>(
    opt: &mut O,
    visit: impl FnOnce(&mut dyn FnMut(&mut Parameter)),
) {
    let mut idx = 0;
    visit(&mut |p| {
        opt.update(idx, p);
        idx += 1;
    });
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`
/// (BERT-style clipping). Returns the pre-clip global norm.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{optim, Parameter};
/// use actcomp_tensor::Tensor;
///
/// let mut p = Parameter::new(Tensor::zeros([2]));
/// p.grad = Tensor::from_vec(vec![3.0, 4.0], [2]);
/// let norm = optim::clip_global_norm(1.0, |f| f(&mut p));
/// assert!((norm - 5.0).abs() < 1e-6);
/// assert!((p.grad.norm() - 1.0).abs() < 1e-5);
/// ```
pub fn clip_global_norm(
    max_norm: f32,
    mut visit: impl FnMut(&mut dyn FnMut(&mut Parameter)),
) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f32;
    visit(&mut |p| sq += p.grad.sq_norm());
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        visit(&mut |p| p.grad.scale_assign(scale));
    }
    norm
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The momentum buffers, in parameter-visit order (empty until the
    /// first momentum update, or when momentum is disabled).
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Replaces the momentum buffers — the restore half of
    /// [`Sgd::velocity`]; checkpointing persists them so a resumed run
    /// continues the same trajectory.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) {
        self.velocity = velocity;
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, index: usize, param: &mut Parameter) {
        if self.momentum == 0.0 {
            param.value.axpy(-self.lr, &param.grad);
            return;
        }
        while self.velocity.len() <= index {
            self.velocity.push(Tensor::zeros_like(&param.grad));
        }
        let v = &mut self.velocity[index];
        v.scale_assign(self.momentum);
        v.add_assign(&param.grad);
        param.value.axpy(-self.lr, v);
    }
}

/// Adam / AdamW.
///
/// With `weight_decay > 0` this is AdamW: decay is decoupled from the
/// moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)` and no decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Creates AdamW with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Marks the beginning of a new optimization step (advances the bias
    /// correction counter). Call once per batch, before visiting params.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The moment estimates `(m, v)`, in parameter-visit order.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Restores the full Adam state — bias-correction counter and both
    /// moment vectors — from a checkpoint.
    pub fn set_state(&mut self, step: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        self.step = step;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn update(&mut self, index: usize, param: &mut Parameter) {
        assert!(self.step > 0, "call Adam::begin_step before updating");
        while self.m.len() <= index {
            self.m.push(Tensor::zeros_like(&param.grad));
            self.v.push(Tensor::zeros_like(&param.grad));
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        let (m, v) = (&mut self.m[index], &mut self.v[index]);
        let g = param.grad.as_slice();
        let pv = param.value.as_mut_slice();
        for i in 0..g.len() {
            let mi = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
            let vi = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            m[i] = mi;
            v[i] = vi;
            let mhat = mi / bc1;
            let vhat = vi / bc2;
            pv[i] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * pv[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f32]) -> Parameter {
        Parameter::new(Tensor::from_vec(vals.to_vec(), [vals.len()]))
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut a = param(&[3.0, 4.0]);
        a.grad = Tensor::from_vec(vec![3.0, 4.0], [2]);
        let norm = clip_global_norm(10.0, |f| f(&mut a));
        assert!((norm - 5.0).abs() < 1e-6);
        assert!(
            (a.grad.norm() - 5.0).abs() < 1e-6,
            "below threshold: untouched"
        );
        let _ = clip_global_norm(1.0, |f| f(&mut a));
        assert!((a.grad.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_spans_multiple_parameters() {
        let mut a = param(&[0.0]);
        let mut b = param(&[0.0]);
        a.grad = Tensor::from_vec(vec![3.0], [1]);
        b.grad = Tensor::from_vec(vec![4.0], [1]);
        let norm = clip_global_norm(2.5, |f| {
            f(&mut a);
            f(&mut b);
        });
        assert!((norm - 5.0).abs() < 1e-6);
        // Halved globally, proportions preserved.
        assert!((a.grad[0] - 1.5).abs() < 1e-5);
        assert!((b.grad[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param(&[1.0, -1.0]);
        p.grad = Tensor::from_vec(vec![0.5, -0.5], [2]);
        let mut opt = Sgd::new(0.1);
        opt.update(0, &mut p);
        assert!((p.value[0] - 0.95).abs() < 1e-6);
        assert!((p.value[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = param(&[0.0]);
        let mut mom = param(&[0.0]);
        let mut opt_plain = Sgd::new(0.1);
        let mut opt_mom = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..5 {
            plain.grad = Tensor::from_vec(vec![1.0], [1]);
            mom.grad = Tensor::from_vec(vec![1.0], [1]);
            opt_plain.update(0, &mut plain);
            opt_mom.update(0, &mut mom);
        }
        assert!(
            mom.value[0] < plain.value[0],
            "momentum should travel further"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)²; gradient is 2(x - 3).
        let mut p = param(&[0.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            p.grad = Tensor::from_vec(vec![2.0 * (p.value[0] - 3.0)], [1]);
            opt.begin_step();
            opt.update(0, &mut p);
        }
        assert!((p.value[0] - 3.0).abs() < 0.05, "x = {}", p.value[0]);
    }

    #[test]
    fn adamw_decays_without_gradient() {
        let mut p = param(&[10.0]);
        let mut opt = Adam::with_weight_decay(0.1, 0.1);
        for _ in 0..10 {
            p.zero_grad();
            opt.begin_step();
            opt.update(0, &mut p);
        }
        assert!(p.value[0] < 10.0, "weight decay should shrink the weight");
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn adam_requires_begin_step() {
        let mut p = param(&[1.0]);
        Adam::new(0.1).update(0, &mut p);
    }
}
