//! Inverted dropout.

use crate::{Layer, Parameter};
use actcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: during training, zeroes each element with probability
/// `p` and scales survivors by `1/(1−p)`; during evaluation it is the
/// identity.
///
/// Owns a seeded RNG so that training runs are reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: ChaCha8Rng,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} not in [0, 1)"
        );
        Dropout {
            p,
            training: true,
            rng: ChaCha8Rng::seed_from_u64(seed),
            cache_mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(x.shape().clone(), |_| {
            if self.rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.mul(&mask);
        self.cache_mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.cache_mask.take() {
            Some(mask) => dy.mul(&mask),
            None => dy.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::ones([4, 4]);
        assert_eq!(d.forward(&x), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones([100, 100]);
        let y = d.forward(&x);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones([8, 8]);
        let y = d.forward(&x);
        let dx = d.backward(&Tensor::ones([8, 8]));
        assert_eq!(y, dx);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1)")]
    fn rejects_bad_probability() {
        Dropout::new(1.0, 0);
    }
}
