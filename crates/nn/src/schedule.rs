//! Learning-rate schedules.
//!
//! BERT-style training uses linear warmup followed by linear decay; deep
//! post-LN stacks in particular need warmup to survive larger peak rates.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule mapping the (1-based) step to a rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `lr` over `warmup` steps, constant after.
    Warmup {
        /// Peak rate.
        lr: f32,
        /// Warmup steps.
        warmup: usize,
    },
    /// Linear warmup then linear decay to zero at `total` steps.
    WarmupLinearDecay {
        /// Peak rate.
        lr: f32,
        /// Warmup steps.
        warmup: usize,
        /// Total steps (decay endpoint).
        total: usize,
    },
}

impl LrSchedule {
    /// The rate at `step` (1-based; step 0 is treated as step 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use actcomp_nn::LrSchedule;
    ///
    /// let s = LrSchedule::Warmup { lr: 1.0, warmup: 10 };
    /// assert!((s.at(5) - 0.5).abs() < 1e-6);
    /// assert_eq!(s.at(10), 1.0);
    /// assert_eq!(s.at(100), 1.0);
    /// ```
    pub fn at(&self, step: usize) -> f32 {
        let step = step.max(1);
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Warmup { lr, warmup } => {
                if warmup == 0 || step >= warmup {
                    lr
                } else {
                    lr * step as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupLinearDecay { lr, warmup, total } => {
                if warmup > 0 && step < warmup {
                    lr * step as f32 / warmup as f32
                } else if step >= total {
                    0.0
                } else {
                    let span = (total - warmup).max(1) as f32;
                    lr * (total - step) as f32 / span
                }
            }
        }
    }

    /// Peak learning rate.
    pub fn peak(&self) -> f32 {
        match *self {
            LrSchedule::Constant { lr }
            | LrSchedule::Warmup { lr, .. }
            | LrSchedule::WarmupLinearDecay { lr, .. } => lr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(1), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { lr: 2.0, warmup: 4 };
        assert!((s.at(1) - 0.5).abs() < 1e-6);
        assert!((s.at(2) - 1.0).abs() < 1e-6);
        assert!((s.at(3) - 1.5).abs() < 1e-6);
        assert_eq!(s.at(4), 2.0);
        assert_eq!(s.at(9999), 2.0);
    }

    #[test]
    fn decay_reaches_zero_at_total() {
        let s = LrSchedule::WarmupLinearDecay {
            lr: 1.0,
            warmup: 10,
            total: 110,
        };
        assert!((s.at(5) - 0.5).abs() < 1e-6);
        assert!((s.at(10) - 1.0).abs() < 1e-6);
        assert!((s.at(60) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(110), 0.0);
        assert_eq!(s.at(500), 0.0);
    }

    #[test]
    fn step_zero_is_step_one() {
        let s = LrSchedule::Warmup {
            lr: 1.0,
            warmup: 10,
        };
        assert_eq!(s.at(0), s.at(1));
    }

    #[test]
    fn zero_warmup_never_divides_by_zero() {
        let s = LrSchedule::Warmup { lr: 0.3, warmup: 0 };
        assert_eq!(s.at(1), 0.3);
    }
}
