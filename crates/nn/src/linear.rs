//! Fully-connected layer.

use crate::{Layer, Parameter};
use actcomp_tensor::{init, workspace, Tensor, Workspace};
use rand::Rng;

/// Affine transformation `y = x W + b` with cached input for backprop.
///
/// `W` is `[in, out]`, `b` is `[out]`; inputs are `[tokens, in]`.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{Layer, Linear};
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut layer = Linear::new(&mut rng, 8, 4);
/// let y = layer.forward(&Tensor::ones([2, 8]));
/// assert_eq!(y.dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub weight: Parameter,
    /// Bias vector `[out]`.
    pub bias: Parameter,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Self {
        Linear {
            weight: Parameter::new(init::xavier_uniform(rng, fan_in, fan_out)),
            bias: Parameter::new(Tensor::zeros([fan_out])),
            cache_x: None,
        }
    }

    /// Creates a layer with `N(0, std²)` weights (Megatron-style init).
    pub fn new_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize, std: f32) -> Self {
        Linear {
            weight: Parameter::new(init::randn(rng, [fan_in, fan_out], std)),
            bias: Parameter::new(Tensor::zeros([fan_out])),
            cache_x: None,
        }
    }

    /// Creates a layer from explicit weight and bias tensors.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2 or `bias` length differs from the
    /// weight's output dimension.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "linear weight must be rank 2");
        assert_eq!(
            bias.len(),
            weight.dims()[1],
            "bias length {} != fan_out {}",
            bias.len(),
            weight.dims()[1]
        );
        Linear {
            weight: Parameter::new(weight),
            bias: Parameter::new(bias),
            cache_x: None,
        }
    }

    /// Input feature count.
    pub fn fan_in(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn fan_out(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass without caching (inference-only helper).
    pub fn apply(&self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.apply_ws(x, ws))
    }

    /// [`Linear::apply`] with caller-provided scratch (matmul packing
    /// buffers and the output are leased from `ws`).
    pub fn apply_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        x.matmul_ws(&self.weight.value, ws)
            .add_row_broadcast(&self.bias.value)
    }

    /// [`Layer::forward`] with caller-provided scratch.
    pub fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let y = self.apply_ws(x, ws);
        self.cache_x = Some(x.clone());
        y
    }

    /// [`Layer::backward`] with caller-provided scratch. Accumulates the
    /// weight gradient in place (`grad += xᵀ dy`, no product temporary).
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward called without forward");
        // dW = xᵀ dy ; db = Σ_rows dy ; dx = dy Wᵀ
        self.weight.grad.add_matmul_tn_ws(&x, dy, ws);
        self.bias.grad.add_assign(&dy.sum_axis0());
        ws.recycle_tensor(x);
        dy.matmul_nt_ws(&self.weight.value, ws)
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, ws))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(dy, ws))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check_layer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![0.5, -0.5], [2]);
        let mut layer = Linear::from_parts(w, b);
        let y = layer.forward(&Tensor::from_vec(vec![1.0, 1.0], [1, 2]));
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let layer = Linear::new(&mut rng, 5, 3);
        grad_check_layer(layer, [4, 5], 2e-2, &mut rng);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut layer = Linear::new(&mut rng, 2, 2);
        let x = Tensor::ones([3, 2]);
        let dy = Tensor::ones([3, 2]);
        layer.forward(&x);
        layer.backward(&dy);
        let g1 = layer.weight.grad.clone();
        layer.forward(&x);
        layer.backward(&dy);
        assert!(layer.weight.grad.max_abs_diff(&g1.scale(2.0)) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut layer = Linear::new(&mut rng, 2, 2);
        layer.backward(&Tensor::ones([1, 2]));
    }

    #[test]
    fn param_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Linear::new(&mut rng, 7, 5);
        assert_eq!(layer.num_params(), 7 * 5 + 5);
    }
}
