//! Fully-connected layer.

use crate::{Layer, Parameter};
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{FusePolicy, OutBind};
use actcomp_tensor::{init, workspace, Tensor, Workspace};
use rand::Rng;

/// Affine transformation `y = x W + b` with cached input for backprop.
///
/// `W` is `[in, out]`, `b` is `[out]`; inputs are `[tokens, in]`.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{Layer, Linear};
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut layer = Linear::new(&mut rng, 8, 4);
/// let y = layer.forward(&Tensor::ones([2, 8]));
/// assert_eq!(y.dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub weight: Parameter,
    /// Bias vector `[out]`.
    pub bias: Parameter,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Self {
        Linear {
            weight: Parameter::new(init::xavier_uniform(rng, fan_in, fan_out)),
            bias: Parameter::new(Tensor::zeros([fan_out])),
            cache_x: None,
        }
    }

    /// Creates a layer with `N(0, std²)` weights (Megatron-style init).
    pub fn new_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize, std: f32) -> Self {
        Linear {
            weight: Parameter::new(init::randn(rng, [fan_in, fan_out], std)),
            bias: Parameter::new(Tensor::zeros([fan_out])),
            cache_x: None,
        }
    }

    /// Creates a layer from explicit weight and bias tensors.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2 or `bias` length differs from the
    /// weight's output dimension.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "linear weight must be rank 2");
        assert_eq!(
            bias.len(),
            weight.dims()[1],
            "bias length {} != fan_out {}",
            bias.len(),
            weight.dims()[1]
        );
        Linear {
            weight: Parameter::new(weight),
            bias: Parameter::new(bias),
            cache_x: None,
        }
    }

    /// Input feature count.
    pub fn fan_in(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn fan_out(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass without caching (inference-only helper).
    pub fn apply(&self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.apply_ws(x, ws))
    }

    /// [`Linear::apply`] with caller-provided scratch: emits the
    /// `matmul → bias` graph segment and runs the compiled plan, so the
    /// bias add executes in the GEMM's register-tile epilogue instead of
    /// a second pass over the output.
    pub fn apply_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = self.fan_out();
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gw = g.input(kin, n);
        let gb = g.input_vec(n);
        let y = g.matmul(gx, gw);
        let h = g.bias_add(y, gb);
        g.mark_output(h);
        let plan = g.compile(FusePolicy::Auto).expect("linear forward graph");
        let mut out = plan.run(
            &[
                x.as_slice(),
                self.weight.value.as_slice(),
                self.bias.value.as_slice(),
            ],
            vec![OutBind::Lease],
            ws,
        );
        Tensor::from_vec(out[0].take().expect("leased output"), [m, n])
    }

    /// [`Layer::forward`] with caller-provided scratch.
    pub fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let y = self.apply_ws(x, ws);
        self.cache_x = Some(x.clone());
        y
    }

    /// [`Layer::backward`] with caller-provided scratch. The whole
    /// backward — `dW = xᵀ dy`, `db = Σ_rows dy`, `dx = dy Wᵀ` — is one
    /// graph segment whose parameter-gradient outputs accumulate straight
    /// into `grad` ([`OutBind::Acc`], no product temporary).
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward called without forward");
        let (m, kin) = (x.dims()[0], x.dims()[1]);
        let n = self.fan_out();
        let mut g = Graph::new();
        let gx = g.input(m, kin);
        let gdy = g.input(m, n);
        let gw = g.input(kin, n);
        let dw = g.matmul_tn(gx, gdy);
        let db = g.sum_axis0(gdy);
        let dx = g.matmul_nt(gdy, gw);
        g.mark_output(dw);
        g.mark_output(db);
        g.mark_output(dx);
        let plan = g.compile(FusePolicy::Auto).expect("linear backward graph");
        let mut res = plan.run(
            &[x.as_slice(), dy.as_slice(), self.weight.value.as_slice()],
            vec![
                OutBind::Acc(self.weight.grad.as_mut_slice()),
                OutBind::Acc(self.bias.grad.as_mut_slice()),
                OutBind::Lease,
            ],
            ws,
        );
        ws.recycle_tensor(x);
        Tensor::from_vec(res[2].take().expect("leased dx"), [m, kin])
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, ws))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(dy, ws))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check_layer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![0.5, -0.5], [2]);
        let mut layer = Linear::from_parts(w, b);
        let y = layer.forward(&Tensor::from_vec(vec![1.0, 1.0], [1, 2]));
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let layer = Linear::new(&mut rng, 5, 3);
        grad_check_layer(layer, [4, 5], 2e-2, &mut rng);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut layer = Linear::new(&mut rng, 2, 2);
        let x = Tensor::ones([3, 2]);
        let dy = Tensor::ones([3, 2]);
        layer.forward(&x);
        layer.backward(&dy);
        let g1 = layer.weight.grad.clone();
        layer.forward(&x);
        layer.backward(&dy);
        assert!(layer.weight.grad.max_abs_diff(&g1.scale(2.0)) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut layer = Linear::new(&mut rng, 2, 2);
        layer.backward(&Tensor::ones([1, 2]));
    }

    #[test]
    fn param_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Linear::new(&mut rng, 7, 5);
        assert_eq!(layer.num_params(), 7 * 5 + 5);
    }
}
