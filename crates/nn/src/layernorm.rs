//! Layer normalization.

use crate::{Layer, Parameter};
use actcomp_tensor::{workspace, Tensor, Workspace};

/// Layer normalization over the feature axis of `[tokens, features]`
/// inputs: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{Layer, LayerNorm};
/// use actcomp_tensor::Tensor;
///
/// let mut ln = LayerNorm::new(4);
/// let y = ln.forward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]));
/// assert!(y.mean().abs() < 1e-6); // zero-mean per row with unit γ, zero β
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale `γ`, shape `[features]`.
    pub gamma: Parameter,
    /// Shift `β`, shape `[features]`.
    pub beta: Parameter,
    eps: f32,
    cache: Option<LnCache>,
}

/// The state [`LayerNorm::backward_cached`] needs: the normalized input
/// and per-row inverse standard deviations.
///
/// [`Layer::forward`] stores one of these internally; callers that
/// interleave several in-flight activations (e.g. a microbatched pipeline
/// stage) use [`LayerNorm::forward_cached`] and keep the caches
/// themselves.
#[derive(Debug, Clone)]
pub struct LnCache {
    xhat: Tensor,
    inv_std: Tensor,
}

impl LayerNorm {
    /// Creates a layer norm over `features` with `γ = 1`, `β = 0`,
    /// `ε = 1e-5`.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new(Tensor::ones([features])),
            beta: Parameter::new(Tensor::zeros([features])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature width this layer normalizes over.
    pub fn features(&self) -> usize {
        self.gamma.value.len()
    }

    /// Forward pass returning the backward state explicitly instead of
    /// storing it, so callers can keep several activations in flight.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[tokens, features]`.
    pub fn forward_cached(&self, x: &Tensor) -> (Tensor, LnCache) {
        workspace::with_thread_default(|ws| self.forward_cached_ws(x, ws))
    }

    /// [`LayerNorm::forward_cached`] with caller-provided scratch: the
    /// normalize / scale / shift passes are fused into one loop writing
    /// `x̂` and `y` (both leased from `ws`) together.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[tokens, features]`.
    pub fn forward_cached_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, LnCache) {
        assert_eq!(
            x.rank(),
            2,
            "LayerNorm input must be rank 2, got {}",
            x.shape()
        );
        let n = self.features();
        assert_eq!(
            x.dims()[1],
            n,
            "LayerNorm width {} != input width {}",
            n,
            x.dims()[1]
        );
        let m = x.dims()[0];
        let (mean, var) = x.row_moments();
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let mut xhat = ws.lease(m * n);
        let mut y = ws.lease(m * n);
        let mut inv_std = vec![0.0f32; m];
        for i in 0..m {
            let is = 1.0 / (var[i] + self.eps).sqrt();
            inv_std[i] = is;
            for j in 0..n {
                let xh = (x.as_slice()[i * n + j] - mean[i]) * is;
                xhat[i * n + j] = xh;
                y[i * n + j] = xh * g[j] + b[j];
            }
        }
        (
            Tensor::from_vec(y, [m, n]),
            LnCache {
                xhat: Tensor::from_vec(xhat, [m, n]),
                inv_std: Tensor::from_vec(inv_std, [m]),
            },
        )
    }

    /// Backward pass from an explicit [`LnCache`], accumulating `γ`/`β`
    /// gradients and returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape disagrees with the cached activation's.
    pub fn backward_cached(&mut self, dy: &Tensor, cache: LnCache) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_cached_ws(dy, cache, ws))
    }

    /// [`LayerNorm::backward_cached`] with caller-provided scratch; the
    /// consumed cache's buffers are recycled into `ws`.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape disagrees with the cached activation's.
    pub fn backward_cached_ws(
        &mut self,
        dy: &Tensor,
        cache: LnCache,
        ws: &mut Workspace,
    ) -> Tensor {
        let LnCache { xhat, inv_std } = cache;
        let (m, n) = (xhat.dims()[0], xhat.dims()[1]);
        assert!(
            dy.shape().same_as(xhat.shape()),
            "LayerNorm dy shape mismatch"
        );

        // Parameter grads.
        self.gamma.grad.add_assign(&dy.mul(&xhat).sum_axis0());
        self.beta.grad.add_assign(&dy.sum_axis0());

        // Input grad: dx = (γ·inv_std/n) * (n·dy − Σdy − x̂·Σ(dy⊙x̂)) per row
        // where the per-row sums are over dŷ = dy ⊙ γ.
        let g = self.gamma.value.as_slice();
        let mut dx = ws.lease(m * n);
        for i in 0..m {
            let row_dy = &dy.as_slice()[i * n..(i + 1) * n];
            let row_xh = &xhat.as_slice()[i * n..(i + 1) * n];
            let mut s1 = 0.0; // Σ dŷ
            let mut s2 = 0.0; // Σ dŷ ⊙ x̂
            for j in 0..n {
                let dyh = row_dy[j] * g[j];
                s1 += dyh;
                s2 += dyh * row_xh[j];
            }
            let is = inv_std[i];
            for j in 0..n {
                let dyh = row_dy[j] * g[j];
                dx[i * n + j] = is * (dyh - (s1 + row_xh[j] * s2) / n as f32);
            }
        }
        ws.recycle_tensor(xhat);
        Tensor::from_vec(dx, [m, n])
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (y, cache) = self.forward_cached(x);
        self.cache = Some(cache);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("LayerNorm::backward called without forward");
        self.backward_cached(dy, cache)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check_layer;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normalizes_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [5, 16], 3.0).add_scalar(2.0);
        let mut ln = LayerNorm::new(16);
        let y = ln.forward(&x);
        let (mean, var) = y.row_moments();
        for i in 0..5 {
            assert!(mean[i].abs() < 1e-5);
            assert!((var[i] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value = Tensor::from_vec(vec![2.0, 2.0], [2]);
        ln.beta.value = Tensor::from_vec(vec![1.0, -1.0], [2]);
        let y = ln.forward(&Tensor::from_vec(vec![-1.0, 1.0], [1, 2]));
        // x̂ = [-1, 1] (unit variance after eps ≈ 0), so y ≈ [-1, 1]*2 + β.
        assert!((y[0] + 1.0).abs() < 1e-2);
        assert!((y[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ln = LayerNorm::new(6);
        grad_check_layer(ln, [3, 6], 3e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        LayerNorm::new(2).backward(&Tensor::ones([1, 2]));
    }
}
