//! Layer normalization.

use crate::{Layer, Parameter};
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{FusePolicy, OutBind};
use actcomp_tensor::{workspace, Tensor, Workspace};

/// Layer normalization over the feature axis of `[tokens, features]`
/// inputs: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{Layer, LayerNorm};
/// use actcomp_tensor::Tensor;
///
/// let mut ln = LayerNorm::new(4);
/// let y = ln.forward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]));
/// assert!(y.mean().abs() < 1e-6); // zero-mean per row with unit γ, zero β
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale `γ`, shape `[features]`.
    pub gamma: Parameter,
    /// Shift `β`, shape `[features]`.
    pub beta: Parameter,
    eps: f32,
    cache: Option<LnCache>,
}

/// The state [`LayerNorm::backward_cached`] needs: the normalized input
/// and per-row inverse standard deviations.
///
/// [`Layer::forward`] stores one of these internally; callers that
/// interleave several in-flight activations (e.g. a microbatched pipeline
/// stage) use [`LayerNorm::forward_cached`] and keep the caches
/// themselves.
#[derive(Debug, Clone)]
pub struct LnCache {
    xhat: Tensor,
    inv_std: Tensor,
}

impl LnCache {
    /// Builds a cache from parts produced by an external graph plan
    /// (e.g. a rank worker that emits its own `LnForward` node).
    pub fn from_parts(xhat: Tensor, inv_std: Tensor) -> Self {
        LnCache { xhat, inv_std }
    }

    /// The cached normalized activation `x̂`.
    pub fn xhat(&self) -> &Tensor {
        &self.xhat
    }

    /// The cached per-row inverse standard deviations.
    pub fn inv_std(&self) -> &Tensor {
        &self.inv_std
    }

    /// Consumes the cache into `(x̂, 1/σ)`.
    pub fn into_parts(self) -> (Tensor, Tensor) {
        (self.xhat, self.inv_std)
    }
}

impl LayerNorm {
    /// Numerical-stability epsilon added to the variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Creates a layer norm over `features` with `γ = 1`, `β = 0`,
    /// `ε = 1e-5`.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new(Tensor::ones([features])),
            beta: Parameter::new(Tensor::zeros([features])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature width this layer normalizes over.
    pub fn features(&self) -> usize {
        self.gamma.value.len()
    }

    /// Forward pass returning the backward state explicitly instead of
    /// storing it, so callers can keep several activations in flight.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[tokens, features]`.
    pub fn forward_cached(&self, x: &Tensor) -> (Tensor, LnCache) {
        workspace::with_thread_default(|ws| self.forward_cached_ws(x, ws))
    }

    /// [`LayerNorm::forward_cached`] with caller-provided scratch: emits
    /// an `LnForward` graph node and runs the compiled plan, which writes
    /// `y`, `x̂`, and the per-row inverse standard deviations in a single
    /// fused pass (all leased from `ws`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[tokens, features]`.
    pub fn forward_cached_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, LnCache) {
        assert_eq!(
            x.rank(),
            2,
            "LayerNorm input must be rank 2, got {}",
            x.shape()
        );
        let n = self.features();
        assert_eq!(
            x.dims()[1],
            n,
            "LayerNorm width {} != input width {}",
            n,
            x.dims()[1]
        );
        let m = x.dims()[0];
        let mut g = Graph::new();
        let gx = g.input(m, n);
        let gg = g.input_vec(n);
        let gb = g.input_vec(n);
        let (y, xhat, inv_std) = g.layernorm(gx, gg, gb, self.eps);
        g.mark_output(y);
        g.mark_output(xhat);
        g.mark_output(inv_std);
        let plan = g.compile(FusePolicy::Auto).expect("layernorm graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                self.gamma.value.as_slice(),
                self.beta.value.as_slice(),
            ],
            vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
            ws,
        );
        (
            Tensor::from_vec(res[0].take().expect("leased y"), [m, n]),
            LnCache {
                xhat: Tensor::from_vec(res[1].take().expect("leased xhat"), [m, n]),
                inv_std: Tensor::from_vec(res[2].take().expect("leased inv_std"), [m]),
            },
        )
    }

    /// Fused residual + layer norm: computes `LN(x + r)` as one graph
    /// segment — the residual sum is a plan-internal intermediate,
    /// recycled the moment the normalization has consumed it, instead of
    /// a caller-held full activation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree or are not `[tokens, features]`.
    pub fn forward_residual_cached_ws(
        &self,
        x: &Tensor,
        r: &Tensor,
        ws: &mut Workspace,
    ) -> (Tensor, LnCache) {
        assert!(
            x.shape().same_as(r.shape()),
            "residual shape {} != input shape {}",
            r.shape(),
            x.shape()
        );
        let n = self.features();
        assert_eq!(x.rank(), 2, "LayerNorm input must be rank 2");
        assert_eq!(x.dims()[1], n, "LayerNorm width mismatch");
        let m = x.dims()[0];
        let mut g = Graph::new();
        let gx = g.input(m, n);
        let gr = g.input(m, n);
        let gg = g.input_vec(n);
        let gb = g.input_vec(n);
        let s = g.residual_add(gx, gr);
        let (y, xhat, inv_std) = g.layernorm(s, gg, gb, self.eps);
        g.mark_output(y);
        g.mark_output(xhat);
        g.mark_output(inv_std);
        let plan = g.compile(FusePolicy::Auto).expect("residual+ln graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                r.as_slice(),
                self.gamma.value.as_slice(),
                self.beta.value.as_slice(),
            ],
            vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
            ws,
        );
        (
            Tensor::from_vec(res[0].take().expect("leased y"), [m, n]),
            LnCache {
                xhat: Tensor::from_vec(res[1].take().expect("leased xhat"), [m, n]),
                inv_std: Tensor::from_vec(res[2].take().expect("leased inv_std"), [m]),
            },
        )
    }

    /// [`LayerNorm::forward_residual_cached_ws`] storing the cache
    /// internally, as [`Layer::forward`] does.
    pub fn forward_residual(&mut self, x: &Tensor, r: &Tensor) -> Tensor {
        let (y, cache) =
            workspace::with_thread_default(|ws| self.forward_residual_cached_ws(x, r, ws));
        self.cache = Some(cache);
        y
    }

    /// Backward pass from an explicit [`LnCache`], accumulating `γ`/`β`
    /// gradients and returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape disagrees with the cached activation's.
    pub fn backward_cached(&mut self, dy: &Tensor, cache: LnCache) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_cached_ws(dy, cache, ws))
    }

    /// [`LayerNorm::backward_cached`] with caller-provided scratch; the
    /// consumed cache's buffers are recycled into `ws`.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape disagrees with the cached activation's.
    pub fn backward_cached_ws(
        &mut self,
        dy: &Tensor,
        cache: LnCache,
        ws: &mut Workspace,
    ) -> Tensor {
        let LnCache { xhat, inv_std } = cache;
        let (m, n) = (xhat.dims()[0], xhat.dims()[1]);
        assert!(
            dy.shape().same_as(xhat.shape()),
            "LayerNorm dy shape mismatch"
        );
        // One LnBackward graph node: dx leased, dγ/dβ accumulated
        // straight into the parameter grads.
        let mut g = Graph::new();
        let gdy = g.input(m, n);
        let gxh = g.input(m, n);
        let gis = g.input(m, 1);
        let gg = g.input_vec(n);
        let (dx, dgamma, dbeta) = g.layernorm_backward(gdy, gxh, gis, gg);
        g.mark_output(dx);
        g.mark_output(dgamma);
        g.mark_output(dbeta);
        let plan = g
            .compile(FusePolicy::Auto)
            .expect("layernorm backward graph");
        let mut res = plan.run(
            &[
                dy.as_slice(),
                xhat.as_slice(),
                inv_std.as_slice(),
                self.gamma.value.as_slice(),
            ],
            vec![
                OutBind::Lease,
                OutBind::Acc(self.gamma.grad.as_mut_slice()),
                OutBind::Acc(self.beta.grad.as_mut_slice()),
            ],
            ws,
        );
        ws.recycle_tensor(xhat);
        Tensor::from_vec(res[0].take().expect("leased dx"), [m, n])
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (y, cache) = self.forward_cached(x);
        self.cache = Some(cache);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("LayerNorm::backward called without forward");
        self.backward_cached(dy, cache)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check_layer;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normalizes_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [5, 16], 3.0).add_scalar(2.0);
        let mut ln = LayerNorm::new(16);
        let y = ln.forward(&x);
        let (mean, var) = y.row_moments();
        for i in 0..5 {
            assert!(mean[i].abs() < 1e-5);
            assert!((var[i] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value = Tensor::from_vec(vec![2.0, 2.0], [2]);
        ln.beta.value = Tensor::from_vec(vec![1.0, -1.0], [2]);
        let y = ln.forward(&Tensor::from_vec(vec![-1.0, 1.0], [1, 2]));
        // x̂ = [-1, 1] (unit variance after eps ≈ 0), so y ≈ [-1, 1]*2 + β.
        assert!((y[0] + 1.0).abs() < 1e-2);
        assert!((y[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ln = LayerNorm::new(6);
        grad_check_layer(ln, [3, 6], 3e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        LayerNorm::new(2).backward(&Tensor::ones([1, 2]));
    }
}
