//! Finite-difference gradient checking utilities.
//!
//! Used by this crate's own tests and by downstream crates (`actcomp-mp`)
//! to validate layers that embed compression operators.

use crate::Layer;
use actcomp_tensor::{init, Shape, Tensor};
use rand::Rng;

/// Central finite-difference step. `f32` arithmetic limits how small this
/// can usefully be.
const FD_EPS: f32 = 1e-2;

/// Checks a layer's analytic gradients against central finite differences.
///
/// The scalar objective is `L = Σ (forward(x) ⊙ dy)` for a random cotangent
/// `dy`. Both the input gradient and every parameter gradient are checked
/// elementwise with mixed absolute/relative tolerance `tol`.
///
/// Only valid for deterministic layers (disable dropout first).
///
/// # Panics
///
/// Panics (test failure) when any gradient entry deviates by more than
/// `tol` in mixed absolute/relative terms.
pub fn grad_check_layer<L: Layer>(
    mut layer: L,
    input_shape: impl Into<Shape>,
    tol: f32,
    rng: &mut impl Rng,
) {
    let shape = input_shape.into();
    let x = init::randn(rng, shape, 1.0);
    let probe = layer.forward(&x);
    let dy = init::randn(rng, probe.shape().clone(), 1.0);

    // Analytic gradients.
    layer.zero_grad();
    let _ = layer.forward(&x);
    let dx = layer.backward(&dy);

    // Input gradient check.
    for j in 0..x.len() {
        let fd = {
            let mut xp = x.clone();
            xp[j] += FD_EPS;
            let mut xm = x.clone();
            xm[j] -= FD_EPS;
            let lp = layer.forward(&xp).mul(&dy).sum();
            // Discard the cached state from the probe forward.
            let _ = layer.backward(&Tensor::zeros_like(&dy));
            let lm = layer.forward(&xm).mul(&dy).sum();
            let _ = layer.backward(&Tensor::zeros_like(&dy));
            (lp - lm) / (2.0 * FD_EPS)
        };
        assert_close(dx[j], fd, tol, &format!("input grad [{j}]"));
    }

    // Parameter gradient check. Re-run the analytic pass so accumulated
    // grads reflect exactly one backward.
    layer.zero_grad();
    let _ = layer.forward(&x);
    let _ = layer.backward(&dy);
    let mut analytic: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |p| analytic.push(p.grad.clone()));

    for (t, grads) in analytic.iter().enumerate() {
        for (j, &g) in grads.as_slice().iter().enumerate() {
            let fd = {
                perturb(&mut layer, t, j, FD_EPS);
                let lp = layer.forward(&x).mul(&dy).sum();
                let _ = layer.backward(&Tensor::zeros_like(&dy));
                perturb(&mut layer, t, j, -2.0 * FD_EPS);
                let lm = layer.forward(&x).mul(&dy).sum();
                let _ = layer.backward(&Tensor::zeros_like(&dy));
                perturb(&mut layer, t, j, FD_EPS);
                (lp - lm) / (2.0 * FD_EPS)
            };
            assert_close(g, fd, tol, &format!("param {t} grad [{j}]"));
        }
    }
}

/// Adds `delta` to element `j` of the `t`-th parameter tensor.
fn perturb<L: Layer>(layer: &mut L, t: usize, j: usize, delta: f32) {
    let mut idx = 0;
    layer.visit_params(&mut |p| {
        if idx == t {
            p.value[j] += delta;
        }
        idx += 1;
    });
}

/// Asserts `a ≈ b` under a mixed absolute/relative tolerance.
pub fn assert_close(a: f32, b: f32, tol: f32, what: &str) {
    let denom = 1.0f32.max(a.abs()).max(b.abs());
    assert!(
        (a - b).abs() / denom <= tol,
        "{what}: analytic {a} vs finite-difference {b} (tol {tol})"
    );
}
