//! Multi-head self-attention with a full manual backward pass.

use crate::{Layer, Linear, Parameter};
use actcomp_tensor::{workspace, Tensor, Workspace};
use rand::Rng;

/// Multi-head scaled-dot-product self-attention.
///
/// Input and output are `[batch·seq, hidden]`; the `(batch, seq)`
/// factorization is supplied per call because the same layer is reused
/// across batch shapes. Q/K/V/output projections are [`Linear`] layers, so
/// tensor-parallel shards (in `actcomp-mp`) can partition them head-wise
/// exactly as Megatron-LM does.
///
/// # Examples
///
/// ```
/// use actcomp_nn::MultiHeadAttention;
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
/// let x = Tensor::ones([2 * 3, 16]); // batch 2, seq 3
/// let y = attn.forward(&x, 2, 3);
/// assert_eq!(y.dims(), &[6, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax probabilities, one `[seq, seq]` matrix per (batch, head).
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer over `hidden` features with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(rng: &mut impl Rng, hidden: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden {hidden} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq: Linear::new(rng, hidden, hidden),
            wk: Linear::new(rng, hidden, hidden),
            wv: Linear::new(rng, hidden, hidden),
            wo: Linear::new(rng, hidden, hidden),
            heads,
            cache: None,
        }
    }

    /// Assembles an attention layer from existing projections (used when
    /// reassembling tensor-parallel shards into a serial checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the projections are not square and equal-sized, or
    /// `heads` does not divide the width.
    pub fn from_parts(wq: Linear, wk: Linear, wv: Linear, wo: Linear, heads: usize) -> Self {
        let h = wq.fan_in();
        for l in [&wq, &wk, &wv, &wo] {
            assert_eq!(l.fan_in(), h, "projection width mismatch");
            assert_eq!(l.fan_out(), h, "projection width mismatch");
        }
        assert!(
            heads > 0 && h.is_multiple_of(heads),
            "{h} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq,
            wk,
            wv,
            wo,
            heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.wq.fan_in()
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden() / self.heads
    }

    /// Forward pass over `[batch·seq, hidden]` input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[batch·seq, hidden]`.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, batch, seq, ws))
    }

    /// [`MultiHeadAttention::forward`] with caller-provided scratch: head
    /// blocks, score matrices and the context buffer are leased from `ws`
    /// and recycled as soon as each head is done.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[batch·seq, hidden]`.
    pub fn forward_ws(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        ws: &mut Workspace,
    ) -> Tensor {
        let h = self.hidden();
        assert_eq!(
            x.dims(),
            &[batch * seq, h],
            "attention input shape {} != [{}x{}]",
            x.shape(),
            batch * seq,
            h
        );
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let q = self.wq.forward_ws(x, ws);
        let k = self.wk.forward_ws(x, ws);
        let v = self.wv.forward_ws(x, ws);

        let mut ctx = ws.lease_tensor([batch * seq, h]);
        let mut probs = Vec::with_capacity(batch * self.heads);
        for t in 0..batch {
            for hd in 0..self.heads {
                let qb = head_block_ws(&q, t, hd, seq, d, h, ws);
                let kb = head_block_ws(&k, t, hd, seq, d, h, ws);
                let vb = head_block_ws(&v, t, hd, seq, d, h, ws);
                let mut scores = qb.matmul_nt_ws(&kb, ws);
                scores.scale_assign(scale);
                let p = scores.softmax_rows();
                let c = p.matmul_ws(&vb, ws);
                write_head_block(&mut ctx, &c, t, hd, seq, d, h);
                for tmp in [qb, kb, vb, scores, c] {
                    ws.recycle_tensor(tmp);
                }
                probs.push(p);
            }
        }
        let out = self.wo.forward_ws(&ctx, ws);
        ws.recycle_tensor(ctx);
        self.cache = Some(AttnCache {
            q,
            k,
            v,
            probs,
            batch,
            seq,
        });
        out
    }

    /// Backward pass; returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`MultiHeadAttention::forward`].
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(dy, ws))
    }

    /// [`MultiHeadAttention::backward`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`MultiHeadAttention::forward`].
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let AttnCache {
            q,
            k,
            v,
            probs,
            batch,
            seq,
        } = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward called without forward");
        let h = self.hidden();
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let dctx = self.wo.backward_ws(dy, ws);
        let mut dq = ws.lease_tensor([batch * seq, h]);
        let mut dk = ws.lease_tensor([batch * seq, h]);
        let mut dv = ws.lease_tensor([batch * seq, h]);

        for t in 0..batch {
            for hd in 0..self.heads {
                let p = &probs[t * self.heads + hd];
                let qb = head_block_ws(&q, t, hd, seq, d, h, ws);
                let kb = head_block_ws(&k, t, hd, seq, d, h, ws);
                let vb = head_block_ws(&v, t, hd, seq, d, h, ws);
                let dc = head_block_ws(&dctx, t, hd, seq, d, h, ws);

                // c = p v  →  dp = dc vᵀ ; dv = pᵀ dc
                let dp = dc.matmul_nt_ws(&vb, ws);
                let dvb = p.matmul_tn_ws(&dc, ws);
                // p = softmax(s), s = α q kᵀ
                let mut ds = Tensor::softmax_rows_backward(p, &dp);
                ds.scale_assign(scale);
                let dqb = ds.matmul_ws(&kb, ws);
                let dkb = ds.matmul_tn_ws(&qb, ws);

                write_head_block(&mut dq, &dqb, t, hd, seq, d, h);
                write_head_block(&mut dk, &dkb, t, hd, seq, d, h);
                write_head_block(&mut dv, &dvb, t, hd, seq, d, h);
                for tmp in [qb, kb, vb, dc, dp, dvb, ds, dqb, dkb] {
                    ws.recycle_tensor(tmp);
                }
            }
        }
        ws.recycle_tensor(dctx);

        let mut dx = self.wq.backward_ws(&dq, ws);
        dx.add_assign(&self.wk.backward_ws(&dk, ws));
        dx.add_assign(&self.wv.backward_ws(&dv, ws));
        for tmp in [dq, dk, dv] {
            ws.recycle_tensor(tmp);
        }
        dx
    }

    /// Visits all projection parameters (q, k, v, o order).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// Extracts the `[seq, d]` block of head `hd`, batch item `t` from a
/// `[batch·seq, h]` tensor.
#[cfg(test)]
fn head_block(x: &Tensor, t: usize, hd: usize, seq: usize, d: usize, h: usize) -> Tensor {
    let mut ws = Workspace::new();
    head_block_ws(x, t, hd, seq, d, h, &mut ws)
}

/// [`head_block`] into a buffer leased from `ws`.
fn head_block_ws(
    x: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    h: usize,
    ws: &mut Workspace,
) -> Tensor {
    let mut out = ws.lease(seq * d);
    let base_col = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * h + base_col;
        out[r * d..(r + 1) * d].copy_from_slice(&x.as_slice()[row..row + d]);
    }
    Tensor::from_vec(out, [seq, d])
}

/// Writes a `[seq, d]` block back into a `[batch·seq, h]` tensor.
fn write_head_block(
    out: &mut Tensor,
    block: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    h: usize,
) {
    let base_col = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * h + base_col;
        out.as_mut_slice()[row..row + d].copy_from_slice(&block.as_slice()[r * d..(r + 1) * d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn head_block_round_trip() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), [4, 6]);
        // batch 2, seq 2, heads 3, d 2, h 6
        let b = head_block(&x, 1, 2, 2, 2, 6);
        assert_eq!(b.as_slice(), &[16.0, 17.0, 22.0, 23.0]);
        let mut y = Tensor::zeros([4, 6]);
        write_head_block(&mut y, &b, 1, 2, 2, 2, 6);
        assert_eq!(y.at(&[2, 4]), 16.0);
        assert_eq!(y.at(&[3, 5]), 23.0);
    }

    #[test]
    fn output_shape_and_determinism() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::randn(&mut rng, [6, 8], 1.0);
        let y1 = attn.forward(&x, 2, 3);
        let y2 = attn.forward(&x, 2, 3);
        assert_eq!(y1, y2);
        assert_eq!(y1.dims(), &[6, 8]);
        assert!(y1.all_finite());
    }

    #[test]
    fn uniform_rows_attend_uniformly() {
        // With identical tokens, attention is an average: output rows equal.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let row = init::randn(&mut rng, [1, 8], 1.0);
        let x = Tensor::concat_rows(&[&row, &row, &row]);
        let y = attn.forward(&x, 1, 3);
        let r0 = y.slice_rows(0, 1);
        let r1 = y.slice_rows(1, 2);
        let r2 = y.slice_rows(2, 3);
        assert!(r0.max_abs_diff(&r1) < 1e-5);
        assert!(r1.max_abs_diff(&r2) < 1e-5);
    }

    /// Full finite-difference check of input gradients through attention.
    #[test]
    fn input_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(&mut rng, 6, 2);
        let x = init::randn(&mut rng, [4, 6], 0.8); // batch 2, seq 2
        let y = attn.forward(&x, 2, 2);
        let dy = init::randn(&mut rng, y.shape().clone(), 1.0);
        let _ = attn.forward(&x, 2, 2);
        let dx = attn.backward(&dy);

        let eps = 1e-2;
        for j in 0..x.len() {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let lp = attn.forward(&xp, 2, 2).mul(&dy).sum();
            let lm = attn.forward(&xm, 2, 2).mul(&dy).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert_close(dx[j], fd, 3e-2, &format!("attn dx[{j}]"));
        }
    }

    /// Finite-difference check of a sample of parameter gradients.
    #[test]
    fn param_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 6, 2);
        let x = init::randn(&mut rng, [4, 6], 0.8);
        let y = attn.forward(&x, 2, 2);
        let dy = init::randn(&mut rng, y.shape().clone(), 1.0);

        attn.visit_params(&mut |p| p.zero_grad());
        let _ = attn.forward(&x, 2, 2);
        let _ = attn.backward(&dy);
        let mut grads = Vec::new();
        attn.visit_params(&mut |p| grads.push(p.grad.clone()));

        fn bump(attn: &mut MultiHeadAttention, t: usize, j: usize, delta: f32) {
            let mut idx = 0;
            attn.visit_params(&mut |p| {
                if idx == t {
                    p.value[j] += delta;
                }
                idx += 1;
            });
        }

        let eps = 1e-2;
        for (t, grad) in grads.iter().enumerate() {
            // Check a handful of entries per tensor to keep runtime modest.
            let stride = (grad.len() / 4).max(1);
            for j in (0..grad.len()).step_by(stride) {
                bump(&mut attn, t, j, eps);
                let lp = attn.forward(&x, 2, 2).mul(&dy).sum();
                bump(&mut attn, t, j, -2.0 * eps);
                let lm = attn.forward(&x, 2, 2).mul(&dy).sum();
                bump(&mut attn, t, j, eps);
                let fd = (lp - lm) / (2.0 * eps);
                assert_close(grad[j], fd, 3e-2, &format!("attn param {t}[{j}]"));
            }
        }
    }
}
