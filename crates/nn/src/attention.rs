//! Multi-head self-attention with a full manual backward pass.

use crate::{Layer, Linear, Parameter};
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{CompiledPlan, FusePolicy, OutBind};
use actcomp_tensor::{workspace, Tensor, Workspace};
use rand::Rng;

/// Multi-head scaled-dot-product self-attention.
///
/// Input and output are `[batch·seq, hidden]`; the `(batch, seq)`
/// factorization is supplied per call because the same layer is reused
/// across batch shapes. Q/K/V/output projections are [`Linear`] layers, so
/// tensor-parallel shards (in `actcomp-mp`) can partition them head-wise
/// exactly as Megatron-LM does.
///
/// # Examples
///
/// ```
/// use actcomp_nn::MultiHeadAttention;
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
/// let x = Tensor::ones([2 * 3, 16]); // batch 2, seq 3
/// let y = attn.forward(&x, 2, 3);
/// assert_eq!(y.dims(), &[6, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax probabilities, one `[seq, seq]` matrix per (batch, head).
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

/// Builds the `[seq, d] × [seq, d] → scaled scores` per-head graph; the
/// `1/√d` scale fuses into the `q kᵀ` GEMM's epilogue. Compiled once per
/// call, run once per (batch, head).
fn scores_plan(seq: usize, d: usize, scale: f32) -> CompiledPlan {
    let mut g = Graph::new();
    let gq = g.input(seq, d);
    let gk = g.input(seq, d);
    let s = g.matmul_nt(gq, gk);
    let ss = g.scale(s, scale);
    g.mark_output(ss);
    g.compile(FusePolicy::Forced(vec![s]))
        .expect("scores graph: scale always fuses")
}

/// Builds the `probs × v → context` per-head graph.
fn context_plan(seq: usize, d: usize) -> CompiledPlan {
    let mut g = Graph::new();
    let gp = g.input(seq, seq);
    let gv = g.input(seq, d);
    let c = g.matmul(gp, gv);
    g.mark_output(c);
    g.compile(FusePolicy::Auto).expect("context graph")
}

impl MultiHeadAttention {
    /// Creates an attention layer over `hidden` features with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(rng: &mut impl Rng, hidden: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden {hidden} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq: Linear::new(rng, hidden, hidden),
            wk: Linear::new(rng, hidden, hidden),
            wv: Linear::new(rng, hidden, hidden),
            wo: Linear::new(rng, hidden, hidden),
            heads,
            cache: None,
        }
    }

    /// Assembles an attention layer from existing projections (used when
    /// reassembling tensor-parallel shards into a serial checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the projections are not square and equal-sized, or
    /// `heads` does not divide the width.
    pub fn from_parts(wq: Linear, wk: Linear, wv: Linear, wo: Linear, heads: usize) -> Self {
        let h = wq.fan_in();
        for l in [&wq, &wk, &wv, &wo] {
            assert_eq!(l.fan_in(), h, "projection width mismatch");
            assert_eq!(l.fan_out(), h, "projection width mismatch");
        }
        assert!(
            heads > 0 && h.is_multiple_of(heads),
            "{h} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq,
            wk,
            wv,
            wo,
            heads,
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.wq.fan_in()
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden() / self.heads
    }

    /// Forward pass over `[batch·seq, hidden]` input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[batch·seq, hidden]`.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        workspace::with_thread_default(|ws| self.forward_ws(x, batch, seq, ws))
    }

    /// [`MultiHeadAttention::forward`] with caller-provided scratch: head
    /// blocks, score matrices and the context buffer are leased from `ws`
    /// and recycled as soon as each head is done.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[batch·seq, hidden]`.
    pub fn forward_ws(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        ws: &mut Workspace,
    ) -> Tensor {
        let h = self.hidden();
        assert_eq!(
            x.dims(),
            &[batch * seq, h],
            "attention input shape {} != [{}x{}]",
            x.shape(),
            batch * seq,
            h
        );
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let m = batch * seq;

        // One graph segment for all three projections; each GEMM fuses
        // its bias add into the epilogue.
        let mut g = Graph::new();
        let gx = g.input(m, h);
        let gwq = g.input(h, h);
        let gbq = g.input_vec(h);
        let gwk = g.input(h, h);
        let gbk = g.input_vec(h);
        let gwv = g.input(h, h);
        let gbv = g.input_vec(h);
        let yq = g.matmul(gx, gwq);
        let q = g.bias_add(yq, gbq);
        let yk = g.matmul(gx, gwk);
        let k = g.bias_add(yk, gbk);
        let yv = g.matmul(gx, gwv);
        let v = g.bias_add(yv, gbv);
        g.mark_output(q);
        g.mark_output(k);
        g.mark_output(v);
        let plan = g.compile(FusePolicy::Auto).expect("qkv graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                self.wq.weight.value.as_slice(),
                self.wq.bias.value.as_slice(),
                self.wk.weight.value.as_slice(),
                self.wk.bias.value.as_slice(),
                self.wv.weight.value.as_slice(),
                self.wv.bias.value.as_slice(),
            ],
            vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
            ws,
        );
        let q = Tensor::from_vec(res[0].take().expect("leased q"), [m, h]);
        let k = Tensor::from_vec(res[1].take().expect("leased k"), [m, h]);
        let v = Tensor::from_vec(res[2].take().expect("leased v"), [m, h]);

        let sc_plan = scores_plan(seq, d, scale);
        let cx_plan = context_plan(seq, d);
        let mut ctx = ws.lease_tensor([m, h]);
        let mut probs = Vec::with_capacity(batch * self.heads);
        for t in 0..batch {
            for hd in 0..self.heads {
                let qb = head_block_ws(&q, t, hd, seq, d, h, ws);
                let kb = head_block_ws(&k, t, hd, seq, d, h, ws);
                let vb = head_block_ws(&v, t, hd, seq, d, h, ws);
                let mut sres =
                    sc_plan.run(&[qb.as_slice(), kb.as_slice()], vec![OutBind::Lease], ws);
                let scores = Tensor::from_vec(sres[0].take().expect("leased scores"), [seq, seq]);
                let p = scores.softmax_rows();
                let mut cres =
                    cx_plan.run(&[p.as_slice(), vb.as_slice()], vec![OutBind::Lease], ws);
                let c = Tensor::from_vec(cres[0].take().expect("leased ctx"), [seq, d]);
                write_head_block(&mut ctx, &c, t, hd, seq, d, h);
                for tmp in [qb, kb, vb, scores, c] {
                    ws.recycle_tensor(tmp);
                }
                probs.push(p);
            }
        }
        let out = self.wo.forward_ws(&ctx, ws);
        ws.recycle_tensor(ctx);
        self.cache = Some(AttnCache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            batch,
            seq,
        });
        out
    }

    /// Backward pass; returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`MultiHeadAttention::forward`].
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.backward_ws(dy, ws))
    }

    /// [`MultiHeadAttention::backward`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`MultiHeadAttention::forward`].
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let AttnCache {
            x,
            q,
            k,
            v,
            probs,
            batch,
            seq,
        } = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward called without forward");
        let h = self.hidden();
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();
        let m = batch * seq;

        let dctx = self.wo.backward_ws(dy, ws);
        let mut dq = ws.lease_tensor([m, h]);
        let mut dk = ws.lease_tensor([m, h]);
        let mut dv = ws.lease_tensor([m, h]);

        // Per-head plans, compiled once and run per (batch, head):
        // c = p v  →  dp = dc vᵀ ; dv = pᵀ dc, then after the softmax
        // backward, s = α q kᵀ  →  dq = (α ds) k ; dk = (α ds)ᵀ q.
        let ctx_bwd = {
            let mut g = Graph::new();
            let gdc = g.input(seq, d);
            let gvb = g.input(seq, d);
            let gp = g.input(seq, seq);
            let dp = g.matmul_nt(gdc, gvb);
            let dvb = g.matmul_tn(gp, gdc);
            g.mark_output(dp);
            g.mark_output(dvb);
            g.compile(FusePolicy::Auto).expect("context backward graph")
        };
        let score_bwd = {
            let mut g = Graph::new();
            let gds = g.input(seq, seq);
            let gkb = g.input(seq, d);
            let gqb = g.input(seq, d);
            let dss = g.scale(gds, scale);
            let dqb = g.matmul(dss, gkb);
            let dkb = g.matmul_tn(dss, gqb);
            g.mark_output(dqb);
            g.mark_output(dkb);
            g.compile(FusePolicy::Auto).expect("scores backward graph")
        };

        for t in 0..batch {
            for hd in 0..self.heads {
                let p = &probs[t * self.heads + hd];
                let qb = head_block_ws(&q, t, hd, seq, d, h, ws);
                let kb = head_block_ws(&k, t, hd, seq, d, h, ws);
                let vb = head_block_ws(&v, t, hd, seq, d, h, ws);
                let dc = head_block_ws(&dctx, t, hd, seq, d, h, ws);

                let mut cres = ctx_bwd.run(
                    &[dc.as_slice(), vb.as_slice(), p.as_slice()],
                    vec![OutBind::Lease, OutBind::Lease],
                    ws,
                );
                let dp = Tensor::from_vec(cres[0].take().expect("leased dp"), [seq, seq]);
                let dvb = Tensor::from_vec(cres[1].take().expect("leased dvb"), [seq, d]);
                let ds = Tensor::softmax_rows_backward(p, &dp);
                let mut sres = score_bwd.run(
                    &[ds.as_slice(), kb.as_slice(), qb.as_slice()],
                    vec![OutBind::Lease, OutBind::Lease],
                    ws,
                );
                let dqb = Tensor::from_vec(sres[0].take().expect("leased dqb"), [seq, d]);
                let dkb = Tensor::from_vec(sres[1].take().expect("leased dkb"), [seq, d]);

                write_head_block(&mut dq, &dqb, t, hd, seq, d, h);
                write_head_block(&mut dk, &dkb, t, hd, seq, d, h);
                write_head_block(&mut dv, &dvb, t, hd, seq, d, h);
                for tmp in [qb, kb, vb, dc, dp, dvb, ds, dqb, dkb] {
                    ws.recycle_tensor(tmp);
                }
            }
        }
        ws.recycle_tensor(dctx);

        // One graph for all three projection backwards. The `dx` partial
        // sums fuse into the final `nt` GEMM's epilogue:
        // dx = dq Wqᵀ + dk Wkᵀ + dv Wvᵀ, accumulated per register tile.
        let mut g = Graph::new();
        let gx = g.input(m, h);
        let gdq = g.input(m, h);
        let gdk = g.input(m, h);
        let gdv = g.input(m, h);
        let gwq = g.input(h, h);
        let gwk = g.input(h, h);
        let gwv = g.input(h, h);
        let dwq = g.matmul_tn(gx, gdq);
        let dbq = g.sum_axis0(gdq);
        let dwk = g.matmul_tn(gx, gdk);
        let dbk = g.sum_axis0(gdk);
        let dwv = g.matmul_tn(gx, gdv);
        let dbv = g.sum_axis0(gdv);
        let dxk = g.matmul_nt(gdk, gwk);
        let dxv = g.matmul_nt(gdv, gwv);
        let dxq = g.matmul_nt(gdq, gwq);
        let t1 = g.residual_add(dxq, dxk);
        let dx = g.residual_add(t1, dxv);
        g.mark_output(dwq);
        g.mark_output(dbq);
        g.mark_output(dwk);
        g.mark_output(dbk);
        g.mark_output(dwv);
        g.mark_output(dbv);
        g.mark_output(dx);
        let plan = g.compile(FusePolicy::Auto).expect("qkv backward graph");
        let mut res = plan.run(
            &[
                x.as_slice(),
                dq.as_slice(),
                dk.as_slice(),
                dv.as_slice(),
                self.wq.weight.value.as_slice(),
                self.wk.weight.value.as_slice(),
                self.wv.weight.value.as_slice(),
            ],
            vec![
                OutBind::Acc(self.wq.weight.grad.as_mut_slice()),
                OutBind::Acc(self.wq.bias.grad.as_mut_slice()),
                OutBind::Acc(self.wk.weight.grad.as_mut_slice()),
                OutBind::Acc(self.wk.bias.grad.as_mut_slice()),
                OutBind::Acc(self.wv.weight.grad.as_mut_slice()),
                OutBind::Acc(self.wv.bias.grad.as_mut_slice()),
                OutBind::Lease,
            ],
            ws,
        );
        let dx = Tensor::from_vec(res[6].take().expect("leased dx"), [m, h]);
        for tmp in [x, q, k, v, dq, dk, dv] {
            ws.recycle_tensor(tmp);
        }
        dx
    }

    /// Visits all projection parameters (q, k, v, o order).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// Extracts the `[seq, d]` block of head `hd`, batch item `t` from a
/// `[batch·seq, h]` tensor.
#[cfg(test)]
fn head_block(x: &Tensor, t: usize, hd: usize, seq: usize, d: usize, h: usize) -> Tensor {
    let mut ws = Workspace::new();
    head_block_ws(x, t, hd, seq, d, h, &mut ws)
}

/// [`head_block`] into a buffer leased from `ws`.
fn head_block_ws(
    x: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    h: usize,
    ws: &mut Workspace,
) -> Tensor {
    let mut out = ws.lease(seq * d);
    let base_col = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * h + base_col;
        out[r * d..(r + 1) * d].copy_from_slice(&x.as_slice()[row..row + d]);
    }
    Tensor::from_vec(out, [seq, d])
}

/// Writes a `[seq, d]` block back into a `[batch·seq, h]` tensor.
fn write_head_block(
    out: &mut Tensor,
    block: &Tensor,
    t: usize,
    hd: usize,
    seq: usize,
    d: usize,
    h: usize,
) {
    let base_col = hd * d;
    for r in 0..seq {
        let row = (t * seq + r) * h + base_col;
        out.as_mut_slice()[row..row + d].copy_from_slice(&block.as_slice()[r * d..(r + 1) * d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn head_block_round_trip() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), [4, 6]);
        // batch 2, seq 2, heads 3, d 2, h 6
        let b = head_block(&x, 1, 2, 2, 2, 6);
        assert_eq!(b.as_slice(), &[16.0, 17.0, 22.0, 23.0]);
        let mut y = Tensor::zeros([4, 6]);
        write_head_block(&mut y, &b, 1, 2, 2, 2, 6);
        assert_eq!(y.at(&[2, 4]), 16.0);
        assert_eq!(y.at(&[3, 5]), 23.0);
    }

    #[test]
    fn output_shape_and_determinism() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::randn(&mut rng, [6, 8], 1.0);
        let y1 = attn.forward(&x, 2, 3);
        let y2 = attn.forward(&x, 2, 3);
        assert_eq!(y1, y2);
        assert_eq!(y1.dims(), &[6, 8]);
        assert!(y1.all_finite());
    }

    #[test]
    fn uniform_rows_attend_uniformly() {
        // With identical tokens, attention is an average: output rows equal.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let row = init::randn(&mut rng, [1, 8], 1.0);
        let x = Tensor::concat_rows(&[&row, &row, &row]);
        let y = attn.forward(&x, 1, 3);
        let r0 = y.slice_rows(0, 1);
        let r1 = y.slice_rows(1, 2);
        let r2 = y.slice_rows(2, 3);
        assert!(r0.max_abs_diff(&r1) < 1e-5);
        assert!(r1.max_abs_diff(&r2) < 1e-5);
    }

    /// Full finite-difference check of input gradients through attention.
    #[test]
    fn input_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(&mut rng, 6, 2);
        let x = init::randn(&mut rng, [4, 6], 0.8); // batch 2, seq 2
        let y = attn.forward(&x, 2, 2);
        let dy = init::randn(&mut rng, y.shape().clone(), 1.0);
        let _ = attn.forward(&x, 2, 2);
        let dx = attn.backward(&dy);

        let eps = 1e-2;
        for j in 0..x.len() {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let lp = attn.forward(&xp, 2, 2).mul(&dy).sum();
            let lm = attn.forward(&xm, 2, 2).mul(&dy).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert_close(dx[j], fd, 3e-2, &format!("attn dx[{j}]"));
        }
    }

    /// Finite-difference check of a sample of parameter gradients.
    #[test]
    fn param_gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 6, 2);
        let x = init::randn(&mut rng, [4, 6], 0.8);
        let y = attn.forward(&x, 2, 2);
        let dy = init::randn(&mut rng, y.shape().clone(), 1.0);

        attn.visit_params(&mut |p| p.zero_grad());
        let _ = attn.forward(&x, 2, 2);
        let _ = attn.backward(&dy);
        let mut grads = Vec::new();
        attn.visit_params(&mut |p| grads.push(p.grad.clone()));

        fn bump(attn: &mut MultiHeadAttention, t: usize, j: usize, delta: f32) {
            let mut idx = 0;
            attn.visit_params(&mut |p| {
                if idx == t {
                    p.value[j] += delta;
                }
                idx += 1;
            });
        }

        let eps = 1e-2;
        for (t, grad) in grads.iter().enumerate() {
            // Check a handful of entries per tensor to keep runtime modest.
            let stride = (grad.len() / 4).max(1);
            for j in (0..grad.len()).step_by(stride) {
                bump(&mut attn, t, j, eps);
                let lp = attn.forward(&x, 2, 2).mul(&dy).sum();
                bump(&mut attn, t, j, -2.0 * eps);
                let lm = attn.forward(&x, 2, 2).mul(&dy).sum();
                bump(&mut attn, t, j, eps);
                let fd = (lp - lm) / (2.0 * eps);
                assert_close(grad[j], fd, 3e-2, &format!("attn param {t}[{j}]"));
            }
        }
    }
}
