//! Token and position embeddings.

use crate::Parameter;
use actcomp_tensor::{init, Tensor};
use rand::Rng;

/// A lookup table mapping token ids to dense vectors, with a scatter-add
/// backward pass.
///
/// Unlike [`crate::Layer`] implementations, the forward input is a slice of
/// token ids rather than a tensor, so `Embedding` exposes inherent methods.
///
/// # Examples
///
/// ```
/// use actcomp_nn::Embedding;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut emb = Embedding::new(&mut rng, 10, 4);
/// let out = emb.forward(&[1, 2, 1]);
/// assert_eq!(out.dims(), &[3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The `[vocab, dim]` table.
    pub table: Parameter,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a table of shape `[vocab, dim]` with `N(0, 0.02²)` entries
    /// (the BERT/Megatron initialization).
    pub fn new(rng: &mut impl Rng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Parameter::new(init::randn(rng, [vocab, dim], 0.02)),
            cache_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.dims()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.dims()[1]
    }

    /// Gathers rows for `ids`, returning `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let out = self.forward_cached(ids);
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Gathers rows for `ids` without storing backward state; pair with
    /// [`Embedding::backward_ids`] when several lookups are in flight
    /// (e.g. one per pipeline micro-batch).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward_cached(&self, ids: &[usize]) -> Tensor {
        let (v, d) = (self.vocab(), self.dim());
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < v, "token id {id} out of vocabulary (size {v})");
            out.extend_from_slice(&self.table.value.as_slice()[id * d..(id + 1) * d]);
        }
        Tensor::from_vec(out, [ids.len(), d])
    }

    /// Scatter-adds `dy` rows into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Embedding::forward`] or if
    /// `dy` has the wrong shape.
    pub fn backward(&mut self, dy: &Tensor) {
        let ids = self
            .cache_ids
            .take()
            .expect("Embedding::backward called without forward");
        self.backward_ids(&ids, dy);
    }

    /// Scatter-adds `dy` rows into the table gradient for an explicit id
    /// list (the caller-held counterpart of [`Embedding::backward`]).
    ///
    /// # Panics
    ///
    /// Panics if `dy` has the wrong shape.
    pub fn backward_ids(&mut self, ids: &[usize], dy: &Tensor) {
        let d = self.dim();
        assert_eq!(dy.dims(), &[ids.len(), d], "embedding dy shape mismatch");
        let grad = self.table.grad.as_mut_slice();
        for (row, &id) in ids.iter().enumerate() {
            for j in 0..d {
                grad[id * d + j] += dy.as_slice()[row * d + j];
            }
        }
    }

    /// Visits the embedding table parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gathers_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut emb = Embedding::new(&mut rng, 5, 3);
        let out = emb.forward(&[4, 0]);
        assert_eq!(&out.as_slice()[..3], &emb.table.value.as_slice()[12..15]);
        assert_eq!(&out.as_slice()[3..], &emb.table.value.as_slice()[..3]);
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut emb = Embedding::new(&mut rng, 4, 2);
        emb.forward(&[1, 1, 2]);
        let dy = Tensor::ones([3, 2]);
        emb.backward(&dy);
        let g = emb.table.grad.as_slice();
        assert_eq!(&g[2..4], &[2.0, 2.0]); // id 1 appears twice
        assert_eq!(&g[4..6], &[1.0, 1.0]); // id 2 once
        assert_eq!(&g[0..2], &[0.0, 0.0]); // id 0 never
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_oov() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        Embedding::new(&mut rng, 3, 2).forward(&[3]);
    }
}
