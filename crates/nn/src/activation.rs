//! Elementwise activation layers.

use crate::{Layer, Parameter};
use actcomp_tensor::{ops, Tensor};

/// GELU activation layer (tanh approximation), caching its input.
///
/// # Examples
///
/// ```
/// use actcomp_nn::{Gelu, Layer};
/// use actcomp_tensor::Tensor;
///
/// let mut g = Gelu::new();
/// let y = g.forward(&Tensor::from_vec(vec![-2.0, 0.0, 2.0], [1, 3]));
/// assert!(y[1].abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_x: Option<Tensor>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Gelu { cache_x: None }
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.gelu()
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Gelu::backward called without forward");
        x.map(ops::gelu_grad).mul(dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

/// ReLU activation layer, caching its input sign pattern.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache_x: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cache_x: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Relu::backward called without forward");
        x.zip_with(dy, |xv, d| if xv > 0.0 { d } else { 0.0 })
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

/// Tanh activation layer, caching its output.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cache_y: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { cache_y: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(f32::tanh);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self
            .cache_y
            .take()
            .expect("Tanh::backward called without forward");
        y.zip_with(dy, |yv, d| (1.0 - yv * yv) * d)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::grad_check_layer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gelu_grad_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        grad_check_layer(Gelu::new(), [3, 5], 2e-2, &mut rng);
    }

    #[test]
    fn relu_forward_and_grad() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![-1.0, 2.0], [1, 2]));
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::ones([1, 2]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_grad_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        grad_check_layer(Tanh::new(), [2, 4], 2e-2, &mut rng);
    }
}
