//! End-to-end learning test: a tiny BERT encoder + classifier head must fit
//! a simple planted-pattern task far above chance.

use actcomp_nn::{loss, optim, optim::Adam, BertConfig, BertEncoder, ClassifierHead};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Label = whether token `7` appears in the sequence.
fn make_batch(
    rng: &mut ChaCha8Rng,
    batch: usize,
    seq: usize,
    vocab: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut ids = Vec::with_capacity(batch * seq);
    let mut labels = Vec::with_capacity(batch);
    for _ in 0..batch {
        let positive = rng.gen_bool(0.5);
        let mut row: Vec<usize> = (0..seq).map(|_| rng.gen_range(8..vocab)).collect();
        if positive {
            let pos = rng.gen_range(1..seq);
            row[pos] = 7;
        }
        labels.push(positive as usize);
        ids.extend(row);
    }
    (ids, labels)
}

#[test]
fn tiny_bert_learns_token_detection() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let cfg = BertConfig {
        vocab: 32,
        hidden: 32,
        layers: 2,
        heads: 2,
        ff_hidden: 64,
        max_seq: 8,
    };
    let mut model = BertEncoder::new(&mut rng, cfg.clone());
    let mut head = ClassifierHead::new(&mut rng, cfg.hidden, 2, 0.0, 0);
    let mut opt = Adam::new(3e-3);

    let (batch, seq) = (16, 8);
    let mut last_loss = f32::INFINITY;
    for step in 0..120 {
        let (ids, labels) = make_batch(&mut rng, batch, seq, cfg.vocab);
        let hidden = model.forward(&ids, batch, seq);
        let logits = head.forward(&hidden, batch, seq);
        let (l, dlogits) = loss::softmax_cross_entropy(&logits, &labels);
        model.zero_grad();
        head.visit_params(&mut |p| p.zero_grad());
        let dhidden = head.backward(&dlogits);
        model.backward(&dhidden);
        opt.begin_step();
        optim::step(&mut opt, |f| {
            model.visit_params(f);
            head.visit_params(f);
        });
        if step >= 110 {
            last_loss = last_loss.min(l);
        }
    }
    assert!(
        last_loss < 0.35,
        "model failed to learn: final loss {last_loss}"
    );

    // Held-out accuracy well above chance.
    let (ids, labels) = make_batch(&mut rng, 64, seq, cfg.vocab);
    let hidden = model.forward(&ids, 64, seq);
    let logits = head.forward(&hidden, 64, seq);
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    assert!(correct >= 52, "held-out accuracy too low: {correct}/64");
}
