//! The wire format: length-prefixed, CRC-trailed frames and the
//! connection handshake.
//!
//! Every frame carries a CRC32 trailer over its header and payload, so
//! wire corruption surfaces as a typed [`FrameError::Corrupt`] instead
//! of a garbage decode downstream. The header is validated *before*
//! any allocation: a hostile length prefix (over the 1 GiB cap) or a
//! frame on the reserved channel 0 is rejected without trusting it.

use crate::error::TransportError;
use std::io::{Read, Write};

/// The reserved handshake channel; application channels must be below
/// this.
pub const HS_CHAN: u16 = u16::MAX;

/// The reserved control-plane channel (launcher ↔ worker frames).
pub(crate) const CTRL_CHAN: u16 = u16::MAX - 1;

/// Wire protocol version carried in every handshake. Version 2 added
/// the CRC32 frame trailer and the generation `epoch` to the
/// handshake.
pub const PROTOCOL_VERSION: u16 = 2;

/// `"ACNT"` — first bytes of every handshake payload.
const MAGIC: u32 = 0x4143_4E54;

/// Upper bound on a frame payload (1 GiB): anything larger is treated
/// as stream corruption rather than an allocation request.
const MAX_FRAME: usize = 1 << 30;

/// Bytes a frame adds around its payload: 6-byte header + 4-byte CRC
/// trailer.
pub const FRAME_OVERHEAD: usize = 10;

/// IEEE CRC32 (reflected, polynomial `0xEDB88320`) over `bytes`,
/// continuing from `seed` (start with `0` for a fresh checksum).
///
/// Public so checkpoint shards can reuse the exact wire checksum.
pub fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What can go wrong reading a frame: a plain I/O failure, or a frame
/// that fails validation (bad CRC, hostile length, reserved channel).
/// The distinction matters because corruption poisons the *stream*
/// (frame alignment is lost), not just the frame.
#[derive(Debug)]
pub(crate) enum FrameError {
    /// The underlying read failed (EOF, reset, timeout, …).
    Io(std::io::Error),
    /// The frame failed an integrity check; `what` says which.
    Corrupt(String),
}

impl FrameError {
    /// Converts into the public error type, tagging I/O failures with
    /// `context`.
    pub(crate) fn into_transport(self, context: &str) -> TransportError {
        match self {
            FrameError::Io(e) => TransportError::io(context, &e),
            FrameError::Corrupt(what) => TransportError::FrameCorrupt { what },
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one `[chan u16 LE][len u32 LE][payload][crc32 u32 LE]`
/// frame. The CRC covers the header and the payload.
pub(crate) fn write_frame(w: &mut impl Write, chan: u16, payload: &[u8]) -> std::io::Result<()> {
    write_frame_with(w, chan, payload, 0)
}

/// Like [`write_frame`] but XORs `crc_flip` into the trailer — the
/// fault-injection hook that makes a receiver's CRC check fail
/// deterministically (pass `0` for an honest frame).
pub(crate) fn write_frame_with(
    w: &mut impl Write,
    chan: u16,
    payload: &[u8],
    crc_flip: u32,
) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    let mut hdr = [0u8; 6];
    hdr[..2].copy_from_slice(&chan.to_le_bytes());
    hdr[2..].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(crc32(0, &hdr), payload) ^ crc_flip;
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    w.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Reads one frame, returning `(chan, payload)`.
///
/// Hostile headers are rejected *before* the payload allocation: a
/// length over the 1 GiB cap or a frame on the reserved channel 0
/// (no honest sender emits either) is [`FrameError::Corrupt`]. A CRC
/// trailer mismatch is equally `Corrupt` — the payload bytes are
/// discarded, never handed to a decoder.
pub(crate) fn read_frame(r: &mut impl Read) -> Result<(u16, Vec<u8>), FrameError> {
    let mut hdr = [0u8; 6];
    r.read_exact(&mut hdr)?;
    let chan = u16::from_le_bytes([hdr[0], hdr[1]]);
    let len = u32::from_le_bytes([hdr[2], hdr[3], hdr[4], hdr[5]]) as usize;
    if chan == 0 {
        return Err(FrameError::Corrupt(
            "frame on reserved channel 0 (corrupt or hostile header)".to_string(),
        ));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Corrupt(format!(
            "frame length {len} exceeds the 1 GiB cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = u32::from_le_bytes(trailer);
    let got = crc32(crc32(0, &hdr), &payload);
    if want != got {
        return Err(FrameError::Corrupt(format!(
            "CRC mismatch on channel {chan} ({len} bytes): computed {got:#010x}, trailer {want:#010x}"
        )));
    }
    Ok((chan, payload))
}

/// The first frame on every data connection: proves both ends belong
/// to the same run — and the same *generation* of it — before any
/// application frame moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Total ranks the connecting side believes are in the run.
    pub world: u32,
    /// The connecting side's rank.
    pub from: u32,
    /// Hash of the run configuration (computed by the launcher); both
    /// ends must agree.
    pub config_hash: u64,
    /// Restart generation of the run. The launcher bumps it on every
    /// recovery, so a stale worker from a fenced-off generation is
    /// rejected at handshake instead of feeding old frames into the
    /// new run.
    pub epoch: u32,
}

impl Handshake {
    /// Serializes to the fixed 26-byte handshake payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out
    }

    /// Parses and validates a handshake payload: magic and version
    /// must match this build; `world`/`config_hash`/`from`/`epoch` are
    /// returned for the acceptor to check against its own run.
    pub fn decode(buf: &[u8]) -> Result<Handshake, TransportError> {
        if buf.len() != 26 {
            return Err(TransportError::BadFrame {
                what: format!("handshake payload of {} bytes (expected 26)", buf.len()),
            });
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != MAGIC {
            return Err(TransportError::HandshakeMismatch {
                field: "magic",
                ours: u64::from(MAGIC),
                theirs: u64::from(magic),
            });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != PROTOCOL_VERSION {
            return Err(TransportError::HandshakeMismatch {
                field: "version",
                ours: u64::from(PROTOCOL_VERSION),
                theirs: u64::from(version),
            });
        }
        let world = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
        let from = u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]]);
        let config_hash = u64::from_le_bytes([
            buf[14], buf[15], buf[16], buf[17], buf[18], buf[19], buf[20], buf[21],
        ]);
        let epoch = u32::from_le_bytes([buf[22], buf[23], buf[24], buf[25]]);
        Ok(Handshake {
            world,
            from,
            config_hash,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(0, b""), 0);
        // Incremental == one-shot.
        assert_eq!(crc32(crc32(0, b"1234"), b"56789"), 0xCBF4_3926);
    }

    #[test]
    fn handshake_roundtrips() {
        let hs = Handshake {
            world: 4,
            from: 2,
            config_hash: 0xDEAD_BEEF_CAFE_F00D,
            epoch: 3,
        };
        let enc = hs.encode();
        assert_eq!(enc.len(), 26);
        assert_eq!(Handshake::decode(&enc).expect("decode"), hs);
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let hs = Handshake {
            world: 1,
            from: 0,
            config_hash: 1,
            epoch: 0,
        };
        let mut enc = hs.encode();
        enc[0] ^= 0xFF;
        assert!(matches!(
            Handshake::decode(&enc),
            Err(TransportError::HandshakeMismatch { field: "magic", .. })
        ));
        let mut enc = hs.encode();
        enc[4] ^= 0xFF;
        assert!(matches!(
            Handshake::decode(&enc),
            Err(TransportError::HandshakeMismatch {
                field: "version",
                ..
            })
        ));
        assert!(Handshake::decode(&enc[..10]).is_err());
    }

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").expect("write");
        write_frame(&mut buf, 9, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read"), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).expect("read"), (9, Vec::new()));
    }

    #[test]
    fn a_flipped_payload_bit_is_caught_by_the_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello world").expect("write");
        // Flip one payload bit; the trailer no longer matches.
        buf[8] ^= 0x01;
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Corrupt(what)) => assert!(what.contains("CRC"), "{what}"),
            other => panic!("expected a CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn a_deliberately_miswritten_trailer_is_caught() {
        let mut buf = Vec::new();
        write_frame_with(&mut buf, 3, b"payload", 0xFFFF_FFFF).expect("write");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        // chan 1, len = u32::MAX: an honest peer never sends this; the
        // reader must refuse without attempting a 4 GiB allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Corrupt(what)) => assert!(what.contains("1 GiB"), "{what}"),
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_channel_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(b"data");
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Corrupt(what)) => assert!(what.contains("channel 0"), "{what}"),
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn truncated_streams_surface_as_io_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, 5, b"truncate me").expect("write");
        // Every strict prefix must fail as EOF (I/O), never panic and
        // never return a partial frame.
        for cut in 0..full.len() {
            let mut r = &full[..cut];
            match read_frame(&mut r) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}")
                }
                other => panic!("cut {cut}: expected EOF, got {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_headers_never_decode_to_a_frame() {
        // Fuzz-style sweep over deterministic pseudo-random byte soups:
        // whatever the header claims, the reader must end in a typed
        // error (corrupt or EOF), not a successful decode of garbage.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            let mut buf = vec![0u8; 32];
            for b in buf.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 33) as u8;
            }
            let mut r = &buf[..];
            assert!(read_frame(&mut r).is_err(), "garbage decoded: {buf:?}");
        }
    }
}
