//! The wire format: length-prefixed frames and the connection
//! handshake.

use crate::error::TransportError;
use std::io::{Read, Write};

/// The reserved handshake channel; application channels must be below
/// this.
pub const HS_CHAN: u16 = u16::MAX;

/// Wire protocol version carried in every handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// `"ACNT"` — first bytes of every handshake payload.
const MAGIC: u32 = 0x4143_4E54;

/// Upper bound on a frame payload (1 GiB): anything larger is treated
/// as stream corruption rather than an allocation request.
const MAX_FRAME: usize = 1 << 30;

/// Writes one `[chan u16 LE][len u32 LE][payload]` frame.
pub(crate) fn write_frame(w: &mut impl Write, chan: u16, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    w.write_all(&chan.to_le_bytes())?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, returning `(chan, payload)`.
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<(u16, Vec<u8>)> {
    let mut hdr = [0u8; 6];
    r.read_exact(&mut hdr)?;
    let chan = u16::from_le_bytes([hdr[0], hdr[1]]);
    let len = u32::from_le_bytes([hdr[2], hdr[3], hdr[4], hdr[5]]) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the 1 GiB cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((chan, payload))
}

/// The first frame on every data connection: proves both ends belong
/// to the same run before any application frame moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Total ranks the connecting side believes are in the run.
    pub world: u32,
    /// The connecting side's rank.
    pub from: u32,
    /// Hash of the run configuration (computed by the launcher); both
    /// ends must agree.
    pub config_hash: u64,
}

impl Handshake {
    /// Serializes to the fixed 22-byte handshake payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(22);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out
    }

    /// Parses and validates a handshake payload: magic and version
    /// must match this build; `world`/`config_hash`/`from` are
    /// returned for the acceptor to check against its own run.
    pub fn decode(buf: &[u8]) -> Result<Handshake, TransportError> {
        if buf.len() != 22 {
            return Err(TransportError::BadFrame {
                what: format!("handshake payload of {} bytes (expected 22)", buf.len()),
            });
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != MAGIC {
            return Err(TransportError::HandshakeMismatch {
                field: "magic",
                ours: u64::from(MAGIC),
                theirs: u64::from(magic),
            });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != PROTOCOL_VERSION {
            return Err(TransportError::HandshakeMismatch {
                field: "version",
                ours: u64::from(PROTOCOL_VERSION),
                theirs: u64::from(version),
            });
        }
        let world = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
        let from = u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]]);
        let config_hash = u64::from_le_bytes([
            buf[14], buf[15], buf[16], buf[17], buf[18], buf[19], buf[20], buf[21],
        ]);
        Ok(Handshake {
            world,
            from,
            config_hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrips() {
        let hs = Handshake {
            world: 4,
            from: 2,
            config_hash: 0xDEAD_BEEF_CAFE_F00D,
        };
        let enc = hs.encode();
        assert_eq!(enc.len(), 22);
        assert_eq!(Handshake::decode(&enc).expect("decode"), hs);
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let hs = Handshake {
            world: 1,
            from: 0,
            config_hash: 1,
        };
        let mut enc = hs.encode();
        enc[0] ^= 0xFF;
        assert!(matches!(
            Handshake::decode(&enc),
            Err(TransportError::HandshakeMismatch { field: "magic", .. })
        ));
        let mut enc = hs.encode();
        enc[4] ^= 0xFF;
        assert!(matches!(
            Handshake::decode(&enc),
            Err(TransportError::HandshakeMismatch {
                field: "version",
                ..
            })
        ));
        assert!(Handshake::decode(&enc[..10]).is_err());
    }

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").expect("write");
        write_frame(&mut buf, 9, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read"), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).expect("read"), (9, Vec::new()));
    }
}
