//! A blocking token-bucket bandwidth shaper for the TCP send path.

use std::time::{Duration, Instant};

/// A token bucket metering bytes at a fixed rate.
///
/// Callers debit the bytes they are about to write; the bucket answers
/// with how long to sleep before the write keeps the long-run rate at
/// or under the target. Tokens accrue continuously and may burst up to
/// one bucket's capacity, so small frames are not latency-taxed while
/// sustained traffic converges to the configured bandwidth.
#[derive(Debug)]
pub struct TokenBucket {
    /// Bytes per second.
    rate: f64,
    /// Maximum accumulated burst, in bytes.
    capacity: f64,
    /// Current balance; negative means the next write must wait.
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket metering `rate` bytes per second, with a burst
    /// capacity of ~10 ms of traffic (at least 64 KiB).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive — the CLI validates
    /// `--link-mbps` (`AC0703`) before a bucket is built.
    pub fn new(rate: f64) -> TokenBucket {
        assert!(
            rate.is_finite() && rate > 0.0,
            "token bucket rate must be positive"
        );
        let capacity = (rate * 0.01).max(64.0 * 1024.0);
        TokenBucket {
            rate,
            capacity,
            tokens: capacity,
            last: Instant::now(),
        }
    }

    /// A bucket for a `--link-mbps` setting (megabits per second).
    pub fn from_mbps(mbps: f64) -> TokenBucket {
        TokenBucket::new(mbps * 1e6 / 8.0)
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Debits `bytes` and returns how long the caller must sleep
    /// before writing them (zero when the burst allowance covers it).
    /// The debt is recorded either way, so calling this and then
    /// sleeping the returned duration paces a stream of writes at the
    /// configured rate.
    pub fn debit(&mut self, bytes: usize) -> Duration {
        let now = Instant::now();
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate)
            .min(self.capacity);
        self.last = now;
        self.tokens -= bytes as f64;
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(-self.tokens / self.rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_traffic_is_paced_at_the_rate() {
        // 10 MB/s; debit 2 MiB without sleeping and check the final
        // prescribed sleep covers the whole deficit at the rate.
        // (`debit` returns the cumulative outstanding debt — a caller
        // that sleeps it off between writes is paced at the rate.)
        let mut b = TokenBucket::new(10e6);
        let mut wait = Duration::ZERO;
        for _ in 0..16 {
            wait = b.debit(128 * 1024);
        }
        let bytes = 16.0 * 128.0 * 1024.0;
        let expect = (bytes - b.capacity) / 10e6;
        let got = wait.as_secs_f64();
        assert!(
            (got - expect).abs() < 0.25 * expect,
            "final wait {got:.4}s, expected ~{expect:.4}s"
        );
    }

    #[test]
    fn small_bursts_ride_the_allowance() {
        let mut b = TokenBucket::new(1e6);
        assert_eq!(b.debit(1024), Duration::ZERO);
    }

    #[test]
    fn mbps_conversion_is_bits_not_bytes() {
        let b = TokenBucket::from_mbps(80.0);
        assert!((b.rate() - 10e6).abs() < 1.0);
    }
}
