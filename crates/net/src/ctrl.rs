//! Control-plane connections for the process-mode launcher: a plain
//! framed byte stream with accept/receive timeouts.
//!
//! The launcher binds a [`CtrlListener`]; each worker dials back with
//! [`CtrlConn::connect`]. Frames use the same CRC-trailed
//! `[chan][len][payload][crc]` format as the data plane (on the
//! reserved control channel), so the wire format has a single
//! definition. Receives take an explicit timeout; a timeout is
//! *fatal for the connection* (a partially-read frame cannot be
//! resynchronized), which matches how the launcher uses it: any
//! control-plane timeout aborts the run with a typed error.

use crate::error::TransportError;
use crate::frame::{read_frame, write_frame, FrameError, CTRL_CHAN};
use crate::socket::ctrl_stream::{CtrlListenerInner, CtrlStream};
use crate::TransportKind;
use std::io::Write;
use std::time::{Duration, Instant};

/// The listening side of the control plane (held by the launcher).
pub struct CtrlListener {
    inner: CtrlListenerInner,
    addr: String,
}

impl CtrlListener {
    /// Binds a control listener for `kind` (ephemeral loopback port
    /// for TCP, fresh temp socket file for UDS) and returns it with
    /// its address.
    pub fn bind(kind: TransportKind) -> Result<CtrlListener, TransportError> {
        let (inner, addr) = CtrlListenerInner::bind(kind)?;
        Ok(CtrlListener { inner, addr })
    }

    /// The address workers dial.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Accepts one worker connection, or times out.
    pub fn accept(&self, timeout: Duration) -> Result<CtrlConn, TransportError> {
        let stream = self.inner.accept(timeout)?;
        Ok(CtrlConn { stream })
    }
}

/// One established control connection (either side).
pub struct CtrlConn {
    stream: CtrlStream,
}

impl CtrlConn {
    /// Dials the launcher's control listener, retrying until `timeout`
    /// while the listener comes up.
    pub fn connect(
        kind: TransportKind,
        addr: &str,
        timeout: Duration,
    ) -> Result<CtrlConn, TransportError> {
        let stream = CtrlStream::connect(kind, addr, timeout)?;
        Ok(CtrlConn { stream })
    }

    /// Ships one control frame.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.stream
            .with_write(|w| write_frame(w, CTRL_CHAN, payload).and_then(|()| w.flush()))
            .map_err(|e| map_conn_err(e, "sending a control frame"))
    }

    /// Receives the next control frame, or times out. A timeout leaves
    /// the stream unusable (callers abort the run).
    pub fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| TransportError::io("arming a control read timeout", &e))?;
        let deadline = Instant::now() + timeout;
        let res = self.stream.with_read(read_frame);
        match res {
            Ok((_, payload)) => Ok(payload),
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let _ = deadline;
                Err(TransportError::Timeout {
                    what: "a control frame".to_string(),
                    after: timeout,
                })
            }
            Err(FrameError::Io(e)) => Err(map_conn_err(e, "receiving a control frame")),
            Err(corrupt) => Err(corrupt.into_transport("receiving a control frame")),
        }
    }

    /// Receives the next control frame with no deadline — the worker
    /// side of the command loop, which legitimately idles between
    /// launcher commands. A closed peer still surfaces as a typed
    /// [`TransportError::PeerClosed`].
    pub fn recv_blocking(&mut self) -> Result<Vec<u8>, TransportError> {
        self.stream
            .set_read_timeout(None)
            .map_err(|e| TransportError::io("clearing a control read timeout", &e))?;
        match self.stream.with_read(read_frame) {
            Ok((_, payload)) => Ok(payload),
            Err(FrameError::Io(e)) => Err(map_conn_err(e, "receiving a control frame")),
            Err(corrupt) => Err(corrupt.into_transport("receiving a control frame")),
        }
    }
}

fn map_conn_err(e: std::io::Error, what: &str) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::UnexpectedEof => TransportError::PeerClosed {
            rank: None,
            what: what.to_string(),
        },
        _ => TransportError::io(what, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: TransportKind) {
        let listener = CtrlListener::bind(kind).expect("bind");
        let addr = listener.addr().to_string();
        let dial = std::thread::spawn(move || {
            let mut c = CtrlConn::connect(kind, &addr, Duration::from_secs(5)).expect("connect");
            c.send(b"hello from worker").expect("send");
            c.recv(Duration::from_secs(5)).expect("reply")
        });
        let mut server = listener.accept(Duration::from_secs(5)).expect("accept");
        let got = server.recv(Duration::from_secs(5)).expect("frame");
        assert_eq!(got, b"hello from worker");
        server.send(b"ack").expect("reply");
        assert_eq!(dial.join().expect("worker thread"), b"ack");
    }

    #[test]
    fn tcp_control_roundtrip() {
        roundtrip(TransportKind::Tcp);
    }

    #[cfg(unix)]
    #[test]
    fn uds_control_roundtrip() {
        roundtrip(TransportKind::Uds);
    }

    #[test]
    fn accept_times_out_without_a_dialer() {
        let listener = CtrlListener::bind(TransportKind::Tcp).expect("bind");
        assert!(matches!(
            listener.accept(Duration::from_millis(30)),
            Err(TransportError::Timeout { .. })
        ));
    }

    #[test]
    fn recv_times_out_and_peer_close_is_typed() {
        let listener = CtrlListener::bind(TransportKind::Tcp).expect("bind");
        let addr = listener.addr().to_string();
        let dial = std::thread::spawn(move || {
            let c = CtrlConn::connect(TransportKind::Tcp, &addr, Duration::from_secs(5))
                .expect("connect");
            std::thread::sleep(Duration::from_millis(60));
            drop(c);
        });
        let mut server = listener.accept(Duration::from_secs(5)).expect("accept");
        assert!(matches!(
            server.recv(Duration::from_millis(20)),
            Err(TransportError::Timeout { .. })
        ));
        dial.join().expect("dialer");
        let err = server.recv(Duration::from_secs(5)).expect_err("closed");
        assert!(err.is_peer_closed(), "got {err:?}");
    }
}
