//! Typed errors for every user-reachable transport path.

use std::time::Duration;

/// Anything that can go wrong connecting, handshaking, or moving
/// frames. All I/O failures are converted into this type — the
/// transport layer never panics on a socket error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// An OS-level I/O failure, with the operation that hit it.
    Io {
        /// What the transport was doing (e.g. `"bind 127.0.0.1:0"`).
        context: String,
        /// The rendered `std::io::Error`.
        error: String,
    },
    /// The two ends of a handshake disagree on a run parameter.
    HandshakeMismatch {
        /// Which field disagreed (`"magic"`, `"version"`, `"world"`,
        /// `"config_hash"`, `"rank"`).
        field: &'static str,
        /// This side's value.
        ours: u64,
        /// The peer's value.
        theirs: u64,
    },
    /// The acceptor refused the connection.
    HandshakeRejected {
        /// The acceptor's rendered reason.
        reason: String,
    },
    /// An operation did not complete within its deadline.
    Timeout {
        /// What timed out (e.g. `"connect to rank 2"`).
        what: String,
        /// The deadline that elapsed.
        after: Duration,
    },
    /// The peer's connection is gone (process exited, socket closed).
    PeerClosed {
        /// The peer rank, when the transport knows it.
        rank: Option<usize>,
        /// What was being waited on.
        what: String,
    },
    /// A frame violated the wire format (bad length, bad handshake
    /// payload, unexpected channel).
    BadFrame {
        /// What was malformed.
        what: String,
    },
    /// A frame failed its CRC32 integrity trailer (or carried a header
    /// no honest sender produces). The connection it arrived on is
    /// unrecoverable: a corrupt length prefix loses frame alignment.
    FrameCorrupt {
        /// What the integrity check caught.
        what: String,
    },
    /// A peer address is missing or unusable.
    BadAddress {
        /// The offending address (empty when missing entirely).
        addr: String,
        /// Why it is unusable.
        reason: String,
    },
    /// A channel endpoint was opened twice (mpsc backend: each side of
    /// a channel can be taken exactly once).
    ChannelInUse {
        /// The peer rank of the doubly-opened channel.
        peer: usize,
        /// The channel id.
        chan: u16,
    },
    /// An unrecognized `--transport` spelling.
    UnknownTransport(String),
}

impl TransportError {
    /// Wraps an `std::io::Error` with the operation that hit it.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> TransportError {
        TransportError::Io {
            context: context.into(),
            error: error.to_string(),
        }
    }

    /// Whether this error is the peer-gone case (as opposed to a
    /// config/protocol problem on this side).
    pub fn is_peer_closed(&self) -> bool {
        matches!(self, TransportError::PeerClosed { .. })
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { context, error } => {
                write!(f, "i/o error while {context}: {error}")
            }
            TransportError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => write!(
                f,
                "handshake mismatch on {field}: ours {ours:#x}, peer sent {theirs:#x}"
            ),
            TransportError::HandshakeRejected { reason } => {
                write!(f, "peer rejected handshake: {reason}")
            }
            TransportError::Timeout { what, after } => {
                write!(
                    f,
                    "timed out after {:.1}s waiting for {what}",
                    after.as_secs_f64()
                )
            }
            TransportError::PeerClosed { rank, what } => match rank {
                Some(r) => write!(f, "peer rank {r} closed the connection while {what}"),
                None => write!(f, "peer closed the connection while {what}"),
            },
            TransportError::BadFrame { what } => write!(f, "malformed frame: {what}"),
            TransportError::FrameCorrupt { what } => write!(f, "corrupt frame: {what}"),
            TransportError::BadAddress { addr, reason } => {
                if addr.is_empty() {
                    write!(f, "missing peer address: {reason}")
                } else {
                    write!(f, "bad peer address `{addr}`: {reason}")
                }
            }
            TransportError::ChannelInUse { peer, chan } => {
                write!(f, "channel {chan} to rank {peer} already opened")
            }
            TransportError::UnknownTransport(s) => {
                write!(f, "unknown transport `{s}` (expected mpsc, uds, or tcp)")
            }
        }
    }
}

impl std::error::Error for TransportError {}
