//! The socket backend: one implementation generic over TCP and Unix
//! domain sockets.
//!
//! Each rank binds one listener. Data connections are opened lazily by
//! the sender (one connection per directed rank pair, all channels
//! multiplexed over it); the acceptor verifies the handshake, then a
//! reader thread demultiplexes incoming frames into per-`(from, chan)`
//! queues. Frames for channels nobody has opened yet are buffered, so
//! open order never races message arrival. When a peer's connection
//! dies, its queues are torn down and every blocked receiver wakes
//! with [`TransportError::PeerClosed`] instead of hanging.

use crate::error::TransportError;
use crate::frame::{
    read_frame, write_frame, write_frame_with, FrameError, Handshake, CTRL_CHAN, FRAME_OVERHEAD,
    HS_CHAN,
};
use crate::throttle::TokenBucket;
use crate::{FrameRx, FrameTx, Transport, TransportKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Timeouts and shaping knobs for a socket endpoint.
#[derive(Debug, Clone, Copy)]
pub struct SocketOptions {
    /// How long a lazy connect retries before giving up (covers peers
    /// that have not bound their listener yet).
    pub connect_timeout: Duration,
    /// How long either side of a handshake waits for the other.
    pub handshake_timeout: Duration,
    /// Outgoing bandwidth cap in megabits per second (TCP only; the
    /// checker rejects it elsewhere as `AC0703`). The cap models the
    /// rank's NIC: all connections of the endpoint share one bucket.
    pub link_mbps: Option<f64>,
    /// Restart generation of the run. Carried in every handshake and
    /// enforced by the acceptor, so a worker left over from a fenced
    /// generation cannot feed stale frames into a recovered run.
    pub epoch: u32,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            connect_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(10),
            link_mbps: None,
            epoch: 0,
        }
    }
}

/// A listener of either flavor.
pub(crate) enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

/// A connected stream of either flavor.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_read_timeout(t),
        }
    }

    /// Hard-closes both directions — the fault-injection `sever` hook.
    fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            #[cfg(unix)]
            Stream::Uds(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// Incoming-frame router shared between reader threads and receivers.
#[derive(Default)]
struct DemuxState {
    /// Live queues for opened receive channels.
    queues: HashMap<(usize, u16), Sender<Vec<u8>>>,
    /// Frames that arrived before their channel was opened.
    pending: HashMap<(usize, u16), VecDeque<Vec<u8>>>,
    /// Peers whose inbound connection hit EOF or an error.
    closed: HashSet<usize>,
    /// Peers whose connection died on a corrupt frame, with the CRC
    /// failure that killed it. Receivers report [`TransportError::
    /// FrameCorrupt`] instead of `PeerClosed` for these.
    corrupt: HashMap<usize, String>,
}

type Demux = Arc<Mutex<DemuxState>>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Monotonic suffix for Unix socket paths within one process.
static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Owns a bound Unix-socket path and unlinks it on drop, so a worker
/// that panics (or a transport dropped on any error path) never leaks
/// a stale socket file for the next run to trip over.
struct UdsPathGuard(PathBuf);

impl Drop for UdsPathGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Binds a Unix listener at `path`, reclaiming a stale path left by an
/// abnormally killed process: if the bind hits `AddrInUse` but nobody
/// answers a probe connect, the file is a leftover — unlink and retry.
/// A live listener on the path keeps the original error.
#[cfg(unix)]
fn bind_uds(path: &std::path::Path) -> std::io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            match UnixStream::connect(path) {
                // Someone is actually listening: a genuine collision.
                Ok(_) => Err(e),
                Err(_) => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)
                }
            }
        }
        other => other,
    }
}

/// One rank's socket endpoint (TCP or Unix domain).
///
/// Build with [`SocketTransport::bind`], exchange addresses out of
/// band, install the peer table with [`SocketTransport::set_peer`],
/// then open channels through the [`Transport`] trait.
pub struct SocketTransport {
    kind: TransportKind,
    rank: usize,
    world: usize,
    config_hash: u64,
    opts: SocketOptions,
    addr: String,
    peers: Vec<Option<String>>,
    demux: Demux,
    conns: HashMap<usize, Arc<Mutex<BufWriter<Stream>>>>,
    bucket: Option<Arc<Mutex<TokenBucket>>>,
    accept_handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    uds_path: Option<UdsPathGuard>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SocketTransport({} rank {}/{} at {})",
            self.kind, self.rank, self.world, self.addr
        )
    }
}

impl SocketTransport {
    /// Binds this rank's listener (an ephemeral loopback port for TCP,
    /// a fresh temp-dir socket file for UDS) and starts accepting.
    ///
    /// `config_hash` must be identical on every rank of the run; the
    /// handshake enforces it.
    pub fn bind(
        kind: TransportKind,
        rank: usize,
        world: usize,
        config_hash: u64,
        opts: SocketOptions,
    ) -> Result<SocketTransport, TransportError> {
        let (listener, addr, uds_path) = match kind {
            TransportKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| TransportError::io("binding a loopback TCP listener", &e))?;
                let a = l
                    .local_addr()
                    .map_err(|e| TransportError::io("reading the bound TCP address", &e))?;
                (ListenerInner::Tcp(l), a.to_string(), None)
            }
            #[cfg(unix)]
            TransportKind::Uds => {
                let path = std::env::temp_dir().join(format!(
                    "actcomp-{}-{}-{}.sock",
                    std::process::id(),
                    rank,
                    UDS_COUNTER.fetch_add(1, Ordering::Relaxed),
                ));
                let l = bind_uds(&path).map_err(|e| {
                    TransportError::io(format!("binding unix socket {}", path.display()), &e)
                })?;
                let a = path.display().to_string();
                (ListenerInner::Uds(l), a, Some(UdsPathGuard(path)))
            }
            #[cfg(not(unix))]
            TransportKind::Uds => {
                return Err(TransportError::BadAddress {
                    addr: String::new(),
                    reason: "unix domain sockets are unavailable on this platform".to_string(),
                })
            }
            TransportKind::Mpsc => {
                return Err(TransportError::UnknownTransport(
                    "mpsc is not a socket transport; use actcomp_net::mpsc_world".to_string(),
                ))
            }
        };
        let demux: Demux = Arc::new(Mutex::new(DemuxState::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = spawn_acceptor(
            listener,
            Arc::clone(&demux),
            Arc::clone(&stop),
            world,
            config_hash,
            opts.epoch,
            opts.handshake_timeout,
        );
        Ok(SocketTransport {
            kind,
            rank,
            world,
            config_hash,
            opts,
            addr,
            peers: (0..world).map(|_| None).collect(),
            demux,
            conns: HashMap::new(),
            bucket: opts
                .link_mbps
                .map(|m| Arc::new(Mutex::new(TokenBucket::from_mbps(m)))),
            accept_handle: Some(accept_handle),
            stop,
            uds_path,
        })
    }

    /// The address peers connect to (host:port for TCP, a filesystem
    /// path for UDS).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Records where rank `peer` listens; required before the first
    /// `open_send` to that rank.
    pub fn set_peer(&mut self, peer: usize, addr: String) {
        if peer < self.peers.len() {
            self.peers[peer] = Some(addr);
        }
    }

    /// Opens (or reuses) the data connection to `to`, performing the
    /// handshake on first use.
    fn ensure_conn(&mut self, to: usize) -> Result<Arc<Mutex<BufWriter<Stream>>>, TransportError> {
        if let Some(c) = self.conns.get(&to) {
            return Ok(Arc::clone(c));
        }
        let addr = self.peers.get(to).and_then(|a| a.clone()).ok_or_else(|| {
            TransportError::BadAddress {
                addr: String::new(),
                reason: format!("no address recorded for rank {to} (peer table not installed?)"),
            }
        })?;
        let mut stream = connect_retry(self.kind, &addr, to, self.opts.connect_timeout)?;
        // Handshake: prove both ends run the same world, config, and
        // restart generation.
        let hs = Handshake {
            world: self.world as u32,
            from: self.rank as u32,
            config_hash: self.config_hash,
            epoch: self.opts.epoch,
        };
        write_frame(&mut stream, HS_CHAN, &hs.encode())
            .and_then(|()| stream.flush())
            .map_err(|e| TransportError::io(format!("handshaking with rank {to}"), &e))?;
        stream
            .set_read_timeout(Some(self.opts.handshake_timeout))
            .map_err(|e| TransportError::io("arming the handshake timeout", &e))?;
        let (chan, ack) = read_frame(&mut stream).map_err(|e| match e {
            FrameError::Io(e) if is_timeout(&e) => TransportError::Timeout {
                what: format!("handshake ack from rank {to}"),
                after: self.opts.handshake_timeout,
            },
            FrameError::Io(e) => {
                TransportError::io(format!("reading handshake ack from rank {to}"), &e)
            }
            corrupt => corrupt.into_transport("reading a handshake ack"),
        })?;
        if chan != HS_CHAN || ack.is_empty() {
            return Err(TransportError::BadFrame {
                what: format!("handshake ack on channel {chan}"),
            });
        }
        if ack[0] != 0 {
            return Err(TransportError::HandshakeRejected {
                reason: String::from_utf8_lossy(&ack[1..]).into_owned(),
            });
        }
        stream
            .set_read_timeout(None)
            .map_err(|e| TransportError::io("clearing the handshake timeout", &e))?;
        let conn = Arc::new(Mutex::new(BufWriter::new(stream)));
        self.conns.insert(to, Arc::clone(&conn));
        Ok(conn)
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        self.kind
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn open_send(&mut self, to: usize, chan: u16) -> Result<Box<dyn FrameTx>, TransportError> {
        if chan >= CTRL_CHAN {
            return Err(TransportError::BadFrame {
                what: format!("application channel {chan} collides with a reserved channel"),
            });
        }
        if chan == 0 {
            return Err(TransportError::BadFrame {
                what: "channel 0 is reserved (corrupt-header sentinel)".to_string(),
            });
        }
        let conn = self.ensure_conn(to)?;
        Ok(Box::new(SocketTx {
            conn,
            chan,
            to,
            bucket: self.bucket.as_ref().map(Arc::clone),
        }))
    }

    fn open_recv(&mut self, from: usize, chan: u16) -> Result<Box<dyn FrameRx>, TransportError> {
        if from >= self.world {
            return Err(TransportError::BadAddress {
                addr: from.to_string(),
                reason: format!("rank out of range (world {})", self.world),
            });
        }
        let (tx, rx) = channel();
        let mut st = lock(&self.demux);
        if let Some(buffered) = st.pending.remove(&(from, chan)) {
            for frame in buffered {
                // The receiving half is right here; this cannot fail.
                let _ = tx.send(frame);
            }
        }
        if !st.closed.contains(&from) {
            st.queues.insert((from, chan), tx);
        }
        // When `from` is already closed the sender is dropped here, so
        // the receiver yields the buffered frames then PeerClosed (or
        // FrameCorrupt when corruption is what killed the connection).
        drop(st);
        Ok(Box::new(SocketRx {
            rx,
            from,
            demux: Arc::clone(&self.demux),
        }))
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor with a throwaway connection; it checks the
        // stop flag after every accept.
        match self.kind {
            TransportKind::Tcp => {
                let _ = TcpStream::connect(&self.addr);
            }
            #[cfg(unix)]
            TransportKind::Uds => {
                let _ = UnixStream::connect(&self.addr);
            }
            _ => {}
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Closing our write sides EOFs the peers' reader threads; the
        // path guard unlinks the socket file.
        self.conns.clear();
        self.uds_path = None;
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Whether an I/O error is a read-timeout expiry (platform-dependent
/// kind).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Connects to `addr`, retrying connection-refused / not-found with
/// bounded exponential backoff until the deadline (the peer may not
/// have bound its listener yet, or may be restarting after a fault).
fn connect_retry(
    kind: TransportKind,
    addr: &str,
    to: usize,
    timeout: Duration,
) -> Result<Stream, TransportError> {
    // `usize::MAX` is the control plane (no rank yet).
    let who = if to == usize::MAX {
        "the control endpoint".to_string()
    } else {
        format!("rank {to}")
    };
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(2);
    loop {
        let attempt: std::io::Result<Stream> = match kind {
            TransportKind::Tcp => TcpStream::connect(addr).map(|s| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            TransportKind::Uds => UnixStream::connect(addr).map(Stream::Uds),
            _ => {
                return Err(TransportError::UnknownTransport(
                    "mpsc has no socket address".to_string(),
                ))
            }
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) => {
                let retryable = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::NotFound
                        | std::io::ErrorKind::ConnectionReset
                );
                if !retryable {
                    return Err(TransportError::io(
                        format!("connecting to {who} at {addr}"),
                        &e,
                    ));
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(TransportError::Timeout {
                        what: format!("connecting to {who} at {addr}"),
                        after: timeout,
                    });
                }
                // Bounded exponential backoff: fast while the peer is
                // milliseconds from binding, polite while it restarts.
                std::thread::sleep(backoff.min(deadline - now));
                backoff = (backoff * 2).min(Duration::from_millis(250));
            }
        }
    }
}

/// Spawns the accept loop: handshake every inbound connection, then
/// hand it to a detached reader thread that demultiplexes frames.
fn spawn_acceptor(
    listener: ListenerInner,
    demux: Demux,
    stop: Arc<AtomicBool>,
    world: usize,
    config_hash: u64,
    epoch: u32,
    handshake_timeout: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("actcomp-net-accept".to_string())
        .spawn(move || loop {
            let stream = match &listener {
                ListenerInner::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
                #[cfg(unix)]
                ListenerInner::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    // Transient accept failure; don't spin.
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            };
            let demux = Arc::clone(&demux);
            // Reader threads are detached: they exit on EOF when the
            // peer closes its write side (or its process dies).
            let _ = std::thread::Builder::new()
                .name("actcomp-net-read".to_string())
                .spawn(move || {
                    serve_conn(stream, demux, world, config_hash, epoch, handshake_timeout);
                });
        })
        .expect("spawn acceptor thread")
}

/// Handshakes one inbound connection and pumps its frames into the
/// demux until EOF or a corrupt frame.
fn serve_conn(
    mut stream: Stream,
    demux: Demux,
    world: usize,
    config_hash: u64,
    epoch: u32,
    handshake_timeout: Duration,
) {
    if stream.set_read_timeout(Some(handshake_timeout)).is_err() {
        return;
    }
    let from = match accept_handshake(&mut stream, world, config_hash, epoch) {
        Ok(from) => from,
        Err(reason) => {
            // Best-effort rejection; the connector surfaces it as
            // HandshakeRejected.
            let mut ack = vec![1u8];
            ack.extend_from_slice(reason.to_string().as_bytes());
            let _ = write_frame(&mut stream, HS_CHAN, &ack).and_then(|()| stream.flush());
            return;
        }
    };
    if write_frame(&mut stream, HS_CHAN, &[0u8])
        .and_then(|()| stream.flush())
        .is_err()
        || stream.set_read_timeout(None).is_err()
    {
        return;
    }
    loop {
        match read_frame(&mut stream) {
            Ok((chan, payload)) => {
                let mut st = lock(&demux);
                match st.queues.get(&(from, chan)) {
                    Some(tx) => {
                        if tx.send(payload).is_err() {
                            // Receiver dropped; stop routing this chan.
                            st.queues.remove(&(from, chan));
                        }
                    }
                    None => st
                        .pending
                        .entry((from, chan))
                        .or_default()
                        .push_back(payload),
                }
            }
            Err(FrameError::Corrupt(what)) => {
                // Frame alignment is lost; the connection is dead.
                // Remember why, so receivers report FrameCorrupt
                // instead of a bare PeerClosed.
                lock(&demux).corrupt.insert(from, what);
                let _ = stream.shutdown_both();
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    // EOF or error: tear down this peer's queues so blocked receivers
    // wake with PeerClosed/FrameCorrupt instead of hanging.
    let mut st = lock(&demux);
    st.closed.insert(from);
    st.queues.retain(|(f, _), _| *f != from);
}

/// Reads and validates the handshake frame, returning the peer rank.
fn accept_handshake(
    stream: &mut Stream,
    world: usize,
    config_hash: u64,
    epoch: u32,
) -> Result<usize, TransportError> {
    let (chan, payload) =
        read_frame(stream).map_err(|e| e.into_transport("reading a handshake"))?;
    if chan != HS_CHAN {
        return Err(TransportError::BadFrame {
            what: format!("first frame on channel {chan} (expected the handshake channel)"),
        });
    }
    let hs = Handshake::decode(&payload)?;
    if hs.world as usize != world {
        return Err(TransportError::HandshakeMismatch {
            field: "world",
            ours: world as u64,
            theirs: u64::from(hs.world),
        });
    }
    if hs.config_hash != config_hash {
        return Err(TransportError::HandshakeMismatch {
            field: "config_hash",
            ours: config_hash,
            theirs: hs.config_hash,
        });
    }
    if hs.epoch != epoch {
        // The fencing check: a peer from another restart generation
        // (usually a stale worker the supervisor already replaced) is
        // refused before any of its frames can reach the demux.
        return Err(TransportError::HandshakeMismatch {
            field: "epoch",
            ours: u64::from(epoch),
            theirs: u64::from(hs.epoch),
        });
    }
    if hs.from as usize >= world {
        return Err(TransportError::HandshakeMismatch {
            field: "rank",
            ours: world as u64,
            theirs: u64::from(hs.from),
        });
    }
    Ok(hs.from as usize)
}

/// The sending end of one channel over a shared socket connection.
struct SocketTx {
    conn: Arc<Mutex<BufWriter<Stream>>>,
    chan: u16,
    to: usize,
    bucket: Option<Arc<Mutex<TokenBucket>>>,
}

impl SocketTx {
    /// Writes one frame, optionally with a deliberately broken CRC
    /// trailer (`crc_flip != 0` — the fault-injection path).
    fn send_with(&mut self, payload: &[u8], crc_flip: u32) -> Result<(), TransportError> {
        if let Some(bucket) = &self.bucket {
            // Debit under the lock, sleep outside it so concurrent
            // senders are shaped collectively without serializing.
            let wait = lock(bucket).debit(payload.len() + FRAME_OVERHEAD);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
        let mut w = lock(&self.conn);
        write_frame_with(&mut *w, self.chan, payload, crc_flip)
            .and_then(|()| w.flush())
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::UnexpectedEof => TransportError::PeerClosed {
                    rank: Some(self.to),
                    what: "sending a frame".to_string(),
                },
                _ => TransportError::io(format!("sending a frame to rank {}", self.to), &e),
            })
    }
}

impl FrameTx for SocketTx {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_with(payload, 0)
    }

    fn send_corrupt(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_with(payload, 0xA5A5_A5A5)
    }

    fn sever(&mut self) -> Result<(), TransportError> {
        let w = lock(&self.conn);
        w.get_ref()
            .shutdown_both()
            .map_err(|e| TransportError::io(format!("severing the link to rank {}", self.to), &e))
    }
}

/// The receiving end of one channel, fed by the peer's reader thread.
struct SocketRx {
    rx: Receiver<Vec<u8>>,
    from: usize,
    /// Consulted when the queue disconnects, to distinguish a corrupt
    /// connection from a plainly closed one.
    demux: Demux,
}

impl SocketRx {
    fn disconnected(&self) -> TransportError {
        if let Some(what) = lock(&self.demux).corrupt.get(&self.from) {
            return TransportError::FrameCorrupt { what: what.clone() };
        }
        TransportError::PeerClosed {
            rank: Some(self.from),
            what: "receiving a frame".to_string(),
        }
    }
}

impl FrameRx for SocketRx {
    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| self.disconnected())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout {
                what: format!("a frame from rank {}", self.from),
                after: timeout,
            },
            RecvTimeoutError::Disconnected => self.disconnected(),
        })
    }
}

/// Stream/listener plumbing shared with the control plane
/// ([`crate::CtrlConn`]): same socket flavors, no demux.
pub(crate) mod ctrl_stream {
    use super::*;

    /// A control listener (nonblocking, polled with a deadline).
    pub(crate) struct CtrlListenerInner {
        listener: ListenerInner,
        /// Held only for its Drop (unlinks the socket file).
        _uds_path: Option<UdsPathGuard>,
    }

    impl CtrlListenerInner {
        /// Binds a listener for `kind`, returning it with its address.
        pub(crate) fn bind(kind: TransportKind) -> Result<(Self, String), TransportError> {
            let (listener, addr, uds_path) = match kind {
                TransportKind::Tcp => {
                    let l = TcpListener::bind("127.0.0.1:0")
                        .map_err(|e| TransportError::io("binding a control listener", &e))?;
                    let a = l
                        .local_addr()
                        .map_err(|e| TransportError::io("reading the control address", &e))?;
                    l.set_nonblocking(true)
                        .map_err(|e| TransportError::io("arming nonblocking accept", &e))?;
                    (ListenerInner::Tcp(l), a.to_string(), None)
                }
                #[cfg(unix)]
                TransportKind::Uds => {
                    let path = std::env::temp_dir().join(format!(
                        "actcomp-ctrl-{}-{}.sock",
                        std::process::id(),
                        UDS_COUNTER.fetch_add(1, Ordering::Relaxed),
                    ));
                    let l = bind_uds(&path).map_err(|e| {
                        TransportError::io(format!("binding control socket {}", path.display()), &e)
                    })?;
                    l.set_nonblocking(true)
                        .map_err(|e| TransportError::io("arming nonblocking accept", &e))?;
                    let a = path.display().to_string();
                    (ListenerInner::Uds(l), a, Some(UdsPathGuard(path)))
                }
                #[cfg(not(unix))]
                TransportKind::Uds => {
                    return Err(TransportError::BadAddress {
                        addr: String::new(),
                        reason: "unix domain sockets are unavailable on this platform".to_string(),
                    })
                }
                TransportKind::Mpsc => {
                    return Err(TransportError::UnknownTransport(
                        "mpsc has no control listener".to_string(),
                    ))
                }
            };
            Ok((
                CtrlListenerInner {
                    listener,
                    _uds_path: uds_path,
                },
                addr,
            ))
        }

        /// Polls for one inbound connection until `timeout`.
        pub(crate) fn accept(&self, timeout: Duration) -> Result<CtrlStream, TransportError> {
            let deadline = Instant::now() + timeout;
            loop {
                let attempt = match &self.listener {
                    ListenerInner::Tcp(l) => l.accept().map(|(s, _)| {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_nonblocking(false);
                        Stream::Tcp(s)
                    }),
                    #[cfg(unix)]
                    ListenerInner::Uds(l) => l.accept().map(|(s, _)| {
                        let _ = s.set_nonblocking(false);
                        Stream::Uds(s)
                    }),
                };
                match attempt {
                    Ok(s) => return Ok(CtrlStream { stream: s }),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Timeout {
                                what: "a control connection".to_string(),
                                after: timeout,
                            });
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(TransportError::io("accepting a control connection", &e)),
                }
            }
        }
    }

    // No Drop impl needed: the UdsPathGuard member unlinks the socket
    // file when the listener drops.

    /// One established control stream. Used strictly sequentially
    /// (send then receive from one thread), so a single stream serves
    /// both directions.
    pub(crate) struct CtrlStream {
        stream: Stream,
    }

    impl CtrlStream {
        /// Dials `addr`, retrying while the listener comes up.
        pub(crate) fn connect(
            kind: TransportKind,
            addr: &str,
            timeout: Duration,
        ) -> Result<CtrlStream, TransportError> {
            let stream = connect_retry(kind, addr, usize::MAX, timeout)?;
            Ok(CtrlStream { stream })
        }

        pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
            self.stream.set_read_timeout(t)
        }

        pub(crate) fn with_read<R>(&mut self, f: impl FnOnce(&mut Stream) -> R) -> R {
            f(&mut self.stream)
        }

        pub(crate) fn with_write<R>(
            &mut self,
            f: impl FnOnce(&mut Stream) -> std::io::Result<R>,
        ) -> std::io::Result<R> {
            f(&mut self.stream)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(kind: TransportKind) -> (SocketTransport, SocketTransport) {
        let opts = SocketOptions {
            connect_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(5),
            link_mbps: None,
            epoch: 0,
        };
        let mut a = SocketTransport::bind(kind, 0, 2, 42, opts).expect("bind rank 0");
        let mut b = SocketTransport::bind(kind, 1, 2, 42, opts).expect("bind rank 1");
        let (aa, ba) = (a.local_addr().to_string(), b.local_addr().to_string());
        a.set_peer(1, ba);
        b.set_peer(0, aa);
        (a, b)
    }

    fn frames_flow(kind: TransportKind) {
        let (mut a, mut b) = pair(kind);
        let mut tx = a.open_send(1, 3).expect("send side");
        tx.send(b"early").expect("send before open_recv");
        let mut rx = b.open_recv(0, 3).expect("recv side");
        assert_eq!(rx.recv().expect("buffered frame"), b"early");
        tx.send(b"late").expect("send");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).expect("frame"),
            b"late"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn tcp_frames_flow_and_buffer() {
        frames_flow(TransportKind::Tcp);
    }

    #[cfg(unix)]
    #[test]
    fn uds_frames_flow_and_buffer() {
        frames_flow(TransportKind::Uds);
    }

    #[test]
    fn config_hash_mismatch_is_rejected() {
        let opts = SocketOptions::default();
        let mut a = SocketTransport::bind(TransportKind::Tcp, 0, 2, 1, opts).expect("bind");
        let b = SocketTransport::bind(TransportKind::Tcp, 1, 2, 2, opts).expect("bind");
        a.set_peer(1, b.local_addr().to_string());
        match a.open_send(1, 1) {
            Err(TransportError::HandshakeRejected { reason }) => {
                assert!(reason.contains("config_hash"), "reason: {reason}");
            }
            Err(other) => panic!("expected a handshake rejection, got {other:?}"),
            Ok(_) => panic!("expected a handshake rejection, got a connection"),
        }
    }

    #[test]
    fn epoch_mismatch_is_fenced_off() {
        // A "stale" epoch-0 endpoint dialing an epoch-1 world: the
        // acceptor must refuse at handshake so no stale frame can ever
        // reach the recovered generation.
        let stale = SocketOptions::default();
        let fresh = SocketOptions {
            epoch: 1,
            ..SocketOptions::default()
        };
        let mut a = SocketTransport::bind(TransportKind::Tcp, 0, 2, 42, stale).expect("bind");
        let b = SocketTransport::bind(TransportKind::Tcp, 1, 2, 42, fresh).expect("bind");
        a.set_peer(1, b.local_addr().to_string());
        match a.open_send(1, 1) {
            Err(TransportError::HandshakeRejected { reason }) => {
                assert!(reason.contains("epoch"), "reason: {reason}");
            }
            Err(other) => panic!("expected an epoch rejection, got {other:?}"),
            Ok(_) => panic!("expected an epoch rejection, got a connection"),
        }
    }

    #[test]
    fn reserved_channels_cannot_be_opened() {
        let (mut a, _b) = pair(TransportKind::Tcp);
        assert!(matches!(
            a.open_send(1, 0),
            Err(TransportError::BadFrame { .. })
        ));
        assert!(matches!(
            a.open_send(1, HS_CHAN),
            Err(TransportError::BadFrame { .. })
        ));
        assert!(matches!(
            a.open_send(1, CTRL_CHAN),
            Err(TransportError::BadFrame { .. })
        ));
    }

    fn corrupt_frames_are_typed(kind: TransportKind) {
        let (mut a, mut b) = pair(kind);
        let mut tx = a.open_send(1, 3).expect("send side");
        let mut rx = b.open_recv(0, 3).expect("recv side");
        tx.send(b"good").expect("send");
        assert_eq!(rx.recv().expect("good frame"), b"good");
        tx.send_corrupt(b"mangled").expect("send corrupt");
        let err = rx.recv_timeout(Duration::from_secs(10)).expect_err("bad");
        assert!(
            matches!(err, TransportError::FrameCorrupt { .. }),
            "got {err:?}"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn tcp_corrupt_frames_are_typed() {
        corrupt_frames_are_typed(TransportKind::Tcp);
    }

    #[cfg(unix)]
    #[test]
    fn uds_corrupt_frames_are_typed() {
        corrupt_frames_are_typed(TransportKind::Uds);
    }

    #[test]
    fn severed_connection_surfaces_as_peer_closed() {
        let (mut a, mut b) = pair(TransportKind::Tcp);
        let mut tx = a.open_send(1, 3).expect("send side");
        let mut rx = b.open_recv(0, 3).expect("recv side");
        tx.send(b"before").expect("send");
        assert_eq!(rx.recv().expect("frame"), b"before");
        tx.sever().expect("sever");
        let err = rx
            .recv_timeout(Duration::from_secs(10))
            .expect_err("severed");
        assert!(err.is_peer_closed(), "got {err:?}");
        a.shutdown();
        b.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn stale_uds_paths_are_reclaimed() {
        let path = std::env::temp_dir().join(format!(
            "actcomp-stale-{}-{}.sock",
            std::process::id(),
            UDS_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        // Bind and drop without unlinking — exactly what a SIGKILLed
        // worker leaves behind (std does not remove the file on drop).
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists(), "precondition: stale socket file remains");
        let reclaimed = bind_uds(&path).expect("stale path taken over");
        drop(reclaimed);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn uds_path_guard_unlinks_on_drop() {
        let path = std::env::temp_dir().join(format!(
            "actcomp-guard-{}-{}.sock",
            std::process::id(),
            UDS_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&path, b"").expect("create");
        assert!(path.exists());
        drop(UdsPathGuard(path.clone()));
        assert!(!path.exists(), "guard must unlink the path");
    }

    #[test]
    fn dead_peer_surfaces_within_the_timeout() {
        let (mut a, mut b) = pair(TransportKind::Tcp);
        let mut tx = a.open_send(1, 1).expect("send side");
        tx.send(b"x").expect("send");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        assert_eq!(rx.recv().expect("frame"), b"x");
        // Kill rank 0 entirely; rank 1's reader sees EOF and the
        // blocked receive wakes with PeerClosed, not a hang.
        drop(tx);
        a.shutdown();
        drop(a);
        let t0 = Instant::now();
        let err = rx
            .recv_timeout(Duration::from_secs(10))
            .expect_err("closed");
        assert!(err.is_peer_closed(), "got {err:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "took {:?}",
            t0.elapsed()
        );
        b.shutdown();
    }

    #[test]
    fn connect_to_absent_peer_times_out() {
        let opts = SocketOptions {
            connect_timeout: Duration::from_millis(50),
            ..SocketOptions::default()
        };
        let mut a = SocketTransport::bind(TransportKind::Tcp, 0, 2, 7, opts).expect("bind");
        // A loopback port nobody listens on: bind-then-drop reserves a
        // port that is closed by the time we connect.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
            l.local_addr().expect("probe addr").to_string()
        };
        a.set_peer(1, dead);
        assert!(matches!(
            a.open_send(1, 1),
            Err(TransportError::Timeout { .. })
        ));
    }

    #[test]
    fn throttled_sender_is_paced() {
        let opts = SocketOptions {
            link_mbps: Some(80.0), // 10 MB/s
            ..SocketOptions::default()
        };
        let mut a = SocketTransport::bind(TransportKind::Tcp, 0, 2, 9, opts).expect("bind");
        let mut b = SocketTransport::bind(TransportKind::Tcp, 1, 2, 9, SocketOptions::default())
            .expect("bind");
        a.set_peer(1, b.local_addr().to_string());
        b.set_peer(0, a.local_addr().to_string());
        let mut tx = a.open_send(1, 1).expect("send side");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        let payload = vec![0u8; 256 * 1024];
        let t0 = Instant::now();
        for _ in 0..20 {
            tx.send(&payload).expect("send");
        }
        for _ in 0..20 {
            let _ = rx.recv().expect("frame");
        }
        // 5 MB at 10 MB/s ≈ 0.5 s minus the burst allowance.
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed > 0.3, "throttle not applied: {elapsed:.3}s");
        a.shutdown();
        b.shutdown();
    }
}
