//! The in-process backend: `std::sync::mpsc` channels behind the
//! [`Transport`] trait.
//!
//! All endpoints of one world share a map of `(from, to, chan)` →
//! channel pair; whichever side opens its end first creates the pair,
//! the other side takes the remaining half. There are no threads and
//! no copies beyond the payload `Vec` itself, so the threaded runtime
//! keeps its in-process performance while exercising the exact same
//! trait surface as the socket backends — including the fault hooks:
//! a "corrupt" item crosses the channel as a marker and surfaces as
//! [`TransportError::FrameCorrupt`] on the receiver, mirroring what a
//! CRC failure does on a real wire.

use crate::error::TransportError;
use crate::{FrameRx, FrameTx, Transport, TransportKind};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What crosses an in-process channel: an honest frame, or the marker
/// a corrupt wire frame would have become.
enum Item {
    Frame(Vec<u8>),
    Corrupt,
}

/// One directed channel's two halves, each taken at most once.
struct Pair {
    tx: Option<Sender<Item>>,
    rx: Option<Receiver<Item>>,
}

type Shared = Arc<Mutex<HashMap<(usize, usize, u16), Pair>>>;

/// Builds the `world` endpoints of an in-process fabric. Endpoint `r`
/// is rank `r`; hand each to its rank thread.
pub fn mpsc_world(world: usize) -> Vec<MpscTransport> {
    let shared: Shared = Arc::new(Mutex::new(HashMap::new()));
    (0..world)
        .map(|rank| MpscTransport {
            rank,
            world,
            shared: Arc::clone(&shared),
        })
        .collect()
}

/// One rank's endpoint of the in-process mpsc fabric (see
/// [`mpsc_world`]).
pub struct MpscTransport {
    rank: usize,
    world: usize,
    shared: Shared,
}

impl std::fmt::Debug for MpscTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpscTransport({}/{})", self.rank, self.world)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Transport for MpscTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Mpsc
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn open_send(&mut self, to: usize, chan: u16) -> Result<Box<dyn FrameTx>, TransportError> {
        if to >= self.world {
            return Err(TransportError::BadAddress {
                addr: to.to_string(),
                reason: format!("rank out of range (world {})", self.world),
            });
        }
        let mut map = lock(&self.shared);
        let pair = map.entry((self.rank, to, chan)).or_insert_with(|| {
            let (tx, rx) = channel();
            Pair {
                tx: Some(tx),
                rx: Some(rx),
            }
        });
        let tx = pair
            .tx
            .take()
            .ok_or(TransportError::ChannelInUse { peer: to, chan })?;
        Ok(Box::new(MpscTx { tx: Some(tx), to }))
    }

    fn open_recv(&mut self, from: usize, chan: u16) -> Result<Box<dyn FrameRx>, TransportError> {
        if from >= self.world {
            return Err(TransportError::BadAddress {
                addr: from.to_string(),
                reason: format!("rank out of range (world {})", self.world),
            });
        }
        let mut map = lock(&self.shared);
        let pair = map.entry((from, self.rank, chan)).or_insert_with(|| {
            let (tx, rx) = channel();
            Pair {
                tx: Some(tx),
                rx: Some(rx),
            }
        });
        let rx = pair
            .rx
            .take()
            .ok_or(TransportError::ChannelInUse { peer: from, chan })?;
        Ok(Box::new(MpscRx { rx, from }))
    }

    fn shutdown(&mut self) {
        // Nothing to release: channels close when their halves drop.
    }
}

struct MpscTx {
    /// `None` after a `sever`: the channel half is gone, exactly as if
    /// the connection carrying it had died.
    tx: Option<Sender<Item>>,
    to: usize,
}

impl MpscTx {
    fn push(&mut self, item: Item) -> Result<(), TransportError> {
        let closed = || TransportError::PeerClosed {
            rank: Some(self.to),
            what: "sending a frame".to_string(),
        };
        self.tx
            .as_ref()
            .ok_or_else(closed)?
            .send(item)
            .map_err(|_| closed())
    }
}

impl FrameTx for MpscTx {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.push(Item::Frame(payload.to_vec()))
    }

    fn send_corrupt(&mut self, _payload: &[u8]) -> Result<(), TransportError> {
        // No wire, no CRC: the marker itself is "the corrupt frame".
        self.push(Item::Corrupt)
    }

    fn sever(&mut self) -> Result<(), TransportError> {
        self.tx = None;
        Ok(())
    }
}

struct MpscRx {
    rx: Receiver<Item>,
    from: usize,
}

impl MpscRx {
    fn accept(&self, item: Item) -> Result<Vec<u8>, TransportError> {
        match item {
            Item::Frame(payload) => Ok(payload),
            Item::Corrupt => Err(TransportError::FrameCorrupt {
                what: format!("injected corrupt frame from rank {}", self.from),
            }),
        }
    }
}

impl FrameRx for MpscRx {
    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let item = self.rx.recv().map_err(|_| TransportError::PeerClosed {
            rank: Some(self.from),
            what: "receiving a frame".to_string(),
        })?;
        self.accept(item)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let item = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout {
                what: format!("a frame from rank {}", self.from),
                after: timeout,
            },
            RecvTimeoutError::Disconnected => TransportError::PeerClosed {
                rank: Some(self.from),
                what: "receiving a frame".to_string(),
            },
        })?;
        self.accept(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_endpoints() {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let mut a = world.pop().expect("rank 0");
        let mut tx = a.open_send(1, 3).expect("send side");
        let mut rx = b.open_recv(0, 3).expect("recv side");
        tx.send(b"ping").expect("send");
        assert_eq!(rx.recv().expect("recv"), b"ping");
    }

    #[test]
    fn double_open_is_a_typed_error() {
        let mut world = mpsc_world(2);
        let mut a = world.swap_remove(0);
        let _tx = a.open_send(1, 3).expect("first open");
        assert!(matches!(
            a.open_send(1, 3),
            Err(TransportError::ChannelInUse { peer: 1, chan: 3 })
        ));
    }

    #[test]
    fn dropped_peer_surfaces_as_peer_closed() {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let mut a = world.pop().expect("rank 0");
        let tx = a.open_send(1, 1).expect("send side");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        drop(tx);
        assert!(rx.recv().expect_err("closed").is_peer_closed());
        let err = rx
            .recv_timeout(Duration::from_millis(10))
            .expect_err("closed");
        assert!(err.is_peer_closed());
    }

    #[test]
    fn recv_timeout_times_out() {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let mut a = world.pop().expect("rank 0");
        let _tx = a.open_send(1, 1).expect("send side");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Timeout { .. })
        ));
    }

    #[test]
    fn injected_corruption_is_typed_and_later_frames_still_flow() {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let mut a = world.pop().expect("rank 0");
        let mut tx = a.open_send(1, 1).expect("send side");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        tx.send_corrupt(b"mangled").expect("send corrupt");
        tx.send(b"clean").expect("send");
        assert!(matches!(
            rx.recv(),
            Err(TransportError::FrameCorrupt { .. })
        ));
        assert_eq!(rx.recv().expect("clean frame"), b"clean");
    }

    #[test]
    fn severed_sender_surfaces_as_peer_closed() {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let mut a = world.pop().expect("rank 0");
        let mut tx = a.open_send(1, 1).expect("send side");
        let mut rx = b.open_recv(0, 1).expect("recv side");
        tx.sever().expect("sever");
        assert!(tx.send(b"after").expect_err("severed").is_peer_closed());
        assert!(rx.recv().expect_err("severed").is_peer_closed());
    }
}
