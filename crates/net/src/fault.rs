//! Deterministic fault injection: a parsed [`FaultPlan`] drives a
//! [`FaultyTransport`] wrapper that drops, duplicates, corrupts,
//! delays, or severs outgoing frames at precise points — so the
//! runtime's detection and recovery paths can be exercised
//! reproducibly instead of waiting for a flaky network to oblige.
//!
//! # Spec grammar
//!
//! A spec is one or more `;`-separated clauses:
//!
//! ```text
//! kill:rank=R@step=K          exit the worker process of rank R when it
//!                             receives its K-th (0-based) forward command
//! drop:frame=N[,rank=R]       swallow the N-th frame of each stream
//! dup:frame=N[,rank=R]        send the N-th frame twice
//! corrupt:frame=N[,rank=R]    send the N-th frame with a broken CRC
//! delay:frame=N,ms=M[,rank=R] sleep M ms before the N-th frame
//! sever:frame=N[,rank=R]      hard-close the connection at the N-th frame
//! drop:p=P[,rank=R]           drop each frame with probability P
//!                             (also dup/corrupt/sever; delay adds ms=M)
//! seed=S                      seed for the probabilistic clauses
//! ```
//!
//! Frame indices are 0-based and count the frames of each `(peer,
//! channel)` stream independently, which keeps injection deterministic
//! even when rank threads interleave sends across channels. `rank=R`
//! restricts a clause to the *sending* rank `R` (every worker parses
//! the same spec). Probabilistic clauses hash `(seed, sender rank,
//! frame index)` with SplitMix64, so a given seed reproduces the same
//! fault pattern run after run.
//!
//! Injection is sender-side only: the receive path stays honest, which
//! is exactly what makes a corrupt frame exercise the receiver's CRC
//! check end to end.

use crate::error::TransportError;
use crate::{FrameRx, FrameTx, Transport, TransportKind};
use std::sync::Arc;
use std::time::Duration;

/// What a matched clause does to the frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Swallow the frame (it is never written).
    Drop,
    /// Send the frame twice.
    Duplicate,
    /// Send the frame with a deliberately broken CRC trailer.
    Corrupt,
    /// Sleep for the given duration, then send normally.
    Delay(Duration),
    /// Hard-close the underlying connection, then attempt the send
    /// (which surfaces the peer-closed error a real cut produces).
    Sever,
}

/// When a clause fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// On the frame with this 0-based per-stream index.
    Frame(u64),
    /// On each frame independently with this probability, decided by
    /// the plan's seed (deterministic per seed).
    Prob(f64),
}

/// One frame-level fault clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFault {
    /// What to do to the matched frame.
    pub kind: FaultKind,
    /// Which frames it matches.
    pub trigger: FaultTrigger,
    /// Restrict to this *sending* rank (`None`: every rank).
    pub rank: Option<usize>,
}

/// The process-kill clause: rank `rank` exits when it receives its
/// `step`-th (0-based) forward command. Enforced by the runtime, not
/// the transport — a process death is not a frame event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillFault {
    /// The worker rank that dies.
    pub rank: usize,
    /// The 0-based training step at which it dies.
    pub step: usize,
}

/// A parsed, seeded fault-injection plan (see the module docs for the
/// spec grammar).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    frame_faults: Vec<FrameFault>,
    kill: Option<KillFault>,
}

impl FaultPlan {
    /// Parses a fault spec. Errors are human-readable strings naming
    /// the offending clause (the checker surfaces them as `AC0801`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}` (expected an unsigned integer)"))?;
                continue;
            }
            let (kind, params) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause `{clause}` is missing `:` (e.g. drop:frame=0)"))?;
            if kind == "kill" {
                if plan.kill.is_some() {
                    return Err("at most one kill clause is allowed".to_string());
                }
                plan.kill = Some(parse_kill(params)?);
                continue;
            }
            plan.frame_faults.push(parse_frame_fault(kind, params)?);
        }
        Ok(plan)
    }

    /// Whether the plan does anything at all.
    pub fn is_empty(&self) -> bool {
        self.frame_faults.is_empty() && self.kill.is_none()
    }

    /// Whether the plan injects any frame-level fault for `rank` (so a
    /// worker can skip the wrapper entirely when it has none).
    pub fn has_frame_faults(&self, rank: usize) -> bool {
        self.frame_faults
            .iter()
            .any(|f| f.rank.is_none_or(|r| r == rank))
    }

    /// The kill clause, if any.
    pub fn kill(&self) -> Option<KillFault> {
        self.kill
    }

    /// The step at which `rank` should kill itself, if the plan says
    /// so.
    pub fn kill_at(&self, rank: usize) -> Option<usize> {
        self.kill.filter(|k| k.rank == rank).map(|k| k.step)
    }

    /// The fault (if any) to apply to frame `idx` of a stream sent by
    /// `rank`. First matching clause wins.
    fn fault_for(&self, rank: usize, idx: u64) -> Option<FaultKind> {
        self.frame_faults
            .iter()
            .filter(|f| f.rank.is_none_or(|r| r == rank))
            .find(|f| match f.trigger {
                FaultTrigger::Frame(n) => n == idx,
                FaultTrigger::Prob(p) => unit_hash(self.seed, rank as u64, idx) < p,
            })
            .map(|f| f.kind)
    }
}

/// SplitMix64 over `(seed, rank, idx)`, mapped to `[0, 1)`.
fn unit_hash(seed: u64, rank: u64, idx: u64) -> f64 {
    let mut z = seed
        .wrapping_add(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(idx.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn parse_kill(params: &str) -> Result<KillFault, String> {
    let (rank_kv, step_kv) = params
        .split_once('@')
        .ok_or_else(|| format!("kill clause `{params}` must look like rank=R@step=K"))?;
    let rank = parse_kv(rank_kv, "rank")?;
    let step = parse_kv(step_kv, "step")?;
    Ok(KillFault { rank, step })
}

fn parse_kv(kv: &str, key: &str) -> Result<usize, String> {
    let (k, v) = kv
        .split_once('=')
        .ok_or_else(|| format!("expected {key}=<n>, got `{kv}`"))?;
    if k != key {
        return Err(format!("expected {key}=<n>, got `{kv}`"));
    }
    v.parse()
        .map_err(|_| format!("bad {key} value `{v}` (expected an unsigned integer)"))
}

fn parse_frame_fault(kind: &str, params: &str) -> Result<FrameFault, String> {
    let mut frame: Option<u64> = None;
    let mut prob: Option<f64> = None;
    let mut ms: Option<u64> = None;
    let mut rank: Option<usize> = None;
    for kv in params.split(',') {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("expected key=value in `{kind}:{params}`, got `{kv}`"))?;
        match k {
            "frame" => {
                frame = Some(v.parse().map_err(|_| format!("bad frame index `{v}`"))?);
            }
            "p" => {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} outside [0, 1]"));
                }
                prob = Some(p);
            }
            "ms" => {
                ms = Some(v.parse().map_err(|_| format!("bad delay `{v}` ms"))?);
            }
            "rank" => {
                rank = Some(v.parse().map_err(|_| format!("bad rank `{v}`"))?);
            }
            other => return Err(format!("unknown key `{other}` in `{kind}:{params}`")),
        }
    }
    let trigger = match (frame, prob) {
        (Some(n), None) => FaultTrigger::Frame(n),
        (None, Some(p)) => FaultTrigger::Prob(p),
        (Some(_), Some(_)) => {
            return Err(format!(
                "`{kind}:{params}` sets both frame= and p=; pick one trigger"
            ))
        }
        (None, None) => {
            return Err(format!(
                "`{kind}:{params}` needs a trigger (frame=<n> or p=<prob>)"
            ))
        }
    };
    let kind = match kind {
        "drop" => FaultKind::Drop,
        "dup" | "duplicate" => FaultKind::Duplicate,
        "corrupt" => FaultKind::Corrupt,
        "sever" => FaultKind::Sever,
        "delay" => {
            let ms = ms.ok_or_else(|| "delay clause needs ms=<millis>".to_string())?;
            FaultKind::Delay(Duration::from_millis(ms))
        }
        other => {
            return Err(format!(
                "unknown fault `{other}` (expected kill, drop, dup, corrupt, delay, or sever)"
            ))
        }
    };
    if !matches!(kind, FaultKind::Delay(_)) && ms.is_some() {
        return Err("ms= only applies to delay clauses".to_string());
    }
    Ok(FrameFault {
        kind,
        trigger,
        rank,
    })
}

/// A [`Transport`] wrapper that applies a [`FaultPlan`] to every
/// outgoing frame. Receives pass through untouched.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
}

impl FaultyTransport {
    /// Wraps `inner` so its sends obey `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> FaultyTransport {
        FaultyTransport {
            inner,
            plan: Arc::new(plan),
        }
    }
}

impl Transport for FaultyTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world(&self) -> usize {
        self.inner.world()
    }

    fn open_send(&mut self, to: usize, chan: u16) -> Result<Box<dyn FrameTx>, TransportError> {
        let rank = self.inner.rank();
        let tx = self.inner.open_send(to, chan)?;
        Ok(Box::new(FaultyTx {
            inner: tx,
            plan: Arc::clone(&self.plan),
            rank,
            idx: 0,
        }))
    }

    fn open_recv(&mut self, from: usize, chan: u16) -> Result<Box<dyn FrameRx>, TransportError> {
        self.inner.open_recv(from, chan)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// The fault-applying send end of one stream; `idx` counts this
/// stream's frames so injection points are deterministic per stream.
struct FaultyTx {
    inner: Box<dyn FrameTx>,
    plan: Arc<FaultPlan>,
    rank: usize,
    idx: u64,
}

impl FrameTx for FaultyTx {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let idx = self.idx;
        self.idx += 1;
        match self.plan.fault_for(self.rank, idx) {
            None => self.inner.send(payload),
            Some(FaultKind::Drop) => Ok(()),
            Some(FaultKind::Duplicate) => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
            Some(FaultKind::Corrupt) => self.inner.send_corrupt(payload),
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.send(payload)
            }
            Some(FaultKind::Sever) => {
                self.inner.sever()?;
                self.inner.send(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpsc_world;

    #[test]
    fn specs_parse() {
        let plan = FaultPlan::parse("kill:rank=1@step=3").expect("kill");
        assert_eq!(plan.kill_at(1), Some(3));
        assert_eq!(plan.kill_at(0), None);
        assert!(!plan.has_frame_faults(0));

        let plan = FaultPlan::parse("seed=7;drop:frame=2,rank=0;delay:frame=1,ms=5;corrupt:p=0.5")
            .expect("multi");
        assert!(plan.has_frame_faults(0));
        assert!(plan.has_frame_faults(1)); // the probabilistic clause is unfiltered
        assert_eq!(plan.fault_for(0, 2), Some(FaultKind::Drop));
        assert_eq!(
            plan.fault_for(1, 1),
            Some(FaultKind::Delay(Duration::from_millis(5)))
        );

        assert!(FaultPlan::parse("").expect("empty").is_empty());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("explode:frame=1", "unknown fault"),
            ("drop", "missing `:`"),
            ("drop:frames=1", "unknown key"),
            ("drop:frame=x", "bad frame index"),
            ("drop:p=1.5", "outside [0, 1]"),
            ("drop:frame=1,p=0.5", "pick one trigger"),
            ("drop:rank=1", "needs a trigger"),
            ("delay:frame=1", "needs ms"),
            ("dup:frame=1,ms=4", "ms= only applies"),
            ("kill:rank=1", "rank=R@step=K"),
            ("kill:rank=1@step=2;kill:rank=0@step=1", "at most one kill"),
            ("seed=minus", "bad seed"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn probabilistic_triggers_are_seeded_and_deterministic() {
        let all = FaultPlan::parse("drop:p=1.0").expect("p=1");
        let none = FaultPlan::parse("drop:p=0.0").expect("p=0");
        for idx in 0..32 {
            assert_eq!(all.fault_for(0, idx), Some(FaultKind::Drop));
            assert_eq!(none.fault_for(0, idx), None);
        }
        let a = FaultPlan::parse("seed=11;drop:p=0.5").expect("a");
        let b = FaultPlan::parse("seed=11;drop:p=0.5").expect("b");
        let pattern_a: Vec<bool> = (0..64).map(|i| a.fault_for(1, i).is_some()).collect();
        let pattern_b: Vec<bool> = (0..64).map(|i| b.fault_for(1, i).is_some()).collect();
        assert_eq!(pattern_a, pattern_b, "same seed, same pattern");
        assert!(pattern_a.iter().any(|&d| d) && !pattern_a.iter().all(|&d| d));
    }

    fn faulty_pair(spec: &str) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let mut world = mpsc_world(2);
        let mut b = world.pop().expect("rank 1");
        let a = world.pop().expect("rank 0");
        let plan = FaultPlan::parse(spec).expect("parse");
        let mut faulty = FaultyTransport::new(Box::new(a), plan);
        let tx = faulty.open_send(1, 1).expect("send side");
        let rx = b.open_recv(0, 1).expect("recv side");
        // Keep the endpoints alive for the duration of the test.
        std::mem::forget(faulty);
        std::mem::forget(b);
        (tx, rx)
    }

    #[test]
    fn drop_swallows_exactly_the_matched_frame() {
        let (mut tx, mut rx) = faulty_pair("drop:frame=1");
        for p in [b"f0", b"f1", b"f2"] {
            tx.send(p).expect("send");
        }
        assert_eq!(rx.recv().expect("frame"), b"f0");
        assert_eq!(rx.recv().expect("frame"), b"f2");
    }

    #[test]
    fn duplicate_sends_the_matched_frame_twice() {
        let (mut tx, mut rx) = faulty_pair("dup:frame=0");
        tx.send(b"twin").expect("send");
        tx.send(b"solo").expect("send");
        assert_eq!(rx.recv().expect("frame"), b"twin");
        assert_eq!(rx.recv().expect("frame"), b"twin");
        assert_eq!(rx.recv().expect("frame"), b"solo");
    }

    #[test]
    fn corrupt_surfaces_typed_at_the_receiver() {
        let (mut tx, mut rx) = faulty_pair("corrupt:frame=0");
        tx.send(b"poisoned").expect("send");
        assert!(matches!(
            rx.recv(),
            Err(TransportError::FrameCorrupt { .. })
        ));
    }

    #[test]
    fn rank_filter_spares_other_ranks() {
        let (mut tx, mut rx) = faulty_pair("drop:frame=0,rank=5");
        tx.send(b"kept").expect("send");
        assert_eq!(rx.recv().expect("frame"), b"kept");
    }
}
