//! # actcomp-net
//!
//! The transport layer that lets the `actcomp-runtime` ranks live in
//! separate OS processes: a [`Transport`] trait moving length-prefixed
//! framed messages between ranks, with three backends —
//!
//! - [`MpscTransport`] — in-process `std::sync::mpsc` channels behind
//!   the same trait, so the threaded runtime and the socket runtimes
//!   share one code path;
//! - [`SocketTransport`] over **Unix domain sockets** — cheap local
//!   multi-process runs;
//! - [`SocketTransport`] over **TCP** (loopback or real NICs), with an
//!   optional token-bucket bandwidth throttle so the paper's
//!   slow-network regime can be measured instead of simulated.
//!
//! # Framing
//!
//! Every message on a socket is one frame:
//!
//! ```text
//! [chan: u16 LE][len: u32 LE][payload: len bytes][crc32: u32 LE]
//! ```
//!
//! `chan` multiplexes independent logical channels (ring link,
//! broadcast, pipeline boundary, …) over one connection per directed
//! rank pair. Channel `0xFFFF` is reserved for the handshake, `0xFFFE`
//! for the launcher's control plane, and `0` is illegal on the wire
//! (a frame claiming it is treated as corruption). The trailer is an
//! IEEE CRC32 over header and payload: a flipped bit anywhere in the
//! frame surfaces as a typed [`TransportError::FrameCorrupt`] instead
//! of a garbage decode, and a hostile length prefix is rejected before
//! any allocation.
//!
//! # Rendezvous and handshake
//!
//! Each rank binds one listener and learns its peers' addresses out of
//! band (the launcher's peer table). Data connections are opened
//! lazily by the *sender*; the first frame on a new connection is a
//! handshake carrying a magic number, protocol version, world size,
//! configuration hash, restart epoch, and the sender's rank. The
//! acceptor verifies all of it against its own run and replies with an
//! accept/reject frame, so two runs that differ in topology, config,
//! or generation fail fast with a typed [`TransportError`] instead of
//! corrupting each other. The epoch is the recovery fence: after a
//! worker loss the launcher relaunches the world under `epoch + 1`,
//! and anything a fenced-off survivor still says is refused at
//! handshake.
//!
//! # Failure semantics
//!
//! Every user-reachable connect/handshake/receive path returns a typed
//! [`TransportError`] — no panics on I/O. A peer that disappears turns
//! into [`TransportError::PeerClosed`] on the next receive (the demux
//! drops that peer's queues on EOF), a connection killed by a CRC
//! failure yields [`TransportError::FrameCorrupt`], and
//! handshake/receive timeouts surface as [`TransportError::Timeout`]
//! rather than hanging forever.
//!
//! # Fault injection
//!
//! [`FaultyTransport`] wraps any [`Transport`] and applies a seeded,
//! deterministic [`FaultPlan`] (drop / duplicate / corrupt / delay /
//! sever specific frames) to outgoing traffic — the chaos-testing
//! entry point used by `actcomp run --fault <spec>`.

#![warn(missing_docs)]

mod ctrl;
mod error;
mod fault;
mod frame;
mod mpsc;
mod socket;
mod throttle;

pub use ctrl::{CtrlConn, CtrlListener};
pub use error::TransportError;
pub use fault::{FaultKind, FaultPlan, FaultTrigger, FaultyTransport, FrameFault, KillFault};
pub use frame::{crc32, Handshake, FRAME_OVERHEAD, HS_CHAN, PROTOCOL_VERSION};
pub use mpsc::{mpsc_world, MpscTransport};
pub use socket::{SocketOptions, SocketTransport};
pub use throttle::TokenBucket;

use std::time::Duration;

/// Which wire a [`Transport`] runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// In-process `std::sync::mpsc` channels (single-process runs).
    Mpsc,
    /// Unix domain sockets (multi-process, same host).
    Uds,
    /// TCP sockets (multi-process, loopback or real network).
    Tcp,
}

impl TransportKind {
    /// Parses a CLI spelling (`mpsc` | `uds` | `tcp`).
    pub fn parse(s: &str) -> Result<TransportKind, TransportError> {
        match s {
            "mpsc" => Ok(TransportKind::Mpsc),
            "uds" | "unix" => Ok(TransportKind::Uds),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(TransportError::UnknownTransport(other.to_string())),
        }
    }

    /// The canonical spelling.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Mpsc => "mpsc",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The sending end of one logical channel to one peer rank.
///
/// Frames sent on one `FrameTx` arrive on the matching receiver in
/// order; distinct channels to the same peer may interleave on the
/// wire but never reorder within a channel.
pub trait FrameTx: Send {
    /// Ships one frame. Blocks only for flow control (socket buffers,
    /// bandwidth throttle), never for a matching receiver.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Fault-injection hook: ships one frame whose integrity check
    /// fails at the receiver (a broken CRC trailer on the socket
    /// backends, a corrupt marker in-process), so the receive path's
    /// [`TransportError::FrameCorrupt`] handling can be exercised end
    /// to end. Backends without an integrity layer deliver the frame
    /// unchanged (the default).
    fn send_corrupt(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send(payload)
    }

    /// Fault-injection hook: hard-closes the underlying connection, as
    /// a cut cable would — subsequent sends fail and the peer's
    /// receivers wake with [`TransportError::PeerClosed`]. Backends
    /// with nothing to cut do nothing (the default).
    fn sever(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// The receiving end of one logical channel from one peer rank.
pub trait FrameRx: Send {
    /// Blocks until the next frame on this channel arrives.
    ///
    /// Returns [`TransportError::PeerClosed`] once the peer's
    /// connection is gone and every buffered frame has been drained.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Like [`FrameRx::recv`] but gives up after `timeout` with
    /// [`TransportError::Timeout`].
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError>;
}

/// One rank's endpoint of a fully-connected message fabric over
/// `world` ranks.
///
/// A channel is addressed by `(peer rank, chan id)`; opening the send
/// side on one rank and the receive side on the other yields an
/// ordered, reliable frame stream. Channel ids below [`HS_CHAN`] are
/// free for the application.
pub trait Transport: Send {
    /// The backend this endpoint runs over.
    fn kind(&self) -> TransportKind;

    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Total ranks in the fabric.
    fn world(&self) -> usize;

    /// Opens the sending end of channel `chan` towards rank `to`,
    /// establishing (and handshaking) the underlying connection if
    /// this is the first channel to that peer.
    fn open_send(&mut self, to: usize, chan: u16) -> Result<Box<dyn FrameTx>, TransportError>;

    /// Opens the receiving end of channel `chan` from rank `from`.
    /// Frames that arrived before the channel was opened are buffered
    /// and delivered first.
    fn open_recv(&mut self, from: usize, chan: u16) -> Result<Box<dyn FrameRx>, TransportError>;

    /// Gracefully shuts the endpoint down: stops accepting, closes
    /// this side's connections, and releases OS resources (sockets,
    /// socket files). Idempotent; also runs on drop.
    fn shutdown(&mut self);
}
