//! The GLUE evaluation metrics the paper reports (§4.3): accuracy, F1,
//! Matthews correlation, and Spearman rank correlation.

/// Fraction of exact matches between predictions and labels.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    check(preds.len(), labels.len());
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / preds.len() as f64
}

/// Binary F1 score with class `1` as positive (reported for QQP and MRPC).
///
/// Returns 0 when there are no predicted or actual positives.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn f1(preds: &[usize], labels: &[usize]) -> f64 {
    check(preds.len(), labels.len());
    let mut tp = 0f64;
    let mut fp = 0f64;
    let mut fne = 0f64;
    for (&p, &l) in preds.iter().zip(labels) {
        match (p, l) {
            (1, 1) => tp += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fne += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fne);
    2.0 * precision * recall / (precision + recall)
}

/// Matthews correlation coefficient for binary labels (reported for CoLA).
///
/// Returns 0 when any marginal is degenerate — the same convention that
/// produces the paper's `0.00` CoLA entries for collapsed models.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn matthews(preds: &[usize], labels: &[usize]) -> f64 {
    check(preds.len(), labels.len());
    let (mut tp, mut tn, mut fp, mut fne) = (0f64, 0f64, 0f64, 0f64);
    for (&p, &l) in preds.iter().zip(labels) {
        match (p, l) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fne += 1.0,
            _ => panic!("matthews expects binary labels, got ({p}, {l})"),
        }
    }
    let denom = ((tp + fp) * (tp + fne) * (tn + fp) * (tn + fne)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (tp * tn - fp * fne) / denom
}

/// Spearman rank correlation (reported for STS-B).
///
/// Ties receive their average rank.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are given.
pub fn spearman(preds: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "length mismatch");
    assert!(preds.len() >= 2, "need at least two points");
    pearson(&ranks(preds), &ranks(targets))
}

/// Pearson correlation of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are given.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least two points");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Average ranks (1-based), ties averaged.
fn ranks(xs: &[f32]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite scores"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

fn check(a: usize, b: usize) {
    assert_eq!(a, b, "prediction/label length mismatch");
    assert!(a > 0, "empty evaluation set");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn f1_known_case() {
        // tp=2, fp=1, fn=1 → p=2/3, r=2/3 → f1=2/3.
        let preds = [1, 1, 1, 0, 0];
        let labels = [1, 1, 0, 1, 0];
        assert!((f1(&preds, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_degenerate_is_zero() {
        assert_eq!(f1(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(f1(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn matthews_perfect_and_inverse() {
        assert!((matthews(&[1, 0, 1, 0], &[1, 0, 1, 0]) - 1.0).abs() < 1e-12);
        assert!((matthews(&[0, 1, 0, 1], &[1, 0, 1, 0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matthews_collapsed_predictor_is_zero() {
        // A model that always predicts one class scores 0 (the paper's
        // CoLA 0.00 rows).
        assert_eq!(matthews(&[1, 1, 1, 1], &[1, 0, 1, 0]), 0.0);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [10.0f32, 20.0, 25.0, 100.0]; // any increasing map
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0f32, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0f32, 1.0, 2.0, 3.0];
        let b = [1.0f32, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        accuracy(&[1], &[1, 2]);
    }
}
