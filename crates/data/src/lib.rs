//! # actcomp-data
//!
//! Synthetic datasets and metrics for the `actcomp` reproduction of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! The paper fine-tunes on the eight GLUE tasks and pre-trains on
//! Wikipedia + BooksCorpus. This crate substitutes:
//!
//! - [`glue`]: eight synthetic sequence tasks reusing each GLUE namesake's
//!   task type, metric, class balance and data-scarcity profile, with
//!   planted signals whose *character* (redundant keywords vs. fragile
//!   sequential constraints) mirrors what makes the real tasks robust or
//!   brittle under activation compression;
//! - [`pretrain`]: a Markov/Zipf corpus sampler plus BERT-style MLM
//!   masking;
//! - [`metrics`]: accuracy, F1, Matthews correlation, Spearman correlation
//!   — exactly the metrics the paper's accuracy tables report.

#![warn(missing_docs)]

pub mod glue;
pub mod metrics;
pub mod pretrain;

pub use glue::{Example, GlueTask, Label, Metric};
pub use pretrain::Corpus;
