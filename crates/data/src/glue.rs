//! Synthetic stand-ins for the eight GLUE tasks (§4.3).
//!
//! Real GLUE text is out of scope for a CPU reproduction, but the paper's
//! accuracy findings are *relative*: which compressors degrade which kind
//! of task. Each synthetic task plants a signal of a particular character
//! in random token sequences and reuses its GLUE namesake's task type,
//! metric, class balance, and data-scarcity profile:
//!
//! | task | type | metric | signal character |
//! |---|---|---|---|
//! | MNLI | 3-class | accuracy | redundant keyword mixture, large train set |
//! | QQP | binary | F1 | keyword mixture over two [`SEP`]-separated segments |
//! | SST-2 | binary | accuracy | redundant sentiment keywords (easy) |
//! | MRPC | binary | F1 | weaker keywords, small 2:1-imbalanced train set |
//! | CoLA | binary | Matthews | *sequential* constraint (A must be followed by B) |
//! | QNLI | binary | accuracy | question marker / answer marker pairing |
//! | RTE | binary | accuracy | weak signal, tiny train set (volatile, like the paper's) |
//! | STS-B | regression | Spearman | continuous keyword density |
//!
//! CoLA's sequential constraint and RTE's scarcity make them the fragile
//! tasks — exactly the two the paper singles out in §4.5.

use crate::metrics;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Token id of the `[CLS]` position every sequence starts with.
pub const CLS: usize = 0;
/// Token id of the `[SEP]` separator between segment halves.
pub const SEP: usize = 2;
/// First content token id (0..FIRST_CONTENT are reserved specials).
pub const FIRST_CONTENT: usize = 4;

/// The label of one example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Classification target.
    Class(usize),
    /// Regression target (STS-B style, in `[0, 5]`).
    Score(f32),
}

/// One tokenized example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Token ids, starting with [`CLS`], fixed length.
    pub tokens: Vec<usize>,
    /// Target.
    pub label: Label,
}

/// Evaluation metric of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Exact-match accuracy.
    Accuracy,
    /// Binary F1.
    F1,
    /// Matthews correlation coefficient.
    Matthews,
    /// Spearman rank correlation.
    Spearman,
}

impl Metric {
    /// Evaluates class predictions (classification metrics).
    ///
    /// # Panics
    ///
    /// Panics if called on [`Metric::Spearman`].
    pub fn eval_classes(&self, preds: &[usize], labels: &[usize]) -> f64 {
        match self {
            Metric::Accuracy => metrics::accuracy(preds, labels),
            Metric::F1 => metrics::f1(preds, labels),
            Metric::Matthews => metrics::matthews(preds, labels),
            Metric::Spearman => panic!("Spearman is a regression metric"),
        }
    }

    /// Evaluates regression predictions.
    ///
    /// # Panics
    ///
    /// Panics unless the metric is [`Metric::Spearman`].
    pub fn eval_scores(&self, preds: &[f32], targets: &[f32]) -> f64 {
        match self {
            Metric::Spearman => metrics::spearman(preds, targets),
            other => panic!("{other:?} is not a regression metric"),
        }
    }
}

/// One of the eight GLUE-analogue tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the GLUE names are self-describing
pub enum GlueTask {
    Mnli,
    Qqp,
    Sst2,
    Mrpc,
    Cola,
    Qnli,
    Rte,
    StsB,
}

impl GlueTask {
    /// All eight tasks, in the paper's table order.
    pub fn all() -> [GlueTask; 8] {
        use GlueTask::*;
        [Mnli, Qqp, Sst2, Mrpc, Cola, Qnli, Rte, StsB]
    }

    /// The paper's column label.
    pub fn name(&self) -> &'static str {
        match self {
            GlueTask::Mnli => "MNLI",
            GlueTask::Qqp => "QQP",
            GlueTask::Sst2 => "SST-2",
            GlueTask::Mrpc => "MRPC",
            GlueTask::Cola => "CoLA",
            GlueTask::Qnli => "QNLI",
            GlueTask::Rte => "RTE",
            GlueTask::StsB => "STS-B",
        }
    }

    /// Number of classes (1 for regression).
    pub fn num_classes(&self) -> usize {
        match self {
            GlueTask::Mnli => 3,
            GlueTask::StsB => 1,
            _ => 2,
        }
    }

    /// Whether the task is a regression.
    pub fn is_regression(&self) -> bool {
        matches!(self, GlueTask::StsB)
    }

    /// Reported metric.
    pub fn metric(&self) -> Metric {
        match self {
            GlueTask::Qqp | GlueTask::Mrpc => Metric::F1,
            GlueTask::Cola => Metric::Matthews,
            GlueTask::StsB => Metric::Spearman,
            _ => Metric::Accuracy,
        }
    }

    /// Training-set size (mirrors each task's relative scarcity).
    pub fn train_size(&self) -> usize {
        match self {
            GlueTask::Mnli | GlueTask::Qqp | GlueTask::Qnli | GlueTask::Sst2 => 512,
            GlueTask::StsB | GlueTask::Cola => 384,
            GlueTask::Mrpc => 256,
            GlueTask::Rte => 128,
        }
    }

    /// Held-out evaluation size.
    pub fn dev_size(&self) -> usize {
        match self {
            GlueTask::Rte => 96,
            _ => 192,
        }
    }

    /// Label-noise rate: the irreducible error that keeps even perfect
    /// models below 100 (mirroring each real task's headroom — the paper's
    /// baselines score ~86–95 on the easy tasks, ~56–62 CoLA Matthews).
    fn label_noise(&self) -> f64 {
        match self {
            GlueTask::Sst2 => 0.04,
            GlueTask::Mnli => 0.08,
            GlueTask::Qqp => 0.06,
            GlueTask::Mrpc => 0.09,
            GlueTask::Qnli => 0.06,
            GlueTask::Rte => 0.14,
            GlueTask::Cola => 0.10,
            GlueTask::StsB => 0.0, // regression noise added on the score
        }
    }

    /// Fraction of positions carrying class signal (task difficulty).
    fn signal_rate(&self) -> f64 {
        match self {
            GlueTask::Sst2 => 0.30,
            GlueTask::Mnli => 0.25,
            GlueTask::Qnli => 0.22,
            GlueTask::Qqp => 0.25,
            GlueTask::Mrpc => 0.24,
            GlueTask::Rte => 0.15,
            GlueTask::Cola | GlueTask::StsB => 0.25,
        }
    }

    /// Generates `(train, dev)` splits, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab` is too small (needs ≥ 24 content tokens) or
    /// `seq < 8`.
    pub fn generate(&self, seed: u64, vocab: usize, seq: usize) -> (Vec<Example>, Vec<Example>) {
        assert!(vocab >= FIRST_CONTENT + 24, "vocabulary too small: {vocab}");
        assert!(seq >= 8, "sequence length {seq} too short");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ task_salt(*self));
        let train = (0..self.train_size())
            .map(|_| self.sample(&mut rng, vocab, seq))
            .collect();
        let dev = (0..self.dev_size())
            .map(|_| self.sample(&mut rng, vocab, seq))
            .collect();
        (train, dev)
    }

    /// Samples one example (with the task's irreducible label noise).
    fn sample(&self, rng: &mut ChaCha8Rng, vocab: usize, seq: usize) -> Example {
        let mut ex = match self {
            GlueTask::Cola => sample_cola(rng, vocab, seq),
            GlueTask::StsB => sample_stsb(rng, vocab, seq, self.signal_rate()),
            GlueTask::Qqp | GlueTask::Mrpc => sample_paired_keywords(
                rng,
                vocab,
                seq,
                self.signal_rate(),
                if *self == GlueTask::Mrpc { 0.66 } else { 0.5 },
            ),
            _ => sample_keywords(rng, vocab, seq, self.num_classes(), self.signal_rate()),
        };
        match &mut ex.label {
            Label::Class(c) => {
                if rng.gen_bool(self.label_noise()) {
                    // Flip to a uniformly random *different* class.
                    *c = (*c + 1 + rng.gen_range(0..self.num_classes() - 1)) % self.num_classes();
                }
            }
            Label::Score(s) => {
                // Mild observation noise on the regression target.
                *s = (*s + rng.gen_range(-0.35f32..0.35)).clamp(0.0, 5.0);
            }
        }
        ex
    }
}

impl std::fmt::Display for GlueTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn task_salt(task: GlueTask) -> u64 {
    let index = GlueTask::all()
        .iter()
        .position(|t| *t == task)
        .expect("task in list") as u64;
    index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Class-`c` keyword pool: a disjoint 6-token band per class.
fn class_pool(c: usize) -> std::ops::Range<usize> {
    let lo = FIRST_CONTENT + c * 6;
    lo..lo + 6
}

/// Noise pool: content tokens above all class bands.
fn noise_token(rng: &mut ChaCha8Rng, vocab: usize) -> usize {
    rng.gen_range(FIRST_CONTENT + 18..vocab)
}

/// Keyword-mixture classification (MNLI/SST-2/QNLI/RTE shape).
fn sample_keywords(
    rng: &mut ChaCha8Rng,
    vocab: usize,
    seq: usize,
    classes: usize,
    rate: f64,
) -> Example {
    let y = rng.gen_range(0..classes);
    let mut tokens = vec![CLS];
    for _ in 1..seq {
        if rng.gen_bool(rate) {
            let pool = class_pool(y);
            tokens.push(rng.gen_range(pool));
        } else {
            tokens.push(noise_token(rng, vocab));
        }
    }
    Example {
        tokens,
        label: Label::Class(y),
    }
}

/// Paired-segment keyword task (QQP/MRPC): two [`SEP`]-separated
/// segments; positives plant "shared-topic" keywords in *both* segments,
/// negatives in neither. Keeps the two-segment input format and F1
/// metric of the paraphrase tasks at a signal strength the small model
/// can extract (a fully relational token-overlap signal is beyond an
/// 8-layer h=64 model in a few hundred steps).
fn sample_paired_keywords(
    rng: &mut ChaCha8Rng,
    vocab: usize,
    seq: usize,
    rate: f64,
    pos_prior: f64,
) -> Example {
    let y = rng.gen_bool(pos_prior) as usize;
    let half = (seq - 2) / 2;
    let mut tokens = vec![CLS];
    let emit = |rng: &mut ChaCha8Rng, n: usize, out: &mut Vec<usize>| {
        for _ in 0..n {
            if rng.gen_bool(rate) {
                out.push(rng.gen_range(class_pool(y)));
            } else {
                out.push(noise_token(rng, vocab));
            }
        }
    };
    emit(rng, half, &mut tokens);
    tokens.push(SEP);
    let rest = seq - tokens.len();
    emit(rng, rest, &mut tokens);
    Example {
        tokens,
        label: Label::Class(y),
    }
}

/// CoLA analogue: "grammatical" iff every occurrence of the trigger token
/// `A` is immediately followed by `B` — a *sequential* constraint that
/// needs positional information, making it the compression-fragile task.
fn sample_cola(rng: &mut ChaCha8Rng, vocab: usize, seq: usize) -> Example {
    let a = FIRST_CONTENT; // trigger
    let b = FIRST_CONTENT + 1; // required successor
    let y = rng.gen_bool(0.6) as usize; // mildly imbalanced, like CoLA
    let mut tokens = vec![CLS];
    let pairs = rng.gen_range(1..=3);
    let mut positions: Vec<usize> = (1..seq - 1).collect();
    positions.shuffle(rng);
    let mut slots: Vec<usize> = positions.into_iter().take(pairs).collect();
    slots.sort_unstable();
    // Avoid adjacent slots so pairs don't overlap.
    slots.dedup_by(|p, q| *p == *q + 1);
    for _ in 1..seq {
        tokens.push(noise_token(rng, vocab));
    }
    let violate = if y == 0 {
        rng.gen_range(0..slots.len())
    } else {
        usize::MAX
    };
    for (i, &p) in slots.iter().enumerate() {
        tokens[p] = a;
        tokens[p + 1] = if i == violate {
            noise_token(rng, vocab) // broken pair → unacceptable
        } else {
            b
        };
    }
    Example {
        tokens,
        label: Label::Class(y),
    }
}

/// STS-B analogue: score proportional to the density of a keyword band.
fn sample_stsb(rng: &mut ChaCha8Rng, vocab: usize, seq: usize, rate: f64) -> Example {
    let density: f64 = rng.gen_range(0.0..(2.0 * rate));
    let pool = class_pool(0);
    let mut hits = 0usize;
    let mut tokens = vec![CLS];
    for _ in 1..seq {
        if rng.gen_bool(density) {
            tokens.push(rng.gen_range(pool.clone()));
            hits += 1;
        } else {
            tokens.push(noise_token(rng, vocab));
        }
    }
    let score = 5.0 * hits as f32 / ((seq - 1) as f64 * 2.0 * rate) as f32;
    Example {
        tokens,
        label: Label::Score(score.min(5.0)),
    }
}

/// Extracts class labels from a slice of examples.
///
/// # Panics
///
/// Panics if any example is a regression example.
pub fn class_labels(examples: &[Example]) -> Vec<usize> {
    examples
        .iter()
        .map(|e| match e.label {
            Label::Class(c) => c,
            Label::Score(_) => panic!("regression example in classification task"),
        })
        .collect()
}

/// Extracts regression targets from a slice of examples.
///
/// # Panics
///
/// Panics if any example is a classification example.
pub fn score_labels(examples: &[Example]) -> Vec<f32> {
    examples
        .iter()
        .map(|e| match e.label {
            Label::Score(s) => s,
            Label::Class(_) => panic!("classification example in regression task"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        for task in GlueTask::all() {
            let (a, _) = task.generate(7, 64, 16);
            let (b, _) = task.generate(7, 64, 16);
            assert_eq!(a, b, "{task}");
            let (c, _) = task.generate(8, 64, 16);
            assert_ne!(a, c, "{task}");
        }
    }

    #[test]
    fn tasks_differ_under_same_seed() {
        let (m, _) = GlueTask::Mnli.generate(7, 64, 16);
        let (s, _) = GlueTask::Sst2.generate(7, 64, 16);
        assert_ne!(m[0].tokens, s[0].tokens);
    }

    #[test]
    fn shapes_and_specials() {
        for task in GlueTask::all() {
            let (train, dev) = task.generate(0, 64, 16);
            assert_eq!(train.len(), task.train_size());
            assert_eq!(dev.len(), task.dev_size());
            for e in &train {
                assert_eq!(e.tokens.len(), 16);
                assert_eq!(e.tokens[0], CLS);
                assert!(e.tokens.iter().all(|&t| t < 64));
            }
        }
    }

    #[test]
    fn labels_match_task_type() {
        for task in GlueTask::all() {
            let (train, _) = task.generate(1, 64, 16);
            for e in &train {
                match (task.is_regression(), e.label) {
                    (true, Label::Score(s)) => assert!((0.0..=5.0).contains(&s)),
                    (false, Label::Class(c)) => assert!(c < task.num_classes()),
                    _ => panic!("{task}: label type mismatch"),
                }
            }
        }
    }

    #[test]
    fn cola_constraint_holds_up_to_label_noise() {
        let (train, _) = GlueTask::Cola.generate(3, 64, 16);
        let a = FIRST_CONTENT;
        let b = FIRST_CONTENT + 1;
        let consistent = train
            .iter()
            .filter(|e| {
                let violated = e
                    .tokens
                    .iter()
                    .enumerate()
                    .any(|(i, &t)| t == a && e.tokens.get(i + 1) != Some(&b));
                matches!(
                    (violated, e.label),
                    (false, Label::Class(1)) | (true, Label::Class(0))
                )
            })
            .count();
        // ~10% label noise is planted; the rest must satisfy the rule.
        let rate = consistent as f64 / train.len() as f64;
        assert!((0.82..=0.97).contains(&rate), "consistency {rate}");
    }

    #[test]
    fn stsb_scores_correlate_with_keyword_density() {
        let (train, _) = GlueTask::StsB.generate(4, 64, 24);
        let pool = class_pool(0);
        let densities: Vec<f32> = train
            .iter()
            .map(|e| e.tokens.iter().filter(|t| pool.contains(t)).count() as f32)
            .collect();
        let scores = score_labels(&train);
        let corr = crate::metrics::spearman(&densities, &scores);
        // Observation noise on the target lowers the ceiling slightly.
        assert!(corr > 0.85, "density/score correlation {corr}");
    }

    #[test]
    fn keyword_tasks_are_linearly_separable_by_counts() {
        // A trivial count-based classifier must beat chance comfortably —
        // the planted signal is real.
        let (train, _) = GlueTask::Sst2.generate(5, 64, 24);
        let labels = class_labels(&train);
        let preds: Vec<usize> = train
            .iter()
            .map(|e| {
                let c0 = e
                    .tokens
                    .iter()
                    .filter(|t| class_pool(0).contains(t))
                    .count();
                let c1 = e
                    .tokens
                    .iter()
                    .filter(|t| class_pool(1).contains(t))
                    .count();
                (c1 > c0) as usize
            })
            .collect();
        let acc = metrics::accuracy(&preds, &labels);
        // Ceiling is 1 − label_noise ≈ 0.96 for SST-2.
        assert!(acc > 0.85, "count classifier accuracy {acc}");
    }

    #[test]
    fn paired_tasks_have_two_segments_and_are_separable() {
        let (train, _) = GlueTask::Qqp.generate(9, 64, 24);
        let labels = class_labels(&train);
        let preds: Vec<usize> = train
            .iter()
            .map(|e| {
                assert!(e.tokens.contains(&SEP), "missing segment separator");
                let hits = e
                    .tokens
                    .iter()
                    .filter(|t| class_pool(1).contains(t))
                    .count();
                (hits >= 2) as usize
            })
            .collect();
        let acc = metrics::accuracy(&preds, &labels);
        assert!(acc > 0.8, "keyword classifier accuracy {acc}");
    }

    #[test]
    fn rte_is_smallest() {
        assert!(GlueTask::Rte.train_size() < GlueTask::Mrpc.train_size());
        assert!(GlueTask::Mrpc.train_size() < GlueTask::Mnli.train_size());
    }
}
