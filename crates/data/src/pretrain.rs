//! Synthetic pre-training corpus and MLM masking (the Wikipedia +
//! BooksCorpus substitute, §4.4).
//!
//! The corpus sampler draws token streams from a first-order Markov chain
//! with Zipf-like marginals, so sequences have both unigram structure
//! (frequent tokens) and local bigram structure (predictable successors) —
//! enough signal for masked-language-model pre-training to produce
//! transferable representations over the same token space the
//! [`crate::glue`] tasks use.

use crate::glue::CLS;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Token id used for `[MASK]`.
pub const MASK: usize = 1;

/// A Markov-chain corpus sampler over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct Corpus {
    vocab: usize,
    /// Per-state cumulative transition distribution, `vocab × vocab`.
    cumulative: Vec<f64>,
    rng: ChaCha8Rng,
}

impl Corpus {
    /// Builds a corpus sampler with a random (but seed-deterministic)
    /// transition structure: each token has a few preferred successors on
    /// top of a Zipf base distribution.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 8`.
    pub fn new(seed: u64, vocab: usize) -> Self {
        assert!(vocab >= 8, "vocabulary too small: {vocab}");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Zipf base weights over content tokens (specials get ~0 weight).
        let base: Vec<f64> = (0..vocab)
            .map(|t| if t < 4 { 1e-6 } else { 1.0 / (t - 3) as f64 })
            .collect();
        let mut cumulative = Vec::with_capacity(vocab * vocab);
        for _state in 0..vocab {
            let mut weights = base.clone();
            // Each state strongly prefers 3 random successors (bigram
            // structure an MLM can learn).
            for _ in 0..3 {
                let succ = rng.gen_range(4..vocab);
                weights[succ] += 2.0;
            }
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &weights {
                acc += w / total;
                cumulative.push(acc);
            }
        }
        Corpus {
            vocab,
            cumulative,
            rng,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Samples one sequence of length `seq` starting with `[CLS]`.
    pub fn sample_sequence(&mut self, seq: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(seq);
        out.push(CLS);
        let mut state = self.rng.gen_range(4..self.vocab);
        for _ in 1..seq {
            let u: f64 = self.rng.gen();
            let row = &self.cumulative[state * self.vocab..(state + 1) * self.vocab];
            let next = row.partition_point(|&c| c < u).min(self.vocab - 1);
            out.push(next);
            state = next;
        }
        out
    }

    /// Samples a batch of `batch` sequences, concatenated row-major.
    pub fn sample_batch(&mut self, batch: usize, seq: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch * seq);
        for _ in 0..batch {
            out.extend(self.sample_sequence(seq));
        }
        out
    }
}

/// Applies BERT-style MLM masking: ~15% of (non-special) positions are
/// selected; of those, 80% become `[MASK]`, 10% a random token, 10% stay.
/// Returns the corrupted input and per-position prediction targets
/// (`Some(original)` at selected positions).
pub fn mask_tokens(
    rng: &mut ChaCha8Rng,
    tokens: &[usize],
    vocab: usize,
) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut input = tokens.to_vec();
    let mut labels = vec![None; tokens.len()];
    for i in 0..tokens.len() {
        if tokens[i] < 4 {
            continue; // never mask specials
        }
        if rng.gen_bool(0.15) {
            labels[i] = Some(tokens[i]);
            let r: f64 = rng.gen();
            if r < 0.8 {
                input[i] = MASK;
            } else if r < 0.9 {
                input[i] = rng.gen_range(4..vocab);
            } // else keep original
        }
    }
    (input, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_start_with_cls_and_stay_in_vocab() {
        let mut c = Corpus::new(0, 64);
        let s = c.sample_sequence(32);
        assert_eq!(s.len(), 32);
        assert_eq!(s[0], CLS);
        assert!(s.iter().all(|&t| t < 64));
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = Corpus::new(5, 64);
        let mut b = Corpus::new(5, 64);
        assert_eq!(a.sample_batch(4, 16), b.sample_batch(4, 16));
    }

    #[test]
    fn markov_structure_is_learnable() {
        // Preferred successors appear far more often than chance.
        let mut c = Corpus::new(1, 64);
        let mut bigrams = std::collections::HashMap::new();
        for _ in 0..200 {
            let s = c.sample_sequence(64);
            for w in s.windows(2) {
                *bigrams.entry((w[0], w[1])).or_insert(0usize) += 1;
            }
        }
        let max = bigrams.values().max().copied().unwrap_or(0);
        let total: usize = bigrams.values().sum();
        // Uniform bigrams over 60² pairs would put ~total/3600 in each.
        assert!(
            max as f64 > 10.0 * total as f64 / 3600.0,
            "no bigram structure: max {max} of {total}"
        );
    }

    #[test]
    fn masking_rate_and_specials() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut c = Corpus::new(3, 64);
        let tokens = c.sample_batch(16, 64);
        let (input, labels) = mask_tokens(&mut rng, &tokens, 64);
        assert_eq!(input.len(), tokens.len());
        let masked = labels.iter().flatten().count();
        let rate = masked as f64 / tokens.len() as f64;
        assert!((0.10..0.20).contains(&rate), "mask rate {rate}");
        // CLS positions never masked.
        for (i, &t) in tokens.iter().enumerate() {
            if t == CLS {
                assert!(labels[i].is_none());
            }
        }
        // Masked labels store the original token.
        for (i, l) in labels.iter().enumerate() {
            if let Some(orig) = l {
                assert_eq!(*orig, tokens[i]);
            }
        }
    }
}
