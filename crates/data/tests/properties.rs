//! Property-based tests of the dataset generators and metrics.

use actcomp_data::glue::{class_labels, GlueTask, Label, CLS};
use actcomp_data::metrics;
use actcomp_data::Corpus;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task generates within-vocab, CLS-prefixed, fixed-length
    /// sequences for any seed and reasonable geometry.
    #[test]
    fn generated_examples_are_well_formed(
        seed in 0u64..10_000,
        seq in prop::sample::select(vec![8usize, 12, 16, 24]),
    ) {
        for task in GlueTask::all() {
            let (train, dev) = task.generate(seed, 64, seq);
            prop_assert_eq!(train.len(), task.train_size());
            prop_assert_eq!(dev.len(), task.dev_size());
            for e in train.iter().chain(&dev) {
                prop_assert_eq!(e.tokens.len(), seq);
                prop_assert_eq!(e.tokens[0], CLS);
                prop_assert!(e.tokens.iter().all(|&t| t < 64));
                match e.label {
                    Label::Class(c) => prop_assert!(c < task.num_classes()),
                    Label::Score(s) => prop_assert!((0.0..=5.0).contains(&s)),
                }
            }
        }
    }

    /// Class marginals stay near the intended priors.
    #[test]
    fn class_balance_is_sane(seed in 0u64..1000) {
        let (train, _) = GlueTask::Sst2.generate(seed, 64, 16);
        let labels = class_labels(&train);
        let pos = labels.iter().filter(|&&c| c == 1).count() as f64 / labels.len() as f64;
        prop_assert!((0.35..0.65).contains(&pos), "SST-2 balance {pos}");

        let (train, _) = GlueTask::Mrpc.generate(seed, 64, 16);
        let labels = class_labels(&train);
        let pos = labels.iter().filter(|&&c| c == 1).count() as f64 / labels.len() as f64;
        prop_assert!((0.5..0.82).contains(&pos), "MRPC balance {pos}");
    }

    /// Accuracy is bounded, symmetric under label permutation of both
    /// arguments, and 1.0 iff predictions equal labels.
    #[test]
    fn accuracy_properties(labels in proptest::collection::vec(0usize..3, 1..40)) {
        prop_assert_eq!(metrics::accuracy(&labels, &labels), 1.0);
        let flipped: Vec<usize> = labels.iter().map(|&l| (l + 1) % 3).collect();
        prop_assert_eq!(metrics::accuracy(&flipped, &labels), 0.0);
    }

    /// Matthews is antisymmetric under prediction inversion and bounded.
    #[test]
    fn matthews_properties(labels in proptest::collection::vec(0usize..2, 8..64)) {
        // Need both classes present for a non-degenerate denominator.
        prop_assume!(labels.contains(&0) && labels.contains(&1));
        let m_perfect = metrics::matthews(&labels, &labels);
        prop_assert!((m_perfect - 1.0).abs() < 1e-12);
        let inverted: Vec<usize> = labels.iter().map(|&l| 1 - l).collect();
        let m_inv = metrics::matthews(&inverted, &labels);
        prop_assert!((m_inv + 1.0).abs() < 1e-12);
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariance(
        xs in proptest::collection::vec(-100.0f32..100.0, 4..32),
    ) {
        let distinct = xs.iter().map(|x| x.to_bits()).collect::<std::collections::HashSet<_>>();
        prop_assume!(distinct.len() == xs.len());
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 3.0).collect();
        let s = metrics::spearman(&ys, &xs);
        prop_assert!((s - 1.0).abs() < 1e-9, "spearman {s}");
    }

    /// Corpus sampling is deterministic per seed, in-vocab, and CLS-led.
    #[test]
    fn corpus_properties(seed in 0u64..1000, seq in 4usize..64) {
        let mut a = Corpus::new(seed, 64);
        let mut b = Corpus::new(seed, 64);
        let sa = a.sample_sequence(seq);
        prop_assert_eq!(&sa, &b.sample_sequence(seq));
        prop_assert_eq!(sa[0], CLS);
        prop_assert!(sa.iter().all(|&t| t < 64));
    }
}
