//! Property tests pinning the shape algebra to the ops themselves: the
//! output shape every `Shape`-level rule predicts must be the shape the
//! kernel actually produces. This is the ground truth `actcomp-check`'s
//! static shape pass relies on.

use actcomp_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn tensor_of(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, [m, n]))
}

fn dims_of(t: &Tensor) -> Vec<usize> {
    t.shape().dims().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_output_shape_is_m_by_n(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                     s in -2.0f32..2.0) {
        let a = Tensor::ones([m, k]).scale(s);
        let b = Tensor::ones([k, n]);
        let ab = a.matmul(&b);
        prop_assert_eq!(dims_of(&ab), vec![m, n]);
    }

    #[test]
    fn matmul_tn_output_shape(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        // Aᵀ B with A: [k, m], B: [k, n] → [m, n].
        let a = Tensor::ones([k, m]);
        let b = Tensor::ones([k, n]);
        let tn = a.matmul_tn(&b);
        prop_assert_eq!(dims_of(&tn), vec![m, n]);
    }

    #[test]
    fn matmul_nt_output_shape(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        // A Bᵀ with A: [m, k], B: [n, k] → [m, n].
        let a = Tensor::ones([m, k]);
        let b = Tensor::ones([n, k]);
        let nt = a.matmul_nt(&b);
        prop_assert_eq!(dims_of(&nt), vec![m, n]);
    }

    #[test]
    fn transpose_swaps_dims(a in tensor_of(3, 5)) {
        let t = a.transpose2();
        prop_assert_eq!(dims_of(&t), vec![5, 3]);
    }

    #[test]
    fn elementwise_ops_preserve_shape(a in tensor_of(4, 6), b in tensor_of(4, 6),
                                      s in -3.0f32..3.0) {
        let dims = dims_of(&a);
        let sum = a.add(&b);
        let diff = a.sub(&b);
        let scaled = a.scale(s);
        let soft = a.softmax_rows();
        prop_assert_eq!(dims_of(&sum), dims.clone());
        prop_assert_eq!(dims_of(&diff), dims.clone());
        prop_assert_eq!(dims_of(&scaled), dims.clone());
        prop_assert_eq!(dims_of(&soft), dims);
    }

    #[test]
    fn split_cols_shapes(parts in prop::sample::select(vec![1usize, 2, 3, 6]),
                         a in tensor_of(4, 6)) {
        let split = a.split_cols(parts);
        prop_assert_eq!(split.len(), parts);
        for part in &split {
            prop_assert_eq!(dims_of(part), vec![4, 6 / parts]);
        }
        let refs: Vec<&Tensor> = split.iter().collect();
        let joined = Tensor::concat_cols(&refs);
        prop_assert_eq!(dims_of(&joined), dims_of(&a));
    }

    #[test]
    fn split_rows_shapes(parts in prop::sample::select(vec![1usize, 2, 3, 6]),
                         a in tensor_of(6, 4)) {
        let split = a.split_rows(parts);
        prop_assert_eq!(split.len(), parts);
        for part in &split {
            prop_assert_eq!(dims_of(part), vec![6 / parts, 4]);
        }
        let refs: Vec<&Tensor> = split.iter().collect();
        let joined = Tensor::concat_rows(&refs);
        prop_assert_eq!(dims_of(&joined), dims_of(&a));
    }

    #[test]
    fn reshape_shape_and_len(a in tensor_of(4, 6)) {
        let len = a.shape().len();
        let b = a.reshape([2, 12]);
        prop_assert_eq!(dims_of(&b), vec![2, 12]);
        prop_assert_eq!(b.shape().len(), len);
        let flat = b.reshape([24]);
        prop_assert_eq!(dims_of(&flat), vec![24]);
    }

    #[test]
    fn strides_and_offset_agree_with_len(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
        let s = Shape::new(vec![d0, d1, d2]);
        // Walking every axis to its last index lands on the last element.
        prop_assert_eq!(s.offset(&[d0 - 1, d1 - 1, d2 - 1]), s.len() - 1);
        // The outermost stride spans everything below it.
        let strides = s.strides();
        prop_assert_eq!(strides[0] * d0, s.len());
        prop_assert_eq!(strides[2], 1);
    }
}
