//! Property-based tests for the blocked, multi-threaded GEMM kernels.
//!
//! Two invariants per kernel (`nn`, `tn`, `nt`):
//!
//! 1. **Correctness**: the blocked kernel matches the naive reference
//!    within a floating-point tolerance (the blocked kernel uses fused
//!    multiply-adds, so it is *not* bit-identical to the two-rounding
//!    naive loop).
//! 2. **Determinism**: results are **bit-identical** across pool sizes
//!    {1, 2, 8} and accumulate modes, because tile decomposition depends
//!    only on the shape, never on the worker count.
//!
//! Shapes are drawn to straddle the blocking constants (`MR = 4`,
//! `NR = 32`): dimensions deliberately include values that are not
//! multiples of any tile edge.
use actcomp_tensor::kernels::{self, reference};
use actcomp_tensor::Workspace;
use proptest::prelude::*;

/// Dimensions that straddle the MR=4 / NR=32 tile edges: exact tile
/// widths, off-by-ones around them, and ragged sizes in between.
fn dim() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![
        1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32, 33, 37, 40, 61, 64, 65, 70,
    ])
}

const POOLS: [usize; 3] = [1, 2, 8];

/// Runs `gemm` at every pool size, checks all results are bit-identical,
/// and returns the first.
fn across_pools(m: usize, n: usize, gemm: impl Fn(&mut [f32], usize, &mut Workspace)) -> Vec<f32> {
    let mut ws = Workspace::new();
    let mut first: Option<Vec<f32>> = None;
    for threads in POOLS {
        let mut out = vec![0.0f32; m * n];
        gemm(&mut out, threads, &mut ws);
        match &first {
            None => first = Some(out),
            Some(want) => {
                assert!(
                    want.iter()
                        .zip(&out)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "pool size {threads} changed bits"
                );
            }
        }
    }
    first.unwrap()
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() < 1e-3,
            "{what}[{i}]: blocked {g} vs reference {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_matches_reference_all_pools(
        m in dim(), k in dim(), n in dim(),
        seed in 1u64..u64::MAX,
    ) {
        let (a, b) = ab(seed, m * k, k * n);
        let got = across_pools(m, n, |out, threads, ws| {
            kernels::gemm_nn(out, false, &a, &b, m, k, n, threads, ws);
        });
        assert_close(&got, &reference::matmul(&a, &b, m, k, n), "nn");
    }

    #[test]
    fn gemm_tn_matches_reference_all_pools(
        m in dim(), k in dim(), n in dim(),
        seed in 1u64..u64::MAX,
    ) {
        let (a, b) = ab(seed, k * m, k * n);
        let got = across_pools(m, n, |out, threads, ws| {
            kernels::gemm_tn(out, false, &a, &b, k, m, n, threads, ws);
        });
        assert_close(&got, &reference::matmul_tn(&a, &b, k, m, n), "tn");
    }

    #[test]
    fn gemm_nt_matches_reference_all_pools(
        m in dim(), k in dim(), n in dim(),
        seed in 1u64..u64::MAX,
    ) {
        let (a, b) = ab(seed, m * k, n * k);
        let got = across_pools(m, n, |out, threads, ws| {
            kernels::gemm_nt(out, false, &a, &b, m, k, n, threads, ws);
        });
        assert_close(&got, &reference::matmul_nt(&a, &b, m, k, n), "nt");
    }

    #[test]
    fn accumulate_adds_to_existing_output(
        m in dim(), k in dim(), n in dim(),
        seed in 1u64..u64::MAX,
    ) {
        let (a, b) = ab(seed, m * k, k * n);
        let mut ws = Workspace::new();
        let mut fresh = vec![0.0f32; m * n];
        kernels::gemm_nn(&mut fresh, false, &a, &b, m, k, n, 1, &mut ws);
        // out starts at 1.0 everywhere; accumulate must add exactly the
        // product on top (same bits as fresh + 1.0 since `+=` sees the
        // identical accumulator value).
        let mut acc = vec![1.0f32; m * n];
        kernels::gemm_nn(&mut acc, true, &a, &b, m, k, n, 2, &mut ws);
        for i in 0..m * n {
            prop_assert_eq!((fresh[i] + 1.0).to_bits(), acc[i].to_bits());
        }
    }
}

/// Deterministic pseudo-random operand pair from a proptest-drawn seed.
///
/// Drawing the operands directly with `proptest::collection::vec` at the
/// largest shapes makes shrinking dominate the run time; a seeded
/// xorshift fill keeps case generation O(1) while proptest still explores
/// the shape space.
fn ab(seed: u64, alen: usize, blen: usize) -> (Vec<f32>, Vec<f32>) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-2, 2).
        (state >> 40) as f32 / (1u64 << 22) as f32 - 2.0
    };
    let a = (0..alen).map(|_| next()).collect();
    let b = (0..blen).map(|_| next()).collect();
    (a, b)
}
