//! Property-based tests for GEMM-epilogue fusion and the workspace
//! planner.
//!
//! Two families of invariants:
//!
//! 1. **Fusion bit-identity**: running a `GEMM + elementwise chain`
//!    graph fused ([`FusePolicy::Auto`] / [`FusePolicy::Forced`]) must
//!    produce bit-identical outputs to the unfused reference executor
//!    ([`FusePolicy::None`]), for every fusible chain op, chains up to
//!    length 3 with an optional mid-chain stash, shapes that straddle
//!    the MR=4 / NR=32 tile edges, and pool sizes {1, 2, 8}.
//! 2. **Planner soundness**: a multi-layer FFN/LN stack compiled with
//!    liveness-planned buffer reuse must (a) execute without ever
//!    reading a buffer outside its planned lifetime — `CompiledPlan::run`
//!    asserts this internally and panics on violation — (b) report a
//!    peak no larger than the hand-threaded `_ws` baseline (every
//!    non-input value materialized), and (c) stay bit-identical to the
//!    unfused plan of the same graph.
//!
//! The executor reads the pool size from the process-global
//! `pool::set_threads`, so every case takes `POOL_ENV` to serialize
//! pool reconfiguration within this test binary.

use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{CompiledPlan, FusePolicy, OutBind};
use actcomp_tensor::{pool, Workspace};
use proptest::prelude::*;
use std::sync::Mutex;

static POOL_ENV: Mutex<()> = Mutex::new(());

/// Dimensions straddling the MR=4 / NR=32 tile edges.
fn dim() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![1usize, 3, 4, 5, 8, 16, 31, 32, 33, 37, 64, 65])
}

const POOLS: [usize; 3] = [1, 2, 8];

/// One candidate epilogue-chain op; covers every fusible [`EwOp`]
/// variant (`actcomp_tensor::graph::EwOp`).
#[derive(Clone, Copy, Debug)]
enum COp {
    Bias,
    Residual,
    Mask,
    Scale,
    Gelu,
    Tanh,
    Relu,
    GeluGrad,
}

const ALL_OPS: [COp; 8] = [
    COp::Bias,
    COp::Residual,
    COp::Mask,
    COp::Scale,
    COp::Gelu,
    COp::Tanh,
    COp::Relu,
    COp::GeluGrad,
];

fn chain() -> impl Strategy<Value = Vec<COp>> {
    proptest::collection::vec(proptest::sample::select(ALL_OPS.to_vec()), 0..4)
}

/// Deterministic xorshift data in [-2, 2).
fn data(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 22) as f32 - 2.0
        })
        .collect()
}

/// Builds `x[m,k] @ w[k,n]` followed by `chain`, marking the chain value
/// after op `stash_at` as an extra output when requested. Returns the
/// graph, the GEMM's value id, and the generated input buffers.
fn build_chain_graph(
    m: usize,
    k: usize,
    n: usize,
    chain: &[COp],
    stash_at: Option<usize>,
    seed: u64,
) -> (Graph, usize, Vec<Vec<f32>>) {
    let mut g = Graph::new();
    let mut bufs: Vec<Vec<f32>> = Vec::new();
    let mut seed = seed;
    let mut fresh = |len: usize, bufs: &mut Vec<Vec<f32>>| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        bufs.push(data(seed, len));
    };
    let x = g.input(m, k);
    fresh(m * k, &mut bufs);
    let w = g.input(k, n);
    fresh(k * n, &mut bufs);
    let gemm = g.matmul(x, w);
    let mut cur = gemm;
    for (i, op) in chain.iter().enumerate() {
        cur = match op {
            COp::Bias => {
                let b = g.input_vec(n);
                fresh(n, &mut bufs);
                g.bias_add(cur, b)
            }
            COp::Residual => {
                let r = g.input(m, n);
                fresh(m * n, &mut bufs);
                g.residual_add(cur, r)
            }
            COp::Mask => {
                let mk = g.input(m, n);
                fresh(m * n, &mut bufs);
                g.mask_mul(cur, mk)
            }
            COp::Scale => g.scale(cur, 0.625),
            COp::Gelu => g.gelu(cur),
            COp::Tanh => g.tanh(cur),
            COp::Relu => g.relu(cur),
            COp::GeluGrad => {
                let h = g.input(m, n);
                fresh(m * n, &mut bufs);
                g.gelu_grad_mul(cur, h)
            }
        };
        if stash_at == Some(i) && cur != gemm {
            g.mark_output(cur);
        }
    }
    g.mark_output(cur);
    (g, gemm, bufs)
}

/// Runs `plan` on `bufs` with all-lease outputs and returns every
/// materialized output buffer.
fn run_plan(plan: &CompiledPlan, bufs: &[Vec<f32>], ws: &mut Workspace) -> Vec<Vec<f32>> {
    let inputs: Vec<&[f32]> = bufs.iter().map(Vec::as_slice).collect();
    let n_outs = plan.graph().output_ids().len();
    let outs = (0..n_outs).map(|_| OutBind::Lease).collect();
    plan.run(&inputs, outs, ws)
        .into_iter()
        .map(|o| o.expect("leased output"))
        .collect()
}

fn assert_bits_eq(want: &[Vec<f32>], got: &[Vec<f32>], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: output count");
    for (o, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(w.len(), g.len(), "{what}: output {o} length");
        for (i, (a, b)) in w.iter().zip(g).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{what}: output {o}[{i}]: {a} vs {b}"
            );
        }
    }
}

/// An L-layer FFN + residual + layernorm stack — the planner-soundness
/// workload (same shape as the bench's `planner_stack`).
fn build_stack(layers: usize, m: usize, h: usize, ff: usize, seed: u64) -> (Graph, Vec<Vec<f32>>) {
    let mut g = Graph::new();
    let mut bufs: Vec<Vec<f32>> = Vec::new();
    let mut seed = seed;
    let mut fresh = |len: usize, bufs: &mut Vec<Vec<f32>>| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        bufs.push(data(seed, len));
    };
    let x0 = g.input(m, h);
    fresh(m * h, &mut bufs);
    let mut x = x0;
    for _ in 0..layers {
        let w1 = g.input(h, ff);
        fresh(h * ff, &mut bufs);
        let b1 = g.input_vec(ff);
        fresh(ff, &mut bufs);
        let w2 = g.input(ff, h);
        fresh(ff * h, &mut bufs);
        let b2 = g.input_vec(h);
        fresh(h, &mut bufs);
        let gamma = g.input_vec(h);
        fresh(h, &mut bufs);
        let beta = g.input_vec(h);
        fresh(h, &mut bufs);
        let up = g.matmul(x, w1);
        let hb = g.bias_add(up, b1);
        let a = g.gelu(hb);
        let down = g.matmul(a, w2);
        let f = g.bias_add(down, b2);
        let s = g.residual_add(f, x);
        let (y, _, _) = g.layernorm(s, gamma, beta, 1e-5);
        x = y;
    }
    g.mark_output(x);
    (g, bufs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every fusible chain, fused under Auto and Forced, is bit-identical
    /// to the unfused reference executor at every pool size.
    #[test]
    fn fused_matches_unfused_bitwise_all_pools(
        m in dim(), k in dim(), n in dim(),
        ops in chain(),
        stash_sel in 0usize..8,
        seed in 1u64..u64::MAX,
    ) {
        let _env = POOL_ENV.lock().unwrap_or_else(|e| e.into_inner());
        // Values past the chain length mean "no mid-chain stash".
        let stash_at = (stash_sel < ops.len()).then_some(stash_sel);
        let (g, gemm, bufs) = build_chain_graph(m, k, n, &ops, stash_at, seed);
        let unfused = g.compile(FusePolicy::None).unwrap();
        let auto = g.compile(FusePolicy::Auto).unwrap();
        let forced = g.compile(FusePolicy::Forced(vec![gemm])).unwrap();
        // A chain with at least one op must actually have fused; an
        // empty chain has nothing to absorb.
        prop_assert!(ops.is_empty() || forced.fused_gemm_count() == 1);
        let mut ws = Workspace::new();
        pool::set_threads(1);
        let want = run_plan(&unfused, &bufs, &mut ws);
        for threads in POOLS {
            pool::set_threads(threads);
            assert_bits_eq(&want, &run_plan(&unfused, &bufs, &mut ws),
                           &format!("unfused pool={threads}"));
            assert_bits_eq(&want, &run_plan(&auto, &bufs, &mut ws),
                           &format!("auto pool={threads}"));
            assert_bits_eq(&want, &run_plan(&forced, &bufs, &mut ws),
                           &format!("forced pool={threads}"));
        }
        pool::set_threads(1);
    }

    /// The planner's buffer reuse is sound on deep stacks: execution
    /// never reads outside a planned lifetime (`run` panics internally
    /// if it does), peak bytes never exceed the materialize-everything
    /// `_ws` baseline, and reuse does not change a single bit.
    #[test]
    fn planner_is_sound_on_layer_stacks(
        layers in 1usize..=3,
        m in proptest::sample::select(vec![3usize, 8, 33]),
        h in proptest::sample::select(vec![8usize, 32, 40]),
        ff_mult in 1usize..=4,
        seed in 1u64..u64::MAX,
    ) {
        let _env = POOL_ENV.lock().unwrap_or_else(|e| e.into_inner());
        pool::set_threads(1);
        let (g, bufs) = build_stack(layers, m, h, h * ff_mult, seed);
        let unfused = g.compile(FusePolicy::None).unwrap();
        let fused = g.compile(FusePolicy::Auto).unwrap();
        for plan in [&unfused, &fused] {
            prop_assert!(
                plan.peak_workspace_bytes() <= plan.unfused_value_bytes(),
                "planned peak {} exceeds the materialize-everything baseline {}",
                plan.peak_workspace_bytes(),
                plan.unfused_value_bytes()
            );
        }
        // Fusion can only shrink the plan's footprint.
        prop_assert!(fused.peak_workspace_bytes() <= unfused.peak_workspace_bytes());
        let mut ws = Workspace::new();
        let want = run_plan(&unfused, &bufs, &mut ws);
        let got = run_plan(&fused, &bufs, &mut ws);
        assert_bits_eq(&want, &got, "stack fused vs unfused");
        for v in &want {
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
