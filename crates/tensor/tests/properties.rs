//! Property-based tests for the tensor algebra invariants.

use actcomp_tensor::{linalg, Tensor};
use proptest::prelude::*;

/// Strategy producing a tensor of the given shape with bounded finite values.
fn tensor_of(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, [m, n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor_of(3, 4), b in tensor_of(3, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_sub_round_trips(a in tensor_of(3, 4), b in tensor_of(3, 4)) {
        let back = a.add(&b).sub(&b);
        prop_assert!(back.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_of(2, 5), b in tensor_of(2, 5), s in -4.0f32..4.0) {
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_add(a in tensor_of(3, 4), b in tensor_of(4, 2), c in tensor_of(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_of(3, 4), b in tensor_of(4, 2)) {
        // (AB)ᵀ == Bᵀ Aᵀ
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn tn_nt_consistent_with_matmul(a in tensor_of(4, 3), b in tensor_of(4, 2)) {
        // Aᵀ B via the transpose-free kernel matches the explicit transpose.
        let tn = a.matmul_tn(&b);
        let explicit_tn = a.transpose2().matmul(&b);
        prop_assert!(tn.max_abs_diff(&explicit_tn) < 1e-3);

        // C Dᵀ via the transpose-free kernel matches the explicit transpose.
        let c = a.transpose2(); // [3, 4]
        let d = b.transpose2(); // [2, 4]
        let nt = c.matmul_nt(&d);
        let explicit_nt = c.matmul(&b);
        prop_assert!(nt.max_abs_diff(&explicit_nt) < 1e-3);
    }

    #[test]
    fn split_cols_concat_inverse(a in tensor_of(4, 6)) {
        let parts = a.split_cols(3);
        let refs: Vec<&Tensor> = parts.iter().collect();
        prop_assert_eq!(Tensor::concat_cols(&refs), a);
    }

    #[test]
    fn split_rows_concat_inverse(a in tensor_of(6, 4)) {
        let parts = a.split_rows(2);
        let refs: Vec<&Tensor> = parts.iter().collect();
        prop_assert_eq!(Tensor::concat_rows(&refs), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_of(4, 8)) {
        let p = a.softmax_rows();
        for i in 0..4 {
            let row: f32 = p.as_slice()[i * 8..(i + 1) * 8].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-4);
        }
        prop_assert!(p.min() >= 0.0);
    }

    #[test]
    fn svd_frobenius_preserved(a in tensor_of(6, 5)) {
        let sv = linalg::singular_values(&a);
        let sv_norm: f32 = sv.iter().map(|s| s * s).sum::<f32>().sqrt();
        let tol = 1e-3 * a.norm().max(1.0);
        prop_assert!((sv_norm - a.norm()).abs() <= tol);
    }

    #[test]
    fn svd_values_nonnegative_sorted(a in tensor_of(5, 5)) {
        let sv = linalg::singular_values(&a);
        for w in sv.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-5);
        }
        prop_assert!(sv.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn cumulative_energy_monotone(a in tensor_of(5, 5)) {
        let curve = linalg::cumulative_energy(&linalg::singular_values(&a));
        for w in curve.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6);
        }
        if let Some(&last) = curve.last() {
            prop_assert!((last - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_data(a in tensor_of(4, 6)) {
        let data = a.as_slice().to_vec();
        let b = a.reshape([6, 4]).reshape([2, 12]).reshape([24]);
        prop_assert_eq!(b.as_slice(), &data[..]);
    }
}
