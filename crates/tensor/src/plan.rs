//! Graph compilation: schedule, buffer-lifetime planning, and execution.
//!
//! [`Graph::compile`] turns a validated graph into a [`CompiledPlan`]:
//!
//! 1. the fusion pass ([`crate::fuse`]) folds elementwise chains into
//!    GEMM epilogues (per [`FusePolicy`]);
//! 2. the remaining nodes become a linear schedule of steps in
//!    topological (= construction) order;
//! 3. **liveness** is derived per value: defined at its producing step,
//!    dead after its last reading step (outputs live to the end). At run
//!    time every intermediate is leased from the caller's
//!    [`Workspace`] freelist arena at its definition and recycled the
//!    moment it dies, so the arena's high-water mark is the *planned*
//!    peak — reported statically by
//!    [`CompiledPlan::peak_workspace_bytes`] — instead of whatever a
//!    hand-threaded `_ws` call sequence happened to hold.
//!
//! A plan borrows nothing: it can be compiled once and executed many
//! times with different bindings ([`CompiledPlan::run`]), which is how
//! the per-head attention loop amortizes graph construction.
//!
//! # Bit-identity
//!
//! Execution is bit-identical across pool sizes (the kernel determinism
//! contract) **and** across [`FusePolicy::Auto`] vs [`FusePolicy::None`]:
//! a fused epilogue applies the same scalar ops per element, in the same
//! order, as the unfused per-op passes — `crates/tensor/tests` enforces
//! both properties with proptests.

use crate::fuse::{self, Fusion};
use crate::graph::{EwOp, GemmKind, Graph, GraphError, NodeKind, ValueId};
use crate::kernels::{self, EpOp, Epilogue};
use crate::ops;
use crate::pool;
use crate::workspace::Workspace;

/// How much fusion [`Graph::compile`] performs.
#[derive(Clone, Debug, Default)]
pub enum FusePolicy {
    /// Fuse every chain the legality rules allow (the default).
    #[default]
    Auto,
    /// Fuse nothing — the reference executor for bit-identity tests.
    None,
    /// Like `Auto`, but compilation fails with
    /// [`GraphError::IllegalFusion`] unless each listed GEMM absorbs its
    /// entire elementwise consumer chain. The fused benches and the
    /// `actcomp check` AC0903 diagnostic use this to make fusion a
    /// guarantee instead of a best effort.
    Forced(Vec<ValueId>),
}

/// One schedule entry; the payload is the producing node's id.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// A GEMM (possibly with a fused epilogue — looked up in the plan's
    /// [`Fusion`] record by node id).
    Gemm(ValueId),
    /// An unfused elementwise op.
    Ew(ValueId),
    /// Layer normalization forward (also produces its aux caches).
    LnForward(ValueId),
    /// Layer normalization backward (also produces `dγ`/`dβ`).
    LnBackward(ValueId),
    /// Column-sum reduction.
    SumAxis0(ValueId),
}

impl Step {
    fn node(self) -> ValueId {
        match self {
            Step::Gemm(v)
            | Step::Ew(v)
            | Step::LnForward(v)
            | Step::LnBackward(v)
            | Step::SumAxis0(v) => v,
        }
    }
}

/// How the caller binds one graph output at [`CompiledPlan::run`] time.
#[derive(Debug, Default)]
pub enum OutBind<'a> {
    /// Lease a buffer from the workspace and return it (the caller
    /// recycles it, typically via [`Workspace::recycle`]).
    #[default]
    Lease,
    /// Write the value into this caller-owned slice.
    Write(&'a mut [f32]),
    /// Accumulate the value into this caller-owned slice (`buf += v`) —
    /// parameter-gradient accumulation without a product temporary.
    /// Legal only for values produced by a GEMM's primary output, a
    /// [`SumAxis0`](crate::graph::NodeKind::SumAxis0) reduction, or a
    /// layernorm-backward `dγ`/`dβ` aux.
    Acc(&'a mut [f32]),
}

/// A compiled, reusable execution plan for a [`Graph`].
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    graph: Graph,
    fusion: Fusion,
    steps: Vec<Step>,
    /// Per value: the step index producing it (None for inputs and
    /// fused-away values).
    def_step: Vec<Option<usize>>,
    /// Per value: the last step index reading it (None if never read).
    last_use: Vec<Option<usize>>,
    /// Per value: marked as a graph output.
    is_output: Vec<bool>,
    /// Per value: materialized as a fused GEMM's stash.
    is_stash: Vec<bool>,
    peak_bytes: usize,
    unfused_bytes: usize,
}

impl Graph {
    /// Compiles the graph: validate, fuse, plan lifetimes.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from validation, and
    /// [`GraphError::IllegalFusion`] under [`FusePolicy::Forced`].
    ///
    /// # Panics
    ///
    /// Panics if an input value was marked as an output.
    pub fn compile(&self, policy: FusePolicy) -> Result<CompiledPlan, GraphError> {
        self.validate()?;
        for &o in self.output_ids() {
            assert!(
                !matches!(self.node_kind(o), NodeKind::Input),
                "input {o} marked as output"
            );
        }
        let fusion = match &policy {
            FusePolicy::None => Fusion::default(),
            FusePolicy::Auto => fuse::fuse(self, &[])?,
            FusePolicy::Forced(gemms) => fuse::fuse(self, gemms)?,
        };
        Ok(CompiledPlan::build(self.clone(), fusion))
    }
}

impl CompiledPlan {
    fn build(graph: Graph, fusion: Fusion) -> CompiledPlan {
        let n = graph.len();
        // Values that vanish into an epilogue, and chain-final/stash
        // values produced by their GEMM's step instead of their own.
        let mut fused_out = vec![false; n];
        for f in &fusion.gemms {
            for &a in &f.absorbed {
                fused_out[a] = true;
            }
            fused_out[f.out_value] = true;
            if let Some(s) = f.stash_value {
                if s != f.gemm {
                    fused_out[s] = true;
                }
            }
        }
        let mut steps = Vec::new();
        for (v, &fused) in fused_out.iter().enumerate() {
            if fused {
                continue;
            }
            match graph.node_kind(v) {
                NodeKind::Input | NodeKind::Aux { .. } => {}
                NodeKind::Gemm { .. } => steps.push(Step::Gemm(v)),
                NodeKind::Ew { .. } => steps.push(Step::Ew(v)),
                NodeKind::LnForward { .. } => steps.push(Step::LnForward(v)),
                NodeKind::LnBackward { .. } => steps.push(Step::LnBackward(v)),
                NodeKind::SumAxis0 { .. } => steps.push(Step::SumAxis0(v)),
            }
        }
        let mut def_step = vec![None; n];
        let mut last_use = vec![None; n];
        let mut is_output = vec![false; n];
        let mut is_stash = vec![false; n];
        for &o in graph.output_ids() {
            is_output[o] = true;
        }
        for f in &fusion.gemms {
            if let Some(s) = f.stash_value {
                is_stash[s] = true;
            }
        }
        for (idx, step) in steps.iter().enumerate() {
            for v in produced_values(&graph, &fusion, *step) {
                def_step[v] = Some(idx);
            }
            for v in read_values(&graph, &fusion, *step) {
                last_use[v] = Some(idx);
            }
        }
        // Simulate the leases: peak live bytes over the schedule, with
        // every output pessimistically assumed leased (OutBind::Lease).
        let bytes = |v: ValueId| {
            let (r, c) = graph.shape(v);
            r * c * std::mem::size_of::<f32>()
        };
        let mut live = 0usize;
        let mut peak = 0usize;
        for (idx, step) in steps.iter().enumerate() {
            let produced = produced_values(&graph, &fusion, *step);
            for &v in &produced {
                live += bytes(v);
            }
            peak = peak.max(live);
            for v in read_values(&graph, &fusion, *step) {
                if last_use[v] == Some(idx) && def_step[v].is_some() && !is_output[v] {
                    live -= bytes(v);
                }
            }
            for &v in &produced {
                if last_use[v].is_none() && !is_output[v] {
                    live -= bytes(v);
                }
            }
        }
        // The hand-threaded `_ws` baseline: PR 4-style layer code
        // materialized every intermediate of the *unfused* graph as its
        // own full buffer (activations, pre-activations, LN caches, …).
        let unfused_bytes = (0..n)
            .filter(|&v| !matches!(graph.node_kind(v), NodeKind::Input))
            .map(bytes)
            .sum();
        CompiledPlan {
            graph,
            fusion,
            steps,
            def_step,
            last_use,
            is_output,
            is_stash,
            peak_bytes: peak,
            unfused_bytes,
        }
    }

    /// Statically-planned peak of live leased bytes during a run (all
    /// outputs assumed leased). Kernel-internal packing scratch (B
    /// panels, `tn` staging) is transient per-GEMM and not part of the
    /// plan, exactly as it was not part of hand-threaded buffers.
    #[must_use]
    pub fn peak_workspace_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// The hand-threaded `_ws` baseline: total bytes of every non-input
    /// value of the unfused graph — what PR 4-style layer code
    /// materialized as separate full tensors.
    #[must_use]
    pub fn unfused_value_bytes(&self) -> usize {
        self.unfused_bytes
    }

    /// Number of GEMMs that fused at least one epilogue op.
    #[must_use]
    pub fn fused_gemm_count(&self) -> usize {
        self.fusion.gemms.len()
    }

    /// Number of schedule steps (after fusion).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The graph this plan executes.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Executes the plan. `inputs` bind positionally to the graph's
    /// declared inputs, `outs` to its marked outputs; the returned vector
    /// holds the leased buffer for every [`OutBind::Lease`] output (in
    /// output order, `None` for externally-bound ones). Intermediates are
    /// leased from `ws` and recycled at their planned last use.
    ///
    /// # Panics
    ///
    /// Panics on binding-count or length mismatches, on [`OutBind::Acc`]
    /// for a value whose producer cannot accumulate (see [`OutBind`]),
    /// and if the plan reads a buffer outside its planned lifetime (a
    /// planner bug, not a caller error).
    pub fn run(
        &self,
        inputs: &[&[f32]],
        outs: Vec<OutBind<'_>>,
        ws: &mut Workspace,
    ) -> Vec<Option<Vec<f32>>> {
        let g = &self.graph;
        assert_eq!(inputs.len(), g.input_ids().len(), "input binding count");
        assert_eq!(outs.len(), g.output_ids().len(), "output binding count");
        let mut slots: Vec<Slot<'_>> = (0..g.len()).map(|_| Slot::Empty).collect();
        for (&id, &src) in g.input_ids().iter().zip(inputs) {
            let (r, c) = g.shape(id);
            assert_eq!(src.len(), r * c, "input {id} length");
            slots[id] = Slot::In(src);
        }
        for (&id, bind) in g.output_ids().iter().zip(outs) {
            let (r, c) = g.shape(id);
            match bind {
                OutBind::Lease => {}
                OutBind::Write(buf) => {
                    assert_eq!(buf.len(), r * c, "output {id} length");
                    slots[id] = Slot::Ext { buf, acc: false };
                }
                OutBind::Acc(buf) => {
                    assert_eq!(buf.len(), r * c, "output {id} length");
                    assert!(
                        self.can_accumulate(id),
                        "OutBind::Acc on value {id}, whose producer cannot accumulate"
                    );
                    slots[id] = Slot::Ext { buf, acc: true };
                }
            }
        }
        for (idx, &step) in self.steps.iter().enumerate() {
            self.exec_step(step, idx, &mut slots, ws);
            // Recycle everything that just died.
            for v in read_values(g, &self.fusion, step) {
                if self.last_use[v] == Some(idx) && self.def_step[v].is_some() && !self.is_output[v]
                {
                    if let Slot::Owned(buf) = std::mem::replace(&mut slots[v], Slot::Empty) {
                        ws.recycle(buf);
                    }
                }
            }
            for v in produced_values(g, &self.fusion, step) {
                if self.last_use[v].is_none() && !self.is_output[v] {
                    if let Slot::Owned(buf) = std::mem::replace(&mut slots[v], Slot::Empty) {
                        ws.recycle(buf);
                    }
                }
            }
        }
        g.output_ids()
            .iter()
            .map(|&id| match std::mem::replace(&mut slots[id], Slot::Empty) {
                Slot::Owned(buf) => Some(buf),
                Slot::Ext { .. } => None,
                _ => panic!("output {id} was never produced"),
            })
            .collect()
    }

    /// True when `OutBind::Acc` is legal for output `v`.
    fn can_accumulate(&self, v: ValueId) -> bool {
        if self.is_stash[v] {
            return false;
        }
        // The value may be produced by its own node's step, or be the
        // chain-final value of a fused GEMM.
        if let Some(f) = self.fusion.gemms.iter().find(|f| f.out_value == v) {
            return f.stash_value != Some(v)
                && matches!(self.graph.node_kind(f.gemm), NodeKind::Gemm { .. });
        }
        match self.graph.node_kind(v) {
            NodeKind::Gemm { .. } | NodeKind::SumAxis0 { .. } => true,
            NodeKind::Aux { node, .. } => {
                matches!(self.graph.node_kind(node), NodeKind::LnBackward { .. })
            }
            _ => false,
        }
    }

    fn exec_step(&self, step: Step, idx: usize, slots: &mut [Slot<'_>], ws: &mut Workspace) {
        let g = &self.graph;
        let node = step.node();
        match step {
            Step::Gemm(_) => {
                let NodeKind::Gemm { kind, a, b } = g.node_kind(node) else {
                    unreachable!("gemm step on non-gemm node")
                };
                let fused = self.fusion.for_gemm(node);
                let out_id = fused.map_or(node, |f| f.out_value);
                let stash_id = fused.and_then(|f| f.stash_value);
                let (m, n) = g.shape(out_id);
                let k = match kind {
                    GemmKind::NN | GemmKind::NT => g.shape(a).1,
                    GemmKind::TN => g.shape(a).0,
                };
                let mut out = take_target(slots, out_id, m * n, ws);
                let mut stash = stash_id.map(|s| {
                    let (sr, sc) = g.shape(s);
                    take_target(slots, s, sr * sc, ws)
                });
                {
                    let asl = slot_slice(slots, a);
                    let bsl = slot_slice(slots, b);
                    let ep_ops: Vec<EpOp<'_>> = fused
                        .map(|f| f.ops.iter().map(|op| lower_ep(*op, slots)).collect())
                        .unwrap_or_default();
                    let ep = Epilogue {
                        ops: &ep_ops,
                        stash_after: fused.and_then(|f| f.stash_after),
                    };
                    let accumulate = out.acc();
                    let threads = pool::configured_threads();
                    let osl = out.slice_mut();
                    let ssl = stash.as_mut().map(|s| s.slice_mut());
                    match kind {
                        GemmKind::NN => kernels::gemm_nn_ep(
                            osl, accumulate, asl, bsl, m, k, n, threads, ws, &ep, ssl,
                        ),
                        GemmKind::TN => kernels::gemm_tn_ep(
                            osl, accumulate, asl, bsl, k, m, n, threads, ws, &ep, ssl,
                        ),
                        GemmKind::NT => kernels::gemm_nt_ep(
                            osl, accumulate, asl, bsl, m, k, n, threads, ws, &ep, ssl,
                        ),
                    }
                }
                restore(slots, out_id, out);
                if let (Some(s), Some(t)) = (stash_id, stash) {
                    restore(slots, s, t);
                }
            }
            Step::Ew(_) => {
                let NodeKind::Ew { x, op } = g.node_kind(node) else {
                    unreachable!("ew step on non-ew node")
                };
                let (m, n) = g.shape(node);
                // Steal the input buffer when this op is its last reader:
                // the single biggest liveness win, and bit-identical since
                // the same scalar runs either way.
                let can_steal = !self.is_output[x]
                    && self.last_use[x] == Some(idx)
                    && matches!(slots[x], Slot::Owned(_))
                    && matches!(slots[node], Slot::Empty)
                    && op.operand() != Some(x);
                if can_steal {
                    let Slot::Owned(mut buf) = std::mem::replace(&mut slots[x], Slot::Empty) else {
                        unreachable!("checked above")
                    };
                    apply_ew_inplace(op, &mut buf, n, slots);
                    slots[node] = Slot::Owned(buf);
                } else {
                    let mut out = take_target(slots, node, m * n, ws);
                    {
                        let acc = out.acc();
                        let src = slot_slice(slots, x);
                        apply_ew(op, src, out.slice_mut(), acc, n, slots);
                    }
                    restore(slots, node, out);
                }
            }
            Step::LnForward(_) => {
                let NodeKind::LnForward {
                    x,
                    gamma,
                    beta,
                    eps,
                } = g.node_kind(node)
                else {
                    unreachable!("ln step on non-ln node")
                };
                let (m, n) = g.shape(node);
                let aux = g.aux_of(node);
                let mut y = take_target(slots, node, m * n, ws);
                let mut xhat = take_aux(slots, &aux, 0, m * n, ws);
                let mut inv_std = take_aux(slots, &aux, 1, m, ws);
                {
                    let xs = slot_slice(slots, x);
                    let gsl = slot_slice(slots, gamma);
                    let bsl = slot_slice(slots, beta);
                    ln_forward(
                        xs,
                        gsl,
                        bsl,
                        eps,
                        m,
                        n,
                        y.slice_mut(),
                        xhat.slice_mut(),
                        inv_std.slice_mut(),
                    );
                }
                restore(slots, node, y);
                restore_aux(slots, &aux, 0, xhat, ws);
                restore_aux(slots, &aux, 1, inv_std, ws);
            }
            Step::LnBackward(_) => {
                let NodeKind::LnBackward {
                    dy,
                    xhat,
                    inv_std,
                    gamma,
                } = g.node_kind(node)
                else {
                    unreachable!("ln backward step on wrong node")
                };
                let (m, n) = g.shape(node);
                let aux = g.aux_of(node);
                let mut dx = take_target(slots, node, m * n, ws);
                let mut dgamma = take_aux(slots, &aux, 0, n, ws);
                let mut dbeta = take_aux(slots, &aux, 1, n, ws);
                {
                    let dgamma_acc = dgamma.acc();
                    let dbeta_acc = dbeta.acc();
                    let dys = slot_slice(slots, dy);
                    let xhs = slot_slice(slots, xhat);
                    let iss = slot_slice(slots, inv_std);
                    let gsl = slot_slice(slots, gamma);
                    ln_backward(
                        dys,
                        xhs,
                        iss,
                        gsl,
                        m,
                        n,
                        dx.slice_mut(),
                        dgamma.slice_mut(),
                        dgamma_acc,
                        dbeta.slice_mut(),
                        dbeta_acc,
                    );
                }
                restore(slots, node, dx);
                restore_aux(slots, &aux, 0, dgamma, ws);
                restore_aux(slots, &aux, 1, dbeta, ws);
            }
            Step::SumAxis0(_) => {
                let NodeKind::SumAxis0 { x } = g.node_kind(node) else {
                    unreachable!("sum step on non-sum node")
                };
                let (m, n) = g.shape(x);
                let mut out = take_target(slots, node, n, ws);
                {
                    let xs = slot_slice(slots, x);
                    let acc = out.acc();
                    let osl = out.slice_mut();
                    if !acc {
                        osl.fill(0.0);
                    }
                    for i in 0..m {
                        let row = &xs[i * n..][..n];
                        for (o, &v) in osl.iter_mut().zip(row) {
                            *o += v;
                        }
                    }
                }
                restore(slots, node, out);
            }
        }
    }
}

/// Value storage during a run.
enum Slot<'a> {
    /// Not yet produced, already recycled, or moved into a target.
    Empty,
    /// Leased from the workspace.
    Owned(Vec<f32>),
    /// Caller input.
    In(&'a [f32]),
    /// Caller output buffer (`acc`: accumulate instead of overwrite).
    Ext { buf: &'a mut [f32], acc: bool },
}

/// A buffer a step writes: leased or external.
enum Target<'a> {
    Owned(Vec<f32>),
    Ext {
        buf: &'a mut [f32],
        acc: bool,
    },
    /// Scratch for an aux value the graph never declared: computed, then
    /// recycled immediately.
    Temp(Vec<f32>),
}

impl Target<'_> {
    fn slice_mut(&mut self) -> &mut [f32] {
        match self {
            Target::Owned(b) | Target::Temp(b) => b,
            Target::Ext { buf, .. } => buf,
        }
    }

    fn acc(&self) -> bool {
        matches!(self, Target::Ext { acc: true, .. })
    }
}

fn take_target<'a>(
    slots: &mut [Slot<'a>],
    v: ValueId,
    len: usize,
    ws: &mut Workspace,
) -> Target<'a> {
    match std::mem::replace(&mut slots[v], Slot::Empty) {
        Slot::Empty => Target::Owned(ws.lease(len)),
        Slot::Ext { buf, acc } => Target::Ext { buf, acc },
        Slot::Owned(_) | Slot::In(_) => panic!("value {v} produced twice"),
    }
}

fn restore<'a>(slots: &mut [Slot<'a>], v: ValueId, t: Target<'a>) {
    match t {
        Target::Owned(b) => slots[v] = Slot::Owned(b),
        Target::Ext { buf, acc } => slots[v] = Slot::Ext { buf, acc },
        Target::Temp(_) => unreachable!("temps are not slot-backed"),
    }
}

fn take_aux<'a>(
    slots: &mut [Slot<'a>],
    aux: &[ValueId],
    slot: usize,
    len: usize,
    ws: &mut Workspace,
) -> Target<'a> {
    match aux.get(slot) {
        Some(&v) => take_target(slots, v, len, ws),
        None => Target::Temp(ws.lease(len)),
    }
}

fn restore_aux<'a>(
    slots: &mut [Slot<'a>],
    aux: &[ValueId],
    slot: usize,
    t: Target<'a>,
    ws: &mut Workspace,
) {
    match (aux.get(slot), t) {
        (_, Target::Temp(b)) => ws.recycle(b),
        (Some(&v), t) => restore(slots, v, t),
        (None, Target::Owned(b)) => ws.recycle(b),
        (None, Target::Ext { .. }) => unreachable!("ext target without an aux value"),
    }
}

fn slot_slice<'s>(slots: &'s [Slot<'_>], v: ValueId) -> &'s [f32] {
    match &slots[v] {
        Slot::Owned(b) => b,
        Slot::In(s) => s,
        Slot::Ext { buf, .. } => buf,
        Slot::Empty => panic!("value {v} read outside its planned lifetime"),
    }
}

/// Lowers a graph elementwise op to a kernel epilogue op by resolving its
/// operand to a slice.
fn lower_ep<'s>(op: EwOp, slots: &'s [Slot<'_>]) -> EpOp<'s> {
    match op {
        EwOp::BiasAdd(v) => EpOp::BiasAdd(slot_slice(slots, v)),
        EwOp::ResidualAdd(v) => EpOp::ResidualAdd(slot_slice(slots, v)),
        EwOp::MaskMul(v) => EpOp::MaskMul(slot_slice(slots, v)),
        EwOp::Scale(s) => EpOp::Scale(s),
        EwOp::Gelu => EpOp::Gelu,
        EwOp::Tanh => EpOp::Tanh,
        EwOp::Relu => EpOp::Relu,
        EwOp::GeluGradMul(v) => EpOp::GeluGradMul(slot_slice(slots, v)),
    }
}

/// The scalar for one elementwise op — the *same* function the fused
/// epilogue applies per element, which is what makes fused and unfused
/// execution bit-identical.
#[inline(always)]
/// Applies `op` from `src` into `dst`. Dispatches once per pass and
/// runs a tight per-arm loop (row-chunked for the per-column bias, so
/// no per-element index modulo) that the autovectorizer can widen; each
/// arm computes exactly the same scalar as the GEMM epilogue's
/// `EpOp::apply`, in the same element order, so unfused execution stays
/// bit-identical to fused.
fn apply_ew(op: EwOp, src: &[f32], dst: &mut [f32], acc: bool, cols: usize, slots: &[Slot<'_>]) {
    assert!(!acc, "OutBind::Acc is not legal for elementwise outputs");
    let operand = op.operand().map(|v| slot_slice(slots, v));
    match op {
        EwOp::BiasAdd(_) => {
            let b = operand.expect("bias operand");
            for (drow, srow) in dst.chunks_mut(cols).zip(src.chunks(cols)) {
                for ((d, &s), &bv) in drow.iter_mut().zip(srow).zip(b) {
                    *d = s + bv;
                }
            }
        }
        EwOp::ResidualAdd(_) => {
            let r = operand.expect("residual operand");
            for ((d, &s), &rv) in dst.iter_mut().zip(src).zip(r) {
                *d = s + rv;
            }
        }
        EwOp::MaskMul(_) => {
            let mk = operand.expect("mask operand");
            for ((d, &s), &mv) in dst.iter_mut().zip(src).zip(mk) {
                *d = s * mv;
            }
        }
        EwOp::Scale(sc) => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s * sc;
            }
        }
        EwOp::Gelu => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = ops::gelu(s);
            }
        }
        EwOp::Tanh => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = ops::fast_tanh(s);
            }
        }
        EwOp::Relu => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s.max(0.0);
            }
        }
        EwOp::GeluGradMul(_) => {
            let h = operand.expect("gelu grad operand");
            for ((d, &s), &hv) in dst.iter_mut().zip(src).zip(h) {
                *d = s * ops::gelu_grad(hv);
            }
        }
    }
}

/// In-place variant of [`apply_ew`], same per-arm loops.
fn apply_ew_inplace(op: EwOp, buf: &mut [f32], cols: usize, slots: &[Slot<'_>]) {
    let operand = op.operand().map(|v| slot_slice(slots, v));
    match op {
        EwOp::BiasAdd(_) => {
            let b = operand.expect("bias operand");
            for row in buf.chunks_mut(cols) {
                for (v, &bv) in row.iter_mut().zip(b) {
                    *v += bv;
                }
            }
        }
        EwOp::ResidualAdd(_) => {
            let r = operand.expect("residual operand");
            for (v, &rv) in buf.iter_mut().zip(r) {
                *v += rv;
            }
        }
        EwOp::MaskMul(_) => {
            let mk = operand.expect("mask operand");
            for (v, &mv) in buf.iter_mut().zip(mk) {
                *v *= mv;
            }
        }
        EwOp::Scale(sc) => {
            for v in buf.iter_mut() {
                *v *= sc;
            }
        }
        EwOp::Gelu => {
            for v in buf.iter_mut() {
                *v = ops::gelu(*v);
            }
        }
        EwOp::Tanh => {
            for v in buf.iter_mut() {
                *v = ops::fast_tanh(*v);
            }
        }
        EwOp::Relu => {
            for v in buf.iter_mut() {
                *v = v.max(0.0);
            }
        }
        EwOp::GeluGradMul(_) => {
            let h = operand.expect("gelu grad operand");
            for (v, &hv) in buf.iter_mut().zip(h) {
                *v *= ops::gelu_grad(hv);
            }
        }
    }
}

/// Layer normalization forward — the exact arithmetic of
/// `actcomp-nn`'s hand-written loop (two-pass population moments, then
/// one fused normalize/scale/shift pass), so graph execution is
/// bit-identical to what the layers computed before.
#[allow(clippy::too_many_arguments)]
fn ln_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    m: usize,
    n: usize,
    y: &mut [f32],
    xhat: &mut [f32],
    inv_std: &mut [f32],
) {
    for i in 0..m {
        let row = &x[i * n..][..n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let is = 1.0 / (var + eps).sqrt();
        inv_std[i] = is;
        for j in 0..n {
            let xh = (row[j] - mean) * is;
            xhat[i * n + j] = xh;
            y[i * n + j] = xh * gamma[j] + beta[j];
        }
    }
}

/// Layer normalization backward — same formulas (and accumulation order)
/// as the hand-written layer: `dx = 1/σ · (dŷ − (Σdŷ + x̂·Σ(dŷ⊙x̂))/n)`
/// with `dŷ = dy ⊙ γ`; `dγ = Σ_rows dy ⊙ x̂`; `dβ = Σ_rows dy`.
#[allow(clippy::too_many_arguments)]
fn ln_backward(
    dy: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    m: usize,
    n: usize,
    dx: &mut [f32],
    dgamma: &mut [f32],
    dgamma_acc: bool,
    dbeta: &mut [f32],
    dbeta_acc: bool,
) {
    if !dgamma_acc {
        dgamma.fill(0.0);
    }
    if !dbeta_acc {
        dbeta.fill(0.0);
    }
    for i in 0..m {
        let row_dy = &dy[i * n..][..n];
        let row_xh = &xhat[i * n..][..n];
        for j in 0..n {
            dgamma[j] += row_dy[j] * row_xh[j];
            dbeta[j] += row_dy[j];
        }
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for j in 0..n {
            let dyh = row_dy[j] * gamma[j];
            s1 += dyh;
            s2 += dyh * row_xh[j];
        }
        let is = inv_std[i];
        for j in 0..n {
            let dyh = row_dy[j] * gamma[j];
            dx[i * n + j] = is * (dyh - (s1 + row_xh[j] * s2) / n as f32);
        }
    }
}

/// The values a step defines (buffers it writes).
fn produced_values(g: &Graph, fusion: &Fusion, step: Step) -> Vec<ValueId> {
    let node = step.node();
    match step {
        Step::Gemm(_) => match fusion.for_gemm(node) {
            Some(f) => {
                let mut v = vec![f.out_value];
                if let Some(s) = f.stash_value {
                    v.push(s);
                }
                v
            }
            None => vec![node],
        },
        Step::Ew(_) | Step::SumAxis0(_) => vec![node],
        Step::LnForward(_) | Step::LnBackward(_) => {
            let mut v = vec![node];
            v.extend(g.aux_of(node));
            v
        }
    }
}

/// The values a step reads.
fn read_values(g: &Graph, fusion: &Fusion, step: Step) -> Vec<ValueId> {
    let node = step.node();
    let mut reads = g.operands_of(node);
    if let Step::Gemm(_) = step {
        if let Some(f) = fusion.for_gemm(node) {
            for op in &f.ops {
                if let Some(o) = op.operand() {
                    reads.push(o);
                }
            }
        }
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 7 + 3) % 23) as f32 - 11.0) * scale)
            .collect()
    }

    /// ffn-up style segment: gemm + bias + gelu, pre-activation stashed.
    fn ffn_up_graph(m: usize, k: usize, n: usize) -> (Graph, [usize; 2]) {
        let mut g = Graph::new();
        let x = g.input(m, k);
        let w = g.input(k, n);
        let b = g.input_vec(n);
        let y = g.matmul(x, w);
        let h = g.bias_add(y, b);
        let a = g.gelu(h);
        g.mark_output(a);
        g.mark_output(h);
        let _ = x;
        (g, [a, h])
    }

    #[test]
    fn fused_and_unfused_runs_are_bit_identical() {
        let (m, k, n) = (13, 9, 41);
        let (g, _) = ffn_up_graph(m, k, n);
        let x = seq(m * k, 0.25);
        let w = seq(k * n, 0.125);
        let b = seq(n, 0.5);
        let mut ws = Workspace::new();
        let fused = g.compile(FusePolicy::Auto).unwrap();
        assert_eq!(fused.fused_gemm_count(), 1);
        let unfused = g.compile(FusePolicy::None).unwrap();
        assert_eq!(unfused.fused_gemm_count(), 0);
        let rf = fused.run(&[&x, &w, &b], vec![OutBind::Lease, OutBind::Lease], &mut ws);
        let ru = unfused.run(&[&x, &w, &b], vec![OutBind::Lease, OutBind::Lease], &mut ws);
        for (a, b) in rf.iter().zip(&ru) {
            assert_eq!(a.as_deref(), b.as_deref());
        }
    }

    #[test]
    fn planner_peak_is_at_most_the_unfused_baseline() {
        let (g, _) = ffn_up_graph(32, 16, 24);
        for policy in [FusePolicy::Auto, FusePolicy::None] {
            let p = g.compile(policy).unwrap();
            assert!(
                p.peak_workspace_bytes() <= p.unfused_value_bytes(),
                "peak {} > baseline {}",
                p.peak_workspace_bytes(),
                p.unfused_value_bytes()
            );
        }
    }

    #[test]
    fn acc_binding_accumulates_like_add_assign() {
        let (m, k, n) = (6, 5, 7);
        let mut g = Graph::new();
        let x = g.input(k, m); // [k, m] for tn
        let dy = g.input(k, n);
        let dw = g.matmul_tn(x, dy);
        g.mark_output(dw);
        let xs = seq(k * m, 0.5);
        let dys = seq(k * n, 0.25);
        let mut ws = Workspace::new();
        let plan = g.compile(FusePolicy::Auto).unwrap();
        let mut grad = seq(m * n, 1.0);
        let base = grad.clone();
        let r = plan.run(&[&xs, &dys], vec![OutBind::Acc(&mut grad)], &mut ws);
        assert!(r[0].is_none());
        let fresh = plan.run(&[&xs, &dys], vec![OutBind::Lease], &mut ws);
        let fresh = fresh[0].as_ref().unwrap();
        for i in 0..m * n {
            assert_eq!(grad[i], base[i] + fresh[i], "accumulate semantics");
        }
    }

    #[test]
    fn layernorm_roundtrip_matches_hand_formula() {
        let (m, n) = (5, 8);
        let mut g = Graph::new();
        let x = g.input(m, n);
        let gamma = g.input_vec(n);
        let beta = g.input_vec(n);
        let (y, xhat, inv_std) = g.layernorm(x, gamma, beta, 1e-5);
        g.mark_output(y);
        g.mark_output(xhat);
        g.mark_output(inv_std);
        let xs = seq(m * n, 0.3);
        let gs = seq(n, 0.1).iter().map(|v| v + 1.0).collect::<Vec<_>>();
        let bs = seq(n, 0.05);
        let mut ws = Workspace::new();
        let plan = g.compile(FusePolicy::Auto).unwrap();
        let r = plan.run(
            &[&xs, &gs, &bs],
            vec![OutBind::Lease, OutBind::Lease, OutBind::Lease],
            &mut ws,
        );
        let ys = r[0].as_ref().unwrap();
        // Row 0 by hand.
        let row = &xs[..n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let is = 1.0 / (var + 1e-5f32).sqrt();
        for j in 0..n {
            let want = (row[j] - mean) * is * gs[j] + bs[j];
            assert_eq!(ys[j], want, "j={j}");
        }
        assert_eq!(r[2].as_ref().unwrap()[0], is);
        let _ = (y, xhat, inv_std);
    }

    #[test]
    fn write_binding_lands_in_caller_buffer() {
        let (m, k, n) = (4, 3, 5);
        let mut g = Graph::new();
        let a = g.input(m, k);
        let b = g.input(k, n);
        let y = g.matmul(a, b);
        g.mark_output(y);
        let plan = g.compile(FusePolicy::Auto).unwrap();
        let av = seq(m * k, 0.5);
        let bv = seq(k * n, 0.5);
        let mut ws = Workspace::new();
        let mut ext = vec![9.0f32; m * n];
        let r = plan.run(&[&av, &bv], vec![OutBind::Write(&mut ext)], &mut ws);
        assert!(r[0].is_none());
        let want = kernels::reference::matmul(&av, &bv, m, k, n);
        for i in 0..m * n {
            assert!((ext[i] - want[i]).abs() < 1e-4);
        }
    }
}
