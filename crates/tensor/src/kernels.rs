//! Cache-blocked, register-tiled GEMM kernels with fusable epilogues.
//!
//! All three matmul variants (`A@B`, `Aᵀ@B`, `A@Bᵀ`) funnel into one
//! blocked core:
//!
//! - `B` is **packed** into column panels of [`NR`] columns, laid out
//!   `[j_tile][p][NR]` and zero-padded on the ragged edge, so the inner
//!   loop always reads one contiguous `NR`-wide row per `k` step. Panels
//!   are 64-byte aligned inside their leased buffer — each panel row is
//!   a whole number of cache lines, so full-width vector loads never
//!   split a line (measured ≈10% on 512³).
//! - `A` is **streamed row-major** from the caller's tensor: the
//!   micro-kernel reads its [`MR`] multipliers from `MR` parallel row
//!   streams (`A[m,k]`). The `tn` variant (`A[k,m]`, the weight-gradient
//!   shape) first stages `Aᵀ` into a row-major scratch panel — one
//!   `O(m·k)` blocked-transpose pass against an `O(m·k·n)` product —
//!   because streaming column-major `A` cost a strided cache-line touch
//!   per `k` step and left `tn` ~30% behind `nn` (55.5 vs 79.5 GFLOP/s
//!   at 512³ in `BENCH_kernels.json`). Only the ragged last row-tile
//!   (when `m % MR != 0`) is additionally staged into a small
//!   zero-padded scratch tile.
//! - The `j` dimension is **cache-blocked** in groups of [`NC_TILES`]
//!   panels: each thread sweeps all of its row tiles against one
//!   `k × NC` slab of packed `B` before moving to the next slab, so a
//!   slab is read once per row-chunk sweep instead of the whole packed
//!   `B` (up to several MB at FFN widths) being re-read per row tile.
//!
//! The micro-kernel keeps an `MR × NR` accumulator block in registers;
//! its inner loop is an explicit unrolled pass over one `NR`-wide panel
//! row with a constant trip count, which the autovectorizer reliably
//! turns into groups of 8-wide (AVX2/NEON) or 16-wide (AVX-512) SIMD
//! fmadds (see the private `fmadd` helper's cfg gate and
//! `.cargo/config.toml`'s `target-cpu=native`).
//!
//! # Epilogues
//!
//! Every kernel takes an [`Epilogue`]: a short chain of elementwise ops
//! ([`EpOp`] — bias add, GELU/tanh/ReLU, scale, residual add, dropout-mask
//! multiply, GELU-gradient multiply) applied to each accumulator tile
//! **while it is still in registers**, instead of writing the tile and
//! re-reading the whole output once per elementwise op. An optional
//! *stash* buffer receives the value after a chosen prefix of the chain
//! (e.g. the pre-activation of a fused `linear+bias+GELU`), so backward
//! passes that need the intermediate still get it in the same single
//! output pass. The op-graph fusion pass in [`crate::fuse`] decides which
//! chains are folded; the legality rules live there.
//!
//! # Determinism contract
//!
//! Every output element is produced by exactly one micro-kernel call that
//! accumulates over `p = 0..k` in strictly increasing order, and the tile
//! decomposition depends only on the matrix shape — never on the thread
//! count or runtime load. Epilogue ops are pure per-element functions of
//! the accumulated value and the element's `(i, j)` coordinates, applied
//! in chain order after accumulation — exactly the value the unfused
//! path computes by running the same ops as separate output passes.
//! Results are therefore **bit-identical for every pool size** (1, 2,
//! 8, ...) *and* bit-identical between fused and unfused execution of
//! the same op chain. They are *not* bit-identical to the naive
//! reference kernels in [`reference`](mod@reference) on FMA hardware, because fused
//! multiply-adds round once instead of twice; tests compare against the
//! reference with a tolerance and across pool sizes exactly.

use crate::ops;
use crate::pool;
use crate::workspace::Workspace;

/// Rows per register tile of `A` / the output.
pub const MR: usize = 4;
/// Columns per packed panel of `B` / register tile of the output.
pub const NR: usize = 32;
/// Packed-`B` panels per cache block of the `j` loop: each thread sweeps
/// its whole row range against one `k × NC_TILES·NR` slab before moving
/// on, keeping the slab L2-resident (256 columns = 1&nbsp;KB per `k` step).
pub const NC_TILES: usize = 8;
/// `f32`s per 64-byte cache line; packed `B` panels are aligned to this.
const LINE_F32S: usize = 16;
/// Spawn threads only when each chunk gets at least this many flops.
const GRAIN_FLOPS: usize = 1 << 20;

/// One elementwise step of a GEMM epilogue, applied per output element
/// after accumulation (and after the `+= existing` add when the kernel
/// runs in accumulate mode).
///
/// Operand slices are row-major over the full `[m, n]` output for the
/// full-shape ops and length-`n` for the per-column ops; `apply` receives
/// the element's flat index `i·n + j` and column `j` so each op can
/// address its operand. Ops are `Copy` borrows — building an epilogue
/// allocates nothing.
#[derive(Clone, Copy)]
pub enum EpOp<'a> {
    /// `v + bias[j]` — per-output-column bias.
    BiasAdd(&'a [f32]),
    /// `v + other[i·n + j]` — residual add against a full `[m, n]` operand.
    ResidualAdd(&'a [f32]),
    /// `v · other[i·n + j]` — dropout-mask (or any elementwise) multiply.
    MaskMul(&'a [f32]),
    /// `v · s` — constant scale (attention `1/√d`).
    Scale(f32),
    /// `gelu(v)` (tanh approximation, [`ops::gelu`]).
    Gelu,
    /// `tanh(v)` ([`ops::fast_tanh`], the same scalar the unfused path uses).
    Tanh,
    /// `max(v, 0)`.
    Relu,
    /// `v · gelu'(other[i·n + j])` — the backward-GELU chain
    /// (`dh = da ⊙ gelu'(h)`, with `h` the stashed pre-activation) as a
    /// single op on the incoming gradient `v = da`.
    GeluGradMul(&'a [f32]),
}

impl EpOp<'_> {
    /// Applies this op to one value at flat index `idx = i·n + j`,
    /// column `j`.
    #[inline(always)]
    pub fn apply(&self, v: f32, idx: usize, j: usize) -> f32 {
        match *self {
            EpOp::BiasAdd(b) => v + b[j],
            EpOp::ResidualAdd(r) => v + r[idx],
            EpOp::MaskMul(m) => v * m[idx],
            EpOp::Scale(s) => v * s,
            EpOp::Gelu => ops::gelu(v),
            EpOp::Tanh => ops::fast_tanh(v),
            EpOp::Relu => v.max(0.0),
            EpOp::GeluGradMul(h) => v * ops::gelu_grad(h[idx]),
        }
    }
}

/// An epilogue chain plus an optional stash point.
///
/// `stash_after = Some(s)` writes the value after `ops[..s]` into the
/// kernel's stash buffer (same `[m, n]` layout as the output) — the hook
/// that lets a fused `linear+bias+GELU` still materialize its
/// pre-activation for the backward pass in the same output pass.
#[derive(Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// The op chain, applied in order.
    pub ops: &'a [EpOp<'a>],
    /// Prefix length after which the intermediate is stashed.
    pub stash_after: Option<usize>,
}

impl Epilogue<'_> {
    /// The empty epilogue: plain GEMM.
    pub const NONE: Epilogue<'static> = Epilogue {
        ops: &[],
        stash_after: None,
    };

    /// True when there is nothing to apply and nothing to stash.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.stash_after.is_none()
    }
}

/// Fused multiply-add where the hardware has it, plain `a * b + c`
/// elsewhere — `f32::mul_add` without an FMA unit lowers to a libm call,
/// which is catastrophically slow in an inner loop.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(any(target_arch = "aarch64", target_feature = "fma"))]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(any(target_arch = "aarch64", target_feature = "fma")))]
    {
        a * b + c
    }
}

/// Accumulates one `MR × NR` output tile over the full `k` range, reading
/// `A` from `MR` parallel row streams starting at row `i0`.
///
/// Two codegen constraints shape this function, both found the hard way:
///
/// - The constant-trip inner loop must stay index-based over fixed-size
///   arrays: this exact shape is what LLVM's SLP vectorizer turns into
///   packed FMAs — iterator/`split_at` formulations of the same math
///   have been observed to compile to *scalar* fmadds (≈20× slower).
/// - The loop body must be **panic-free**. A single indexed access such
///   as `rows[r][p]` plants a bounds-check side exit in the hot loop, and
///   because `acc` is reachable through `&mut` on the unwind path, LLVM
///   then spills all `MR × NR / 8` accumulator registers to the stack
///   after *every* FMA (observed ≈3× slowdown). The `zip`s below iterate
///   all four row streams in lockstep with the panel without any
///   panicking operation, so the accumulators live in registers for the
///   whole `k` loop.
#[inline(always)]
fn micro_rows(k: usize, a: &[f32], i0: usize, b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    const { assert!(MR == 4, "the zip below streams exactly four rows") };
    let row = |r: usize| &a[(i0 + r) * k..][..k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let panels = b_panel.chunks_exact(NR);
    for ((((bp, &a0), &a1), &a2), &a3) in panels.zip(r0).zip(r1).zip(r2).zip(r3) {
        let av = [a0, a1, a2, a3];
        for r in 0..MR {
            for c in 0..NR {
                acc[r][c] = fmadd(av[r], bp[c], acc[r][c]);
            }
        }
    }
}

/// Writes (or adds) one accumulator row into the output, trimming the
/// ragged column edge — the fast path when the epilogue is empty.
#[inline(always)]
fn store_row(orow: &mut [f32], acc_row: &[f32; NR], accumulate: bool) {
    if accumulate {
        for (o, &v) in orow.iter_mut().zip(acc_row) {
            *o += v;
        }
    } else {
        for (o, &v) in orow.iter_mut().zip(acc_row) {
            *o = v;
        }
    }
}

/// Applies the epilogue chain (and the stash copy, when requested) to
/// one stored row segment of a row-tile × j-block window, after the
/// window's accumulator tiles have been stored. `base` is the segment's
/// flat index into the full `[m, n]` output (for the full-shape
/// operands), `jbase` its first column (for the per-column bias).
fn apply_ep_window(
    row: &mut [f32],
    base: usize,
    jbase: usize,
    ep: &Epilogue<'_>,
    mut stash_row: Option<&mut [f32]>,
) {
    if ep.stash_after == Some(0) {
        if let Some(s) = stash_row.take() {
            s.copy_from_slice(row);
        }
    }
    let mut applied = 0;
    for op in ep.ops {
        apply_ep_op(row, op, base, jbase);
        applied += 1;
        if ep.stash_after == Some(applied) {
            if let Some(s) = stash_row.take() {
                s.copy_from_slice(row);
            }
        }
    }
}

/// Applies one epilogue op across a row segment starting at flat output
/// index `base` (column `jbase`). Dispatches once per op, not per
/// element: each arm is a tight fixed-op loop the autovectorizer can
/// widen (a per-element `EpOp::apply` match blocks SIMD and costs the
/// fusion win). Every arm computes exactly `EpOp::apply` per element,
/// in the same order, so fused output stays bit-identical to running
/// the ops as separate passes.
#[inline(always)]
fn apply_ep_op(vals: &mut [f32], op: &EpOp<'_>, base: usize, jbase: usize) {
    let cols = vals.len();
    match *op {
        EpOp::BiasAdd(b) => {
            let bw = &b[jbase..jbase + cols];
            for (v, &bv) in vals.iter_mut().zip(bw) {
                *v += bv;
            }
        }
        EpOp::ResidualAdd(r) => {
            let rw = &r[base..base + cols];
            for (v, &rv) in vals.iter_mut().zip(rw) {
                *v += rv;
            }
        }
        EpOp::MaskMul(mk) => {
            let mw = &mk[base..base + cols];
            for (v, &mv) in vals.iter_mut().zip(mw) {
                *v *= mv;
            }
        }
        EpOp::Scale(s) => {
            for v in vals.iter_mut() {
                *v *= s;
            }
        }
        EpOp::Gelu => {
            for v in vals.iter_mut() {
                *v = ops::gelu(*v);
            }
        }
        EpOp::Tanh => {
            for v in vals.iter_mut() {
                *v = ops::fast_tanh(*v);
            }
        }
        EpOp::Relu => {
            for v in vals.iter_mut() {
                *v = v.max(0.0);
            }
        }
        EpOp::GeluGradMul(h) => {
            let hw = &h[base..base + cols];
            for (v, &hv) in vals.iter_mut().zip(hw) {
                *v *= ops::gelu_grad(hv);
            }
        }
    }
}

/// Leases a buffer with `len` usable elements starting at a 64-byte-aligned
/// offset; returns the buffer and that offset. Panel strides are whole
/// cache lines (`NR` is a multiple of [`LINE_F32S`]), so aligning the base
/// aligns every panel row.
fn lease_aligned(ws: &mut Workspace, len: usize) -> (Vec<f32>, usize) {
    let buf = ws.lease(len + LINE_F32S);
    let addr = buf.as_ptr() as usize;
    let off = (addr.wrapping_neg() % (LINE_F32S * 4)) / 4;
    (buf, off)
}

/// Packs `b[k, n]` into `[j_tile][p][NR]` panels (destination pre-zeroed).
fn pack_b_nn(bp: &mut [f32], b: &[f32], k: usize, n: usize) {
    let jtiles = n.div_ceil(NR);
    for (p, brow) in b.chunks_exact(n).enumerate() {
        for jt in 0..jtiles {
            let cols = NR.min(n - jt * NR);
            bp[jt * k * NR + p * NR..][..cols].copy_from_slice(&brow[jt * NR..][..cols]);
        }
    }
}

/// Packs `b[n, k]` (logical `Bᵀ`) into `[j_tile][p][NR]` panels.
fn pack_b_nt(bp: &mut [f32], b: &[f32], n: usize, k: usize) {
    debug_assert_eq!(b.len(), n * k);
    for (j, brow) in b.chunks_exact(k).enumerate() {
        let panel = &mut bp[(j / NR) * k * NR..][..k * NR];
        let c = j % NR;
        for (p, &v) in brow.iter().enumerate() {
            panel[p * NR + c] = v;
        }
    }
}

/// Transpose block edge for [`pack_a_tn`]: 32×32 `f32` blocks keep both
/// the source row window and the destination column window inside a few
/// cache lines.
const TB: usize = 32;

/// Stages `a[k, m]` (logical `Aᵀ`) into row-major `at[m, k]` with a
/// blocked transpose, so the micro-kernel streams it like any other
/// row-major `A`. One `O(m·k)` pass against an `O(m·k·n)` product —
/// the strided column-major streaming it replaces cost a separate cache
/// line per `k` step and held `gemm_tn` ~30% behind `gemm_nn`.
fn pack_a_tn(at: &mut [f32], a: &[f32], k: usize, m: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(at.len(), m * k);
    for p0 in (0..k).step_by(TB) {
        let pb = TB.min(k - p0);
        for i0 in (0..m).step_by(TB) {
            let ib = TB.min(m - i0);
            for p in p0..p0 + pb {
                let arow = &a[p * m + i0..][..ib];
                for (di, &v) in arow.iter().enumerate() {
                    at[(i0 + di) * k + p] = v;
                }
            }
        }
    }
}

/// Stages the ragged last row-tile of `A` (when `m % MR != 0`) into a
/// zero-padded `[MR][k]` row-major scratch tile the row-stream
/// micro-kernel can use directly.
fn pad_last_tile(ws: &mut Workspace, a: &[f32], m: usize, k: usize) -> Option<Vec<f32>> {
    let ragged = m % MR;
    if ragged == 0 {
        return None;
    }
    let i0 = m - ragged;
    let mut pad = ws.lease(MR * k);
    pad[..ragged * k].copy_from_slice(&a[i0 * k..][..ragged * k]);
    Some(pad)
}

/// The blocked core: `out (+)= A @ packed_b` (with the epilogue applied
/// per element), parallelized over i-tile chunks. `pad` is the
/// zero-padded ragged tile from [`pad_last_tile`]; `stash` (when the
/// epilogue requests one) has the same `[m, n]` layout as `out` and is
/// chunked identically so every thread writes only its own rows.
#[allow(clippy::too_many_arguments)]
fn gemm_core(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    bp: &[f32],
    pad: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ep: &Epilogue<'_>,
    stash: Option<&mut [f32]>,
) {
    let itiles = m.div_ceil(MR);
    let jtiles = n.div_ceil(NR);
    let last_rows = m - (itiles - 1) * MR;
    let tile_flops = 2 * MR * n * k;
    let min_tiles = (GRAIN_FLOPS / tile_flops.max(1)).max(1);
    let plan = pool::plan_chunks(itiles, MR, last_rows, threads, min_tiles);
    let plain = ep.is_empty();
    pool::run_row_chunks_pair(out, stash, n, &plan, |row0, chunk, mut stash_chunk| {
        let chunk_rows = chunk.len() / n;
        let ctiles = chunk_rows.div_ceil(MR);
        // j-blocked sweep: all row tiles of this chunk against one slab
        // of NC_TILES packed panels at a time, so the slab stays cached
        // across the whole row range instead of the full packed B being
        // re-read per row tile.
        for jb in (0..jtiles).step_by(NC_TILES) {
            let jb_end = (jb + NC_TILES).min(jtiles);
            for t in 0..ctiles {
                let i0 = row0 + t * MR;
                let rows = MR.min(chunk_rows - t * MR);
                for jt in jb..jb_end {
                    let cols = NR.min(n - jt * NR);
                    let panel = &bp[jt * k * NR..][..k * NR];
                    let mut acc = [[0.0f32; NR]; MR];
                    if rows == MR {
                        micro_rows(k, a, i0, panel, &mut acc);
                    } else {
                        let pad = pad.expect("ragged tile requires a pad buffer");
                        micro_rows(k, pad, 0, panel, &mut acc);
                    }
                    for (r, acc_row) in acc.iter().take(rows).enumerate() {
                        let off = (t * MR + r) * n + jt * NR;
                        let orow = &mut chunk[off..][..cols];
                        store_row(orow, acc_row, accumulate);
                    }
                }
                if !plain {
                    // Epilogue over the whole row-tile × j-block window
                    // (≤ MR × NC_TILES·NR values, still L1-hot): the
                    // long per-row segments amortize vector startup that
                    // 32-wide per-tile application could not, while the
                    // values never make a round trip to DRAM.
                    let wj0 = jb * NR;
                    let wcols = (jb_end * NR).min(n) - wj0;
                    for r in 0..rows {
                        let off = (t * MR + r) * n + wj0;
                        let row = &mut chunk[off..][..wcols];
                        let srow = stash_chunk.as_deref_mut().map(|s| &mut s[off..][..wcols]);
                        apply_ep_window(row, (i0 + r) * n + wj0, wj0, ep, srow);
                    }
                }
            }
        }
    });
}

/// Packs `B`, stages the ragged `A` tile, runs the core, and returns the
/// scratch to `ws`.
#[allow(clippy::too_many_arguments)]
fn gemm(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    pack: impl FnOnce(&mut [f32]),
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
    ep: &Epilogue<'_>,
    stash: Option<&mut [f32]>,
) {
    let blen = n.div_ceil(NR) * k * NR;
    let (mut bp, boff) = lease_aligned(ws, blen);
    pack(&mut bp[boff..boff + blen]);
    let pad = pad_last_tile(ws, a, m, k);
    gemm_core(
        out,
        accumulate,
        a,
        &bp[boff..boff + blen],
        pad.as_deref(),
        m,
        k,
        n,
        threads,
        ep,
        stash,
    );
    if let Some(pad) = pad {
        ws.recycle(pad);
    }
    ws.recycle(bp);
}

/// Validates the operand lengths of an epilogue against the output shape
/// and its stash point against the chain length.
fn check_epilogue(ep: &Epilogue<'_>, m: usize, n: usize, stash: &Option<&mut [f32]>, what: &str) {
    for op in ep.ops {
        match *op {
            EpOp::BiasAdd(b) => assert_eq!(b.len(), n, "{what} bias len"),
            EpOp::ResidualAdd(o) | EpOp::MaskMul(o) | EpOp::GeluGradMul(o) => {
                assert_eq!(o.len(), m * n, "{what} epilogue operand len");
            }
            _ => {}
        }
    }
    if let Some(s) = ep.stash_after {
        assert!(s <= ep.ops.len(), "{what} stash point beyond chain");
        let stash = stash.as_ref().expect("stash requested without a buffer");
        assert_eq!(stash.len(), m * n, "{what} stash len");
    } else {
        assert!(stash.is_none(), "{what} stash buffer without a stash point");
    }
}

/// `out (+)= epilogue(a[m,k] @ b[k,n])` with `threads` workers; scratch
/// for the packed panels is leased from (and returned to) `ws`.
///
/// With `accumulate == false` every output element is overwritten; with
/// `true` the product is added to the existing contents (the epilogue
/// applies to the sum). `stash` receives the pre-suffix intermediate
/// when the epilogue requests one.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions or the
/// epilogue's operands/stash disagree with the output shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_ep(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
    ep: &Epilogue<'_>,
    stash: Option<&mut [f32]>,
) {
    assert_eq!(a.len(), m * k, "gemm_nn lhs len");
    assert_eq!(b.len(), k * n, "gemm_nn rhs len");
    assert_eq!(out.len(), m * n, "gemm_nn out len");
    check_epilogue(ep, m, n, &stash, "gemm_nn");
    gemm(
        out,
        accumulate,
        a,
        |dst| pack_b_nn(dst, b, k, n),
        m,
        k,
        n,
        threads,
        ws,
        ep,
        stash,
    );
}

/// `out (+)= a[m,k] @ b[k,n]` — [`gemm_nn_ep`] with the empty epilogue.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    gemm_nn_ep(
        out,
        accumulate,
        a,
        b,
        m,
        k,
        n,
        threads,
        ws,
        &Epilogue::NONE,
        None,
    );
}

/// `out (+)= epilogue(aᵀ @ b)` for `a[k,m]`, `b[k,n]` — the
/// weight-gradient shape. `Aᵀ` is staged row-major by `pack_a_tn`
/// before the shared core runs; the per-element accumulation order is
/// unchanged, so results are bit-identical to the un-staged variant.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions or the
/// epilogue's operands/stash disagree with the output shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_ep(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
    ep: &Epilogue<'_>,
    stash: Option<&mut [f32]>,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs len");
    assert_eq!(b.len(), k * n, "gemm_tn rhs len");
    assert_eq!(out.len(), m * n, "gemm_tn out len");
    check_epilogue(ep, m, n, &stash, "gemm_tn");
    let mut at = ws.lease(m * k);
    pack_a_tn(&mut at, a, k, m);
    gemm(
        out,
        accumulate,
        &at,
        |dst| pack_b_nn(dst, b, k, n),
        m,
        k,
        n,
        threads,
        ws,
        ep,
        stash,
    );
    ws.recycle(at);
}

/// `out (+)= aᵀ @ b` — [`gemm_tn_ep`] with the empty epilogue.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    gemm_tn_ep(
        out,
        accumulate,
        a,
        b,
        k,
        m,
        n,
        threads,
        ws,
        &Epilogue::NONE,
        None,
    );
}

/// `out (+)= epilogue(a @ bᵀ)` for `a[m,k]`, `b[n,k]` — the
/// input-gradient and attention-score shape.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions or the
/// epilogue's operands/stash disagree with the output shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_ep(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
    ep: &Epilogue<'_>,
    stash: Option<&mut [f32]>,
) {
    assert_eq!(a.len(), m * k, "gemm_nt lhs len");
    assert_eq!(b.len(), n * k, "gemm_nt rhs len");
    assert_eq!(out.len(), m * n, "gemm_nt out len");
    check_epilogue(ep, m, n, &stash, "gemm_nt");
    gemm(
        out,
        accumulate,
        a,
        |dst| pack_b_nt(dst, b, n, k),
        m,
        k,
        n,
        threads,
        ws,
        ep,
        stash,
    );
}

/// `out (+)= a @ bᵀ` — [`gemm_nt_ep`] with the empty epilogue.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    gemm_nt_ep(
        out,
        accumulate,
        a,
        b,
        m,
        k,
        n,
        threads,
        ws,
        &Epilogue::NONE,
        None,
    );
}

/// Naive single-pass reference kernels, used by proptests and the kernel
/// benchmark as ground truth. Unlike the seed implementation these have
/// **no** `av == 0.0` skip branch (see the `matmul` module header).
pub mod reference {
    /// `a[m,k] @ b[k,n]` in plain `i-k-j` order.
    #[must_use]
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..][..k];
            let orow = &mut out[i * n..][..n];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b[p * n..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `aᵀ @ b` for `a[k,m]`, `b[k,n]`.
    #[must_use]
    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..][..m];
            let brow = &b[p * n..][..n];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out[i * n..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `a @ bᵀ` for `a[m,k]`, `b[n,k]`.
    #[must_use]
    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..][..k];
            for j in 0..n {
                let brow = &b[j * k..][..k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        // Deterministic non-trivial values; sign flips avoid all-positive
        // cancellation blind spots.
        (0..len)
            .map(|i| {
                let v = ((i * 7 + 3) % 23) as f32 - 11.0;
                v * scale
            })
            .collect()
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= tol * (1.0 + w.abs()),
                "element {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn nn_matches_reference_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 16, 32), (5, 17, 33), (13, 9, 70)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let want = reference::matmul(&a, &b, m, k, n);
            let mut ws = Workspace::new();
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
            assert_close(&out, &want, 1e-5);
        }
    }

    #[test]
    fn wide_shapes_cross_jblock_boundaries() {
        // n > NC_TILES·NR exercises the j-blocked sweep, including a
        // ragged final block.
        for &(m, k, n) in &[(9, 7, NC_TILES * NR + 5), (4, 3, 2 * NC_TILES * NR)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.25);
            let want = reference::matmul(&a, &b, m, k, n);
            let mut ws = Workspace::new();
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, 2, &mut ws);
            assert_close(&out, &want, 1e-5);
        }
    }

    #[test]
    fn tn_and_nt_match_reference() {
        let (m, k, n) = (11, 19, 37);
        let a_tn = seq(k * m, 0.25);
        let b = seq(k * n, 0.5);
        let mut ws = Workspace::new();
        let mut out = vec![0.0; m * n];
        gemm_tn(&mut out, false, &a_tn, &b, k, m, n, 2, &mut ws);
        assert_close(&out, &reference::matmul_tn(&a_tn, &b, k, m, n), 1e-5);

        let a = seq(m * k, 0.25);
        let b_nt = seq(n * k, 0.5);
        let mut out = vec![0.0; m * n];
        gemm_nt(&mut out, false, &a, &b_nt, m, k, n, 2, &mut ws);
        assert_close(&out, &reference::matmul_nt(&a, &b_nt, m, k, n), 1e-5);
    }

    #[test]
    fn results_bit_identical_across_pool_sizes() {
        let (m, k, n) = (37, 29, 53);
        let a = seq(m * k, 0.125);
        let b = seq(k * n, 0.375);
        let mut ws = Workspace::new();
        let mut serial = vec![0.0; m * n];
        gemm_nn(&mut serial, false, &a, &b, m, k, n, 1, &mut ws);
        for threads in [2, 3, 8] {
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, threads, &mut ws);
            assert_eq!(
                serial, out,
                "threads={threads} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn accumulate_adds_to_existing_contents() {
        let (m, k, n) = (6, 10, 34);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 0.25);
        let mut ws = Workspace::new();
        let mut out = seq(m * n, 1.0);
        let base = out.clone();
        gemm_nn(&mut out, true, &a, &b, m, k, n, 1, &mut ws);
        let mut fresh = vec![0.0; m * n];
        gemm_nn(&mut fresh, false, &a, &b, m, k, n, 1, &mut ws);
        for i in 0..m * n {
            assert!((out[i] - (base[i] + fresh[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn overwrite_clobbers_stale_contents() {
        let (m, k, n) = (5, 4, 9);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 0.5);
        let mut ws = Workspace::new();
        let mut out = vec![42.0; m * n];
        gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
        assert_close(&out, &reference::matmul(&a, &b, m, k, n), 1e-5);
    }

    #[test]
    fn reused_workspace_stays_correct() {
        // Recycled (dirty) scratch must not leak into later results: the
        // zero-padded pad tile and panel edges are re-zeroed by `lease`.
        let mut ws = Workspace::new();
        for trial in 0..3 {
            let (m, k, n) = (7 + trial, 13, 35 + trial);
            let a = seq(m * k, 0.5);
            let b = seq(k * n, 0.25);
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
            assert_close(&out, &reference::matmul(&a, &b, m, k, n), 1e-5);
        }
    }

    #[test]
    fn epilogue_matches_separate_passes_bitwise() {
        let (m, k, n) = (13, 9, 41);
        let a = seq(m * k, 0.25);
        let b = seq(k * n, 0.125);
        let bias = seq(n, 0.5);
        let res = seq(m * n, 0.0625);
        let mut ws = Workspace::new();

        // Unfused: plain gemm, then the same scalar ops as output passes.
        let mut want = vec![0.0; m * n];
        gemm_nn(&mut want, false, &a, &b, m, k, n, 1, &mut ws);
        for i in 0..m {
            for (j, &bj) in bias.iter().enumerate() {
                let idx = i * n + j;
                let v = want[idx] + bj;
                let v = crate::ops::gelu(v);
                want[idx] = v + res[idx];
            }
        }

        let ops = [EpOp::BiasAdd(&bias), EpOp::Gelu, EpOp::ResidualAdd(&res)];
        let ep = Epilogue {
            ops: &ops,
            stash_after: None,
        };
        for threads in [1, 2, 8] {
            let mut out = vec![0.0; m * n];
            gemm_nn_ep(
                &mut out, false, &a, &b, m, k, n, threads, &mut ws, &ep, None,
            );
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn stash_captures_pre_activation() {
        let (m, k, n) = (10, 6, 35);
        let a = seq(m * k, 0.25);
        let b = seq(k * n, 0.125);
        let bias = seq(n, 0.5);
        let mut ws = Workspace::new();

        let mut pre = vec![0.0; m * n];
        gemm_nn(&mut pre, false, &a, &b, m, k, n, 1, &mut ws);
        for i in 0..m {
            for j in 0..n {
                pre[i * n + j] += bias[j];
            }
        }
        let post: Vec<f32> = pre.iter().map(|&v| crate::ops::gelu(v)).collect();

        let ops = [EpOp::BiasAdd(&bias), EpOp::Gelu];
        let ep = Epilogue {
            ops: &ops,
            stash_after: Some(1),
        };
        for threads in [1, 3] {
            let mut out = vec![0.0; m * n];
            let mut stash = vec![0.0; m * n];
            gemm_nn_ep(
                &mut out,
                false,
                &a,
                &b,
                m,
                k,
                n,
                threads,
                &mut ws,
                &ep,
                Some(&mut stash),
            );
            assert_eq!(stash, pre, "threads={threads} stash");
            assert_eq!(out, post, "threads={threads} out");
        }
    }

    #[test]
    fn tn_staging_is_bit_identical_to_nn_on_transposed_input() {
        // gemm_tn(a) must equal gemm_nn(aᵀ) exactly: the staged transpose
        // feeds the identical micro-kernel in the identical order.
        let (m, k, n) = (23, 17, 45);
        let a_t = seq(k * m, 0.25); // [k, m]
        let b = seq(k * n, 0.5);
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut ws = Workspace::new();
        let mut out_tn = vec![0.0; m * n];
        gemm_tn(&mut out_tn, false, &a_t, &b, k, m, n, 2, &mut ws);
        let mut out_nn = vec![0.0; m * n];
        gemm_nn(&mut out_nn, false, &a, &b, m, k, n, 2, &mut ws);
        assert_eq!(out_tn, out_nn);
    }
}
