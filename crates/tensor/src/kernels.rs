//! Cache-blocked, register-tiled GEMM kernels.
//!
//! All three matmul variants (`A@B`, `Aᵀ@B`, `A@Bᵀ`) funnel into one
//! blocked core:
//!
//! - `B` is **packed** into column panels of [`NR`] columns, laid out
//!   `[j_tile][p][NR]` and zero-padded on the ragged edge, so the inner
//!   loop always reads one contiguous `NR`-wide row per `k` step. Panels
//!   are 64-byte aligned inside their leased buffer — each panel row is
//!   a whole number of cache lines, so full-width vector loads never
//!   split a line (measured ≈10% on 512³).
//! - `A` is **streamed directly** from the caller's tensor: the
//!   micro-kernel reads its [`MR`] multipliers either from `MR` parallel
//!   row streams (`A[m,k]`, the `nn`/`nt` case) or from one contiguous
//!   `MR`-wide group per `k` step (`A[k,m]`, the `tn` case). An `MR`-row
//!   tile of `A` is only ~`4·k` floats, L1-resident across all `j`
//!   panels, so packing it would cost a full extra pass over `A` for no
//!   locality gain. Only the ragged last row-tile (when `m % MR != 0`)
//!   is staged into a small zero-padded scratch tile.
//!
//! The micro-kernel keeps an `MR × NR` accumulator block in registers;
//! its inner loop is an explicit unrolled pass over one `NR`-wide panel
//! row with a constant trip count, which the autovectorizer reliably
//! turns into groups of 8-wide (AVX2/NEON) or 16-wide (AVX-512) SIMD
//! fmadds (see the private `fmadd` helper's cfg gate and
//! `.cargo/config.toml`'s `target-cpu=native`).
//!
//! Threading parallelizes over *output row tiles*: the i-tile range is
//! split into at most `threads` contiguous chunks (the pool's private
//! `plan_chunks`) and each chunk is computed by one scoped thread
//! against the caller's `A` and the shared read-only packed `B`.
//!
//! # Determinism contract
//!
//! Every output element is produced by exactly one micro-kernel call that
//! accumulates over `p = 0..k` in strictly increasing order, and the tile
//! decomposition depends only on the matrix shape — never on the thread
//! count or runtime load. Results are therefore **bit-identical for every
//! pool size** (1, 2, 8, ...). They are *not* bit-identical to the naive
//! reference kernels in [`reference`](mod@reference) on FMA hardware, because fused
//! multiply-adds round once instead of twice; tests compare against the
//! reference with a tolerance and across pool sizes exactly.

use crate::pool;
use crate::workspace::Workspace;

/// Rows per register tile of `A` / the output.
pub const MR: usize = 4;
/// Columns per packed panel of `B` / register tile of the output.
pub const NR: usize = 32;
/// `f32`s per 64-byte cache line; packed `B` panels are aligned to this.
const LINE_F32S: usize = 16;
/// Spawn threads only when each chunk gets at least this many flops.
const GRAIN_FLOPS: usize = 1 << 20;

/// How the micro-kernel reads its `A` operand.
#[derive(Clone, Copy)]
enum ASrc<'a> {
    /// `A[m, k]` row-major: element `(i, p)` at `a[i * k + p]`.
    RowMajor(&'a [f32]),
    /// `A[k, m]` (logical `Aᵀ`): element `(i, p)` at `a[p * m + i]`.
    ColMajor(&'a [f32]),
}

/// Fused multiply-add where the hardware has it, plain `a * b + c`
/// elsewhere — `f32::mul_add` without an FMA unit lowers to a libm call,
/// which is catastrophically slow in an inner loop.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(any(target_arch = "aarch64", target_feature = "fma"))]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(any(target_arch = "aarch64", target_feature = "fma")))]
    {
        a * b + c
    }
}

/// Accumulates one `MR × NR` output tile over the full `k` range, reading
/// `A` from `MR` parallel row streams starting at row `i0`.
///
/// Two codegen constraints shape this function, both found the hard way:
///
/// - The constant-trip inner loop must stay index-based over fixed-size
///   arrays: this exact shape is what LLVM's SLP vectorizer turns into
///   packed FMAs — iterator/`split_at` formulations of the same math
///   have been observed to compile to *scalar* fmadds (≈20× slower).
/// - The loop body must be **panic-free**. A single indexed access such
///   as `rows[r][p]` plants a bounds-check side exit in the hot loop, and
///   because `acc` is reachable through `&mut` on the unwind path, LLVM
///   then spills all `MR × NR / 8` accumulator registers to the stack
///   after *every* FMA (observed ≈3× slowdown). The `zip`s below iterate
///   all four row streams in lockstep with the panel without any
///   panicking operation, so the accumulators live in registers for the
///   whole `k` loop.
#[inline(always)]
fn micro_rows(k: usize, a: &[f32], i0: usize, b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    const { assert!(MR == 4, "the zip below streams exactly four rows") };
    let row = |r: usize| &a[(i0 + r) * k..][..k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let panels = b_panel.chunks_exact(NR);
    for ((((bp, &a0), &a1), &a2), &a3) in panels.zip(r0).zip(r1).zip(r2).zip(r3) {
        let av = [a0, a1, a2, a3];
        for r in 0..MR {
            for c in 0..NR {
                acc[r][c] = fmadd(av[r], bp[c], acc[r][c]);
            }
        }
    }
}

/// As [`micro_rows`], but reading `A[k, m]` column-tiles: one contiguous
/// `MR`-wide group per `k` step.
///
/// The loop must stay single-exit and panic-free for the same register
/// allocation reasons as [`micro_rows`]: the `i0 + MR <= arow.len()`
/// bound below is loop-invariant, so after the up-front `assert!` LLVM
/// hoists the slice check and the body carries no side exits.
#[inline(always)]
fn micro_cols(a: &[f32], m: usize, i0: usize, b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    assert!(i0 + MR <= m, "column tile must fit inside the row width");
    for (bp, arow) in b_panel.chunks_exact(NR).zip(a.chunks_exact(m)) {
        let ag = &arow[i0..i0 + MR];
        for r in 0..MR {
            let av = ag[r];
            for c in 0..NR {
                acc[r][c] = fmadd(av, bp[c], acc[r][c]);
            }
        }
    }
}

/// Writes (or adds) one accumulator row into the output, trimming the
/// ragged column edge.
#[inline(always)]
fn store_row(orow: &mut [f32], acc_row: &[f32; NR], accumulate: bool) {
    if accumulate {
        for (o, &v) in orow.iter_mut().zip(acc_row) {
            *o += v;
        }
    } else {
        for (o, &v) in orow.iter_mut().zip(acc_row) {
            *o = v;
        }
    }
}

/// Leases a buffer with `len` usable elements starting at a 64-byte-aligned
/// offset; returns the buffer and that offset. Panel strides are whole
/// cache lines (`NR` is a multiple of [`LINE_F32S`]), so aligning the base
/// aligns every panel row.
fn lease_aligned(ws: &mut Workspace, len: usize) -> (Vec<f32>, usize) {
    let buf = ws.lease(len + LINE_F32S);
    let addr = buf.as_ptr() as usize;
    let off = (addr.wrapping_neg() % (LINE_F32S * 4)) / 4;
    (buf, off)
}

/// Packs `b[k, n]` into `[j_tile][p][NR]` panels (destination pre-zeroed).
fn pack_b_nn(bp: &mut [f32], b: &[f32], k: usize, n: usize) {
    let jtiles = n.div_ceil(NR);
    for (p, brow) in b.chunks_exact(n).enumerate() {
        for jt in 0..jtiles {
            let cols = NR.min(n - jt * NR);
            bp[jt * k * NR + p * NR..][..cols].copy_from_slice(&brow[jt * NR..][..cols]);
        }
    }
}

/// Packs `b[n, k]` (logical `Bᵀ`) into `[j_tile][p][NR]` panels.
fn pack_b_nt(bp: &mut [f32], b: &[f32], n: usize, k: usize) {
    debug_assert_eq!(b.len(), n * k);
    for (j, brow) in b.chunks_exact(k).enumerate() {
        let panel = &mut bp[(j / NR) * k * NR..][..k * NR];
        let c = j % NR;
        for (p, &v) in brow.iter().enumerate() {
            panel[p * NR + c] = v;
        }
    }
}

/// Stages the ragged last row-tile of `A` (when `m % MR != 0`) into a
/// zero-padded `[MR][k]` row-major scratch tile the row-stream
/// micro-kernel can use directly.
fn pad_last_tile(ws: &mut Workspace, a: ASrc<'_>, m: usize, k: usize) -> Option<Vec<f32>> {
    let ragged = m % MR;
    if ragged == 0 {
        return None;
    }
    let i0 = m - ragged;
    let mut pad = ws.lease(MR * k);
    match a {
        ASrc::RowMajor(a) => {
            pad[..ragged * k].copy_from_slice(&a[i0 * k..][..ragged * k]);
        }
        ASrc::ColMajor(a) => {
            for (p, arow) in a.chunks_exact(m).enumerate() {
                for r in 0..ragged {
                    pad[r * k + p] = arow[i0 + r];
                }
            }
        }
    }
    Some(pad)
}

/// The blocked core: `out (+)= A @ packed_b`, parallelized over i-tile
/// chunks. `pad` is the zero-padded ragged tile from [`pad_last_tile`].
#[allow(clippy::too_many_arguments)]
fn gemm_core(
    out: &mut [f32],
    accumulate: bool,
    a: ASrc<'_>,
    bp: &[f32],
    pad: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let itiles = m.div_ceil(MR);
    let jtiles = n.div_ceil(NR);
    let last_rows = m - (itiles - 1) * MR;
    let tile_flops = 2 * MR * n * k;
    let min_tiles = (GRAIN_FLOPS / tile_flops.max(1)).max(1);
    let plan = pool::plan_chunks(itiles, MR, last_rows, threads, min_tiles);
    pool::run_row_chunks(out, n, &plan, |row0, chunk| {
        let chunk_rows = chunk.len() / n;
        for t in 0..chunk_rows.div_ceil(MR) {
            let i0 = row0 + t * MR;
            let rows = MR.min(chunk_rows - t * MR);
            for jt in 0..jtiles {
                let cols = NR.min(n - jt * NR);
                let panel = &bp[jt * k * NR..][..k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                if rows == MR {
                    match a {
                        ASrc::RowMajor(a) => micro_rows(k, a, i0, panel, &mut acc),
                        ASrc::ColMajor(a) => micro_cols(a, m, i0, panel, &mut acc),
                    }
                } else {
                    let pad = pad.expect("ragged tile requires a pad buffer");
                    micro_rows(k, pad, 0, panel, &mut acc);
                }
                for r in 0..rows {
                    let orow = &mut chunk[(t * MR + r) * n + jt * NR..][..cols];
                    store_row(orow, &acc[r], accumulate);
                }
            }
        }
    });
}

/// Packs `B`, stages the ragged `A` tile, runs the core, and returns the
/// scratch to `ws`.
#[allow(clippy::too_many_arguments)]
fn gemm(
    out: &mut [f32],
    accumulate: bool,
    a: ASrc<'_>,
    pack: impl FnOnce(&mut [f32]),
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    let blen = n.div_ceil(NR) * k * NR;
    let (mut bp, boff) = lease_aligned(ws, blen);
    pack(&mut bp[boff..boff + blen]);
    let pad = pad_last_tile(ws, a, m, k);
    gemm_core(
        out,
        accumulate,
        a,
        &bp[boff..boff + blen],
        pad.as_deref(),
        m,
        k,
        n,
        threads,
    );
    if let Some(pad) = pad {
        ws.recycle(pad);
    }
    ws.recycle(bp);
}

/// `out (+)= a[m,k] @ b[k,n]` with `threads` workers; scratch for the
/// packed panels is leased from (and returned to) `ws`.
///
/// With `accumulate == false` every output element is overwritten; with
/// `true` the product is added to the existing contents.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), m * k, "gemm_nn lhs len");
    assert_eq!(b.len(), k * n, "gemm_nn rhs len");
    assert_eq!(out.len(), m * n, "gemm_nn out len");
    gemm(
        out,
        accumulate,
        ASrc::RowMajor(a),
        |dst| pack_b_nn(dst, b, k, n),
        m,
        k,
        n,
        threads,
        ws,
    );
}

/// `out (+)= aᵀ @ b` for `a[k,m]`, `b[k,n]` — the weight-gradient shape.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs len");
    assert_eq!(b.len(), k * n, "gemm_tn rhs len");
    assert_eq!(out.len(), m * n, "gemm_tn out len");
    gemm(
        out,
        accumulate,
        ASrc::ColMajor(a),
        |dst| pack_b_nn(dst, b, k, n),
        m,
        k,
        n,
        threads,
        ws,
    );
}

/// `out (+)= a @ bᵀ` for `a[m,k]`, `b[n,k]` — the input-gradient and
/// attention-score shape.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt(
    out: &mut [f32],
    accumulate: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), m * k, "gemm_nt lhs len");
    assert_eq!(b.len(), n * k, "gemm_nt rhs len");
    assert_eq!(out.len(), m * n, "gemm_nt out len");
    gemm(
        out,
        accumulate,
        ASrc::RowMajor(a),
        |dst| pack_b_nt(dst, b, n, k),
        m,
        k,
        n,
        threads,
        ws,
    );
}

/// Naive single-pass reference kernels, used by proptests and the kernel
/// benchmark as ground truth. Unlike the seed implementation these have
/// **no** `av == 0.0` skip branch (see the `matmul` module header).
pub mod reference {
    /// `a[m,k] @ b[k,n]` in plain `i-k-j` order.
    #[must_use]
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..][..k];
            let orow = &mut out[i * n..][..n];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b[p * n..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `aᵀ @ b` for `a[k,m]`, `b[k,n]`.
    #[must_use]
    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..][..m];
            let brow = &b[p * n..][..n];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out[i * n..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `a @ bᵀ` for `a[m,k]`, `b[n,k]`.
    #[must_use]
    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..][..k];
            for j in 0..n {
                let brow = &b[j * k..][..k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        // Deterministic non-trivial values; sign flips avoid all-positive
        // cancellation blind spots.
        (0..len)
            .map(|i| {
                let v = ((i * 7 + 3) % 23) as f32 - 11.0;
                v * scale
            })
            .collect()
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= tol * (1.0 + w.abs()),
                "element {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn nn_matches_reference_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 16, 32), (5, 17, 33), (13, 9, 70)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let want = reference::matmul(&a, &b, m, k, n);
            let mut ws = Workspace::new();
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
            assert_close(&out, &want, 1e-5);
        }
    }

    #[test]
    fn tn_and_nt_match_reference() {
        let (m, k, n) = (11, 19, 37);
        let a_tn = seq(k * m, 0.25);
        let b = seq(k * n, 0.5);
        let mut ws = Workspace::new();
        let mut out = vec![0.0; m * n];
        gemm_tn(&mut out, false, &a_tn, &b, k, m, n, 2, &mut ws);
        assert_close(&out, &reference::matmul_tn(&a_tn, &b, k, m, n), 1e-5);

        let a = seq(m * k, 0.25);
        let b_nt = seq(n * k, 0.5);
        let mut out = vec![0.0; m * n];
        gemm_nt(&mut out, false, &a, &b_nt, m, k, n, 2, &mut ws);
        assert_close(&out, &reference::matmul_nt(&a, &b_nt, m, k, n), 1e-5);
    }

    #[test]
    fn results_bit_identical_across_pool_sizes() {
        let (m, k, n) = (37, 29, 53);
        let a = seq(m * k, 0.125);
        let b = seq(k * n, 0.375);
        let mut ws = Workspace::new();
        let mut serial = vec![0.0; m * n];
        gemm_nn(&mut serial, false, &a, &b, m, k, n, 1, &mut ws);
        for threads in [2, 3, 8] {
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, threads, &mut ws);
            assert_eq!(
                serial, out,
                "threads={threads} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn accumulate_adds_to_existing_contents() {
        let (m, k, n) = (6, 10, 34);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 0.25);
        let mut ws = Workspace::new();
        let mut out = seq(m * n, 1.0);
        let base = out.clone();
        gemm_nn(&mut out, true, &a, &b, m, k, n, 1, &mut ws);
        let mut fresh = vec![0.0; m * n];
        gemm_nn(&mut fresh, false, &a, &b, m, k, n, 1, &mut ws);
        for i in 0..m * n {
            assert!((out[i] - (base[i] + fresh[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn overwrite_clobbers_stale_contents() {
        let (m, k, n) = (5, 4, 9);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 0.5);
        let mut ws = Workspace::new();
        let mut out = vec![42.0; m * n];
        gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
        assert_close(&out, &reference::matmul(&a, &b, m, k, n), 1e-5);
    }

    #[test]
    fn reused_workspace_stays_correct() {
        // Recycled (dirty) scratch must not leak into later results: the
        // zero-padded pad tile and panel edges are re-zeroed by `lease`.
        let mut ws = Workspace::new();
        for trial in 0..3 {
            let (m, k, n) = (7 + trial, 13, 35 + trial);
            let a = seq(m * k, 0.5);
            let b = seq(k * n, 0.25);
            let mut out = vec![0.0; m * n];
            gemm_nn(&mut out, false, &a, &b, m, k, n, 1, &mut ws);
            assert_close(&out, &reference::matmul(&a, &b, m, k, n), 1e-5);
        }
    }
}
