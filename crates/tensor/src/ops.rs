//! Transformer-oriented numerical operations: softmax, GELU, layer
//! normalization statistics, and their derivatives.

use crate::Tensor;

/// `sqrt(2/pi)` constant used by the tanh GELU approximation.
const SQRT_2_OVER_PI: f32 = 0.797_884_6;

/// Branch-free rational `tanh` approximation (odd 13th-order numerator
/// over even 6th-order denominator, inputs clamped to the range where
/// `tanh` saturates in `f32`).
///
/// `f32::tanh` lowers to a scalar libm call that LLVM cannot vectorize,
/// which made the GELU pass cost ~⅓ of the *GEMM* it follows at FFN
/// widths (≈42 ms vs 144 ms per 1024×3072 activation on the bench
/// machine). This polynomial is pure mul/add/div, so elementwise loops
/// over it autovectorize. Absolute error is below `1e-6` across the
/// clamped range — indistinguishable at `f32` GELU scale — and it is
/// exactly odd (`fast_tanh(0) == 0`, `fast_tanh(-x) == -fast_tanh(x)`).
///
/// This is the **single** scalar tanh used by [`gelu`], [`gelu_grad`],
/// and the GEMM epilogue ops, so fused and unfused execution of the same
/// op chain stay bit-identical.
pub fn fast_tanh(x: f32) -> f32 {
    /// `tanh` is 1.0 in `f32` beyond this; clamping also keeps the
    /// polynomials in their fitted range.
    const CLAMP: f32 = 7.905_311;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525_3e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347_1e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    p / q
}

/// Gaussian error linear unit, tanh approximation (the variant used by BERT
/// and Megatron-LM), with the tanh computed by [`fast_tanh`] so
/// elementwise GELU passes and fused GEMM epilogues vectorize — and agree
/// bitwise, since both call this exact scalar function.
///
/// # Examples
///
/// ```
/// use actcomp_tensor::ops::gelu;
/// assert!(gelu(0.0).abs() < 1e-7);
/// assert!((gelu(3.0) - 3.0).abs() < 0.01);
/// ```
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    let x3 = 0.044715 * x * x * x;
    let inner = SQRT_2_OVER_PI * (x + x3);
    let t = fast_tanh(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x)
}

impl Tensor {
    /// Applies [`gelu`] elementwise.
    pub fn gelu(&self) -> Tensor {
        self.map(gelu)
    }

    /// Row-wise softmax of an `[m, n]` matrix, numerically stabilized by
    /// subtracting each row's max.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "softmax_rows requires rank 2, got {}",
            self.shape()
        );
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let orow = &mut out[i * n..(i + 1) * n];
            let mut z = 0.0;
            for (o, &x) in orow.iter_mut().zip(row) {
                *o = (x - mx).exp();
                z += *o;
            }
            for o in orow.iter_mut() {
                *o /= z;
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Backward pass of row-wise softmax: given `p = softmax(x)` and the
    /// upstream gradient `dp`, returns `dx`.
    ///
    /// Uses the standard Jacobian-vector identity
    /// `dx = p ⊙ (dp − (p · dp))` per row.
    ///
    /// # Panics
    ///
    /// Panics on rank or shape mismatch.
    pub fn softmax_rows_backward(probs: &Tensor, dprobs: &Tensor) -> Tensor {
        assert_eq!(probs.rank(), 2, "softmax backward requires rank 2");
        assert!(
            probs.shape().same_as(dprobs.shape()),
            "softmax backward shape mismatch"
        );
        let (m, n) = (probs.dims()[0], probs.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let p = &probs.as_slice()[i * n..(i + 1) * n];
            let dp = &dprobs.as_slice()[i * n..(i + 1) * n];
            let dot: f32 = p.iter().zip(dp).map(|(&a, &b)| a * b).sum();
            for j in 0..n {
                out[i * n + j] = p[j] * (dp[j] - dot);
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Per-row mean and variance of an `[m, n]` matrix (population variance,
    /// as used by layer normalization).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn row_moments(&self) -> (Tensor, Tensor) {
        assert_eq!(self.rank(), 2, "row_moments requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut means = vec![0.0f32; m];
        let mut vars = vec![0.0f32; m];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
            means[i] = mean;
            vars[i] = var;
        }
        (Tensor::from_vec(means, [m]), Tensor::from_vec(vars, [m]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_tanh_tracks_libm_tanh() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            let got = fast_tanh(x);
            let want = (x as f64).tanh() as f32;
            assert!(
                (got - want).abs() < 1e-6,
                "x={x}: fast {got} vs libm {want}"
            );
            x += 0.0137;
        }
        assert_eq!(fast_tanh(0.0), 0.0);
        for &x in &[0.3f32, 1.7, 5.0, 20.0] {
            assert_eq!(fast_tanh(-x), -fast_tanh(x), "odd symmetry at {x}");
        }
        assert!(fast_tanh(1e6) <= 1.0 && fast_tanh(1e6) > 0.999_999);
    }

    #[test]
    fn gelu_reference_values() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu(1.0) - 0.841192).abs() < 1e-4);
        assert!((gelu(-1.0) + 0.158808).abs() < 1e-4);
        assert!(gelu(10.0) - 10.0 < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let p = x.softmax_rows();
        for i in 0..2 {
            let row = &p.as_slice()[i * 3..(i + 1) * 3];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let y = x.add_scalar(100.0);
        assert!(x.softmax_rows().max_abs_diff(&y.softmax_rows()) < 1e-6);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], [1, 4]);
        let dp = Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], [1, 4]);
        let p = x.softmax_rows();
        let dx = Tensor::softmax_rows_backward(&p, &dp);
        let h = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            xp[j] += h;
            let mut xm = x.clone();
            xm[j] -= h;
            let fp: f32 = xp
                .softmax_rows()
                .as_slice()
                .iter()
                .zip(dp.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            let fm: f32 = xm
                .softmax_rows()
                .as_slice()
                .iter()
                .zip(dp.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!((dx[j] - fd).abs() < 1e-3, "j={j}: {} vs {fd}", dx[j]);
        }
    }

    #[test]
    fn row_moments_known_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 4.0, 4.0], [2, 3]);
        let (mean, var) = x.row_moments();
        assert_eq!(mean.as_slice(), &[2.0, 4.0]);
        assert!((var[0] - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(var[1], 0.0);
    }
}
