//! The dense, contiguous, row-major `f32` tensor at the heart of the crate.

use crate::Shape;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the working type of the whole `actcomp` workspace: activations,
/// weights, gradients and compressed-message payloads are all `Tensor`s.
/// The representation is a flat `Vec<f32>` plus a [`Shape`]; tensors are
/// always contiguous, so reshaping is free and transposition materializes.
///
/// Most operations panic on shape mismatches (documented per method) —
/// shape errors are programming errors in this workspace, not recoverable
/// conditions.
///
/// # Examples
///
/// ```
/// use actcomp_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), a.as_slice());
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer of {} elements cannot form tensor of shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(value: f32, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::full(0.0, shape)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(1.0, shape)
    }

    /// Creates a zero tensor with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Self::zeros(other.shape.clone())
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(vec![]),
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(f).collect();
        Tensor { data, shape }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false; see [`Shape::is_empty`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or of the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or of the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// This is free: the buffer is moved, not copied.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.data.len(),
            shape.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        Tensor {
            data: self.data,
            shape,
        }
    }

    /// Returns a reshaped copy without consuming `self`.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Self {
        self.clone().reshape(shape)
    }

    /// Transposes a rank-2 tensor, materializing the result.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Self {
        assert_eq!(
            self.rank(),
            2,
            "transpose2 requires rank 2, got {}",
            self.shape
        );
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, [n, m])
    }

    /// Copies rows `start..end` of a rank-≥1 tensor (along axis 0).
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end` exceeds the first dimension.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(self.rank() >= 1, "slice_rows requires rank >= 1");
        let d0 = self.shape.dim(0);
        assert!(
            start < end && end <= d0,
            "row range {start}..{end} out of bounds for first dim {d0}"
        );
        let row = self.len() / d0;
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(self.data[start * row..end * row].to_vec(), dims)
    }

    /// Concatenates tensors along axis 0. All trailing dims must agree.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing dimensions disagree.
    pub fn concat_rows(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let trailing = &parts[0].dims()[1..];
        let mut d0 = 0;
        for p in parts {
            assert_eq!(
                &p.dims()[1..],
                trailing,
                "concat_rows trailing dims mismatch"
            );
            d0 += p.dims()[0];
        }
        let mut data = Vec::with_capacity(d0 * trailing.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![d0];
        dims.extend_from_slice(trailing);
        Tensor::from_vec(data, dims)
    }

    /// Concatenates rank-2 tensors along axis 1 (columns).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not rank 2, or row counts
    /// disagree.
    pub fn concat_cols(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let m = parts[0].dims()[0];
        let mut n = 0;
        for p in parts {
            assert_eq!(p.rank(), 2, "concat_cols requires rank 2");
            assert_eq!(p.dims()[0], m, "concat_cols row count mismatch");
            n += p.dims()[1];
        }
        let mut data = Vec::with_capacity(m * n);
        for i in 0..m {
            for p in parts {
                let w = p.dims()[1];
                data.extend_from_slice(&p.data[i * w..(i + 1) * w]);
            }
        }
        Tensor::from_vec(data, [m, n])
    }

    /// Splits a rank-2 tensor into `k` equal column blocks.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or columns are not divisible by `k`.
    pub fn split_cols(&self, k: usize) -> Vec<Tensor> {
        assert_eq!(self.rank(), 2, "split_cols requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(
            k > 0 && n % k == 0,
            "{n} columns not divisible into {k} blocks"
        );
        let w = n / k;
        (0..k)
            .map(|b| {
                let mut data = Vec::with_capacity(m * w);
                for i in 0..m {
                    data.extend_from_slice(&self.data[i * n + b * w..i * n + (b + 1) * w]);
                }
                Tensor::from_vec(data, [m, w])
            })
            .collect()
    }

    /// Splits a tensor into `k` equal row blocks along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if the first dimension is not divisible by `k`.
    pub fn split_rows(&self, k: usize) -> Vec<Tensor> {
        let d0 = self.shape.dim(0);
        assert!(
            k > 0 && d0.is_multiple_of(k),
            "{d0} rows not divisible into {k} blocks"
        );
        let h = d0 / k;
        (0..k)
            .map(|b| self.slice_rows(b * h, (b + 1) * h))
            .collect()
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds `alpha * other` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Broadcast helpers (rank-2 + rank-1)
    // ------------------------------------------------------------------

    /// Adds a length-`n` row vector to every row of an `[m, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `bias` is rank 1 with matching width.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires rank 2");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(bias.len(), n, "bias width {} != {}", bias.len(), n);
        let mut out = self.data.clone();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += bias.data[j];
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Multiplies every row of an `[m, n]` matrix by a length-`n` vector.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `scale` is rank 1 with matching width.
    pub fn mul_row_broadcast(&self, scale: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "mul_row_broadcast requires rank 2");
        assert_eq!(scale.rank(), 1, "scale must be rank 1");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(scale.len(), n, "scale width {} != {}", scale.len(), n);
        let mut out = self.data.clone();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] *= scale.data[j];
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for NaN-free input
    /// by construction (the tensor always has at least one element).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Sums each column of an `[m, n]` matrix, returning a length-`n` vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Self {
        assert_eq!(self.rank(), 2, "sum_axis0 requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0; n];
        for i in 0..m {
            for (j, acc) in out.iter_mut().enumerate() {
                *acc += self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, [n])
    }

    /// Sums each row of an `[m, n]` matrix, returning a length-`m` vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis1(&self) -> Self {
        assert_eq!(self.rank(), 2, "sum_axis1 requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0; m];
        for (i, acc) in out.iter_mut().enumerate() {
            *acc = self.data[i * n..(i + 1) * n].iter().sum();
        }
        Tensor::from_vec(out, [m])
    }

    /// Index of the maximum entry in each row of an `[m, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .fold((0, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Whether every element is finite (no NaN/inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", {:?}", self.data)?;
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, ... {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.len(), 6);
        let mut t = t;
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
    }

    #[test]
    #[should_panic(expected = "cannot form tensor")]
    fn from_vec_checks_len() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones([4]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5, -1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        let at = a.transpose2();
        assert_eq!(at.dims(), &[4, 3]);
        assert_eq!(at.at(&[1, 2]), a.at(&[2, 1]));
        assert_eq!(at.transpose2(), a);
    }

    #[test]
    fn slicing_and_concat() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [4, 3]);
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 4);
        assert_eq!(Tensor::concat_rows(&[&top, &bottom]), a);
    }

    #[test]
    fn split_concat_cols_round_trip() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [4, 6]);
        let parts = a.split_cols(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].dims(), &[4, 2]);
        let refs: Vec<&Tensor> = parts.iter().collect();
        assert_eq!(Tensor::concat_cols(&refs), a);
    }

    #[test]
    fn split_rows_round_trip() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [6, 4]);
        let parts = a.split_rows(2);
        let refs: Vec<&Tensor> = parts.iter().collect();
        assert_eq!(Tensor::concat_rows(&refs), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], [2, 2]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert_eq!(a.abs_max(), 4.0);
        assert_eq!(a.sum_axis0().as_slice(), &[4.0, -6.0]);
        assert_eq!(a.sum_axis1().as_slice(), &[-1.0, -1.0]);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0, 5.0, 0.0], [2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn broadcast_helpers() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(
            a.add_row_broadcast(&b).as_slice(),
            &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(
            a.mul_row_broadcast(&b).as_slice(),
            &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn reshape_is_free_and_checked() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let b = a.clone().reshape([3, 2]);
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn finite_checks() {
        let mut a = Tensor::ones([3]);
        assert!(a.all_finite());
        a[1] = f32::NAN;
        assert!(!a.all_finite());
    }
}
