//! Matrix multiplication methods on [`Tensor`], backed by the blocked
//! kernels in [`crate::kernels`].
//!
//! All variants pack their operands and run the register-tiled core from
//! `kernels`, with the pool size taken from [`crate::pool`] and scratch
//! leased from a [`Workspace`] — the thread-local default for the plain
//! methods, or a caller-owned one for the `_ws` variants used on hot
//! paths (each runtime rank keeps its own).
//!
//! ## Why there is no `av == 0.0` skip branch
//!
//! The seed kernels skipped the inner loop when the current `A` element
//! was zero — a win only for *sparse* operands. Activations and weights
//! in this codebase are dense essentially always (GELU outputs, attention
//! probabilities, Xavier-initialized weights), so the branch was pure
//! overhead: it cost a compare-and-branch per multiplier, defeated the
//! autovectorizer's ability to keep the pipeline full, and made runtime
//! data-dependent (bad for benchmarking). Dense code paths must pay for
//! the dense case only; the blocked kernels therefore multiply
//! unconditionally. (Top-K-compressed activations *are* sparse, but they
//! travel as index/value pairs, never through dense matmul.)

use crate::workspace::{self, Workspace};
use crate::{kernels, pool, Tensor};

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use actcomp_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.matmul_ws(other, ws))
    }

    /// [`Tensor::matmul`] with caller-provided scratch. The output buffer
    /// is leased from `ws` too, so recycling the result
    /// ([`Workspace::recycle_tensor`]) makes repeated same-shape calls
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or inner dimensions disagree.
    pub fn matmul_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (k2, n) = dims2(other, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = ws.lease(m * n);
        kernels::gemm_nn(
            &mut out,
            false,
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            pool::configured_threads(),
            ws,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix product `selfᵀ @ other` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`. This is
    /// the shape that weight gradients take (`xᵀ @ dy`), so having it as a
    /// primitive avoids a transpose copy in every backward pass.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or leading dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.matmul_tn_ws(other, ws))
    }

    /// [`Tensor::matmul_tn`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or leading dimensions disagree.
    pub fn matmul_tn_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (k, m) = dims2(self, "matmul_tn lhs");
        let (k2, n) = dims2(other, "matmul_tn rhs");
        assert_eq!(k, k2, "matmul_tn leading dims {k} vs {k2}");
        let mut out = ws.lease(m * n);
        kernels::gemm_tn(
            &mut out,
            false,
            self.as_slice(),
            other.as_slice(),
            k,
            m,
            n,
            pool::configured_threads(),
            ws,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// Accumulates `self += aᵀ @ b` in place — the gradient-accumulation
    /// primitive (`w.grad += xᵀ @ dy`) that saves both the temporary
    /// product tensor and the extra add pass.
    ///
    /// `a` is `[k, m]`, `b` is `[k, n]`, `self` is `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn add_matmul_tn(&mut self, a: &Tensor, b: &Tensor) {
        workspace::with_thread_default(|ws| self.add_matmul_tn_ws(a, b, ws));
    }

    /// [`Tensor::add_matmul_tn`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn add_matmul_tn_ws(&mut self, a: &Tensor, b: &Tensor, ws: &mut Workspace) {
        let (k, m) = dims2(a, "add_matmul_tn lhs");
        let (k2, n) = dims2(b, "add_matmul_tn rhs");
        assert_eq!(k, k2, "add_matmul_tn leading dims {k} vs {k2}");
        let (sm, sn) = dims2(self, "add_matmul_tn out");
        assert_eq!((sm, sn), (m, n), "add_matmul_tn out dims");
        kernels::gemm_tn(
            self.as_mut_slice(),
            true,
            a.as_slice(),
            b.as_slice(),
            k,
            m,
            n,
            pool::configured_threads(),
            ws,
        );
    }

    /// Matrix product `self @ otherᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`. This is
    /// the shape of input gradients (`dy @ wᵀ`) and attention scores
    /// (`q @ kᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or trailing dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.matmul_nt_ws(other, ws))
    }

    /// [`Tensor::matmul_nt`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or trailing dimensions disagree.
    pub fn matmul_nt_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k) = dims2(self, "matmul_nt lhs");
        let (n, k2) = dims2(other, "matmul_nt rhs");
        assert_eq!(k, k2, "matmul_nt trailing dims {k} vs {k2}");
        let mut out = ws.lease(m * n);
        kernels::gemm_nt(
            &mut out,
            false,
            self.as_slice(),
            other.as_slice(),
            m,
            k,
            n,
            pool::configured_threads(),
            ws,
        );
        Tensor::from_vec(out, [m, n])
    }

    /// Batched matrix product of two rank-3 tensors `[b, m, k] @ [b, k, n]`.
    ///
    /// Each batch runs the blocked kernel directly on borrowed subslices of
    /// the operands — no per-batch copies are made.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 3 or batch/inner dims disagree.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        workspace::with_thread_default(|ws| self.bmm_ws(other, ws))
    }

    /// [`Tensor::bmm`] with caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 3 or batch/inner dims disagree.
    pub fn bmm_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "bmm lhs must be rank 3, got {}",
            self.shape()
        );
        assert_eq!(
            other.rank(),
            3,
            "bmm rhs must be rank 3, got {}",
            other.shape()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims {k} vs {k2}");
        let threads = pool::configured_threads();
        let mut out = ws.lease(b * m * n);
        let lhs = self.as_slice();
        let rhs = other.as_slice();
        for t in 0..b {
            kernels::gemm_nn(
                &mut out[t * m * n..][..m * n],
                false,
                &lhs[t * m * k..][..m * k],
                &rhs[t * k * n..][..k * n],
                m,
                k,
                n,
                threads,
                ws,
            );
        }
        Tensor::from_vec(out, [b, m, n])
    }

    /// Matrix–vector product `self @ v` for a rank-2 tensor and rank-1 vector.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matvec lhs");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        assert_eq!(v.len(), k, "matvec dims {k} vs {}", v.len());
        let a = self.as_slice();
        let x = v.as_slice();
        let out = (0..m)
            .map(|i| {
                a[i * k..(i + 1) * k]
                    .iter()
                    .zip(x)
                    .map(|(&p, &q)| p * q)
                    .sum()
            })
            .collect();
        Tensor::from_vec(out, [m])
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) {
        assert!(
            a.max_abs_diff(b) < tol,
            "tensors differ by {}",
            a.max_abs_diff(b)
        );
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        approx_eq(&a.matmul(&Tensor::eye(4)), &a, 1e-6);
        approx_eq(&Tensor::eye(3).matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 * 0.5).collect(), [3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), [3, 4]);
        approx_eq(&a.matmul_tn(&b), &a.transpose2().matmul(&b), 1e-5);

        let c = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [2, 4]);
        let d = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        approx_eq(&c.matmul_nt(&d), &c.matmul(&d.transpose2()), 1e-5);
    }

    #[test]
    fn add_matmul_tn_accumulates() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 * 0.5).collect(), [3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), [3, 4]);
        let mut grad = Tensor::ones([2, 4]);
        grad.add_matmul_tn(&a, &b);
        let mut want = Tensor::ones([2, 4]);
        want.add_assign(&a.matmul_tn(&b));
        approx_eq(&grad, &want, 1e-6);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.1).collect(), [2, 3, 3]);
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        let a0 = Tensor::from_vec(a.as_slice()[..6].to_vec(), [2, 3]);
        let b0 = Tensor::from_vec(b.as_slice()[..9].to_vec(), [3, 3]);
        let c0 = a0.matmul(&b0);
        assert_eq!(&c.as_slice()[..6], c0.as_slice());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, 2.0], [3]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped([3, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    fn ws_variants_match_plain_and_reuse_buffers() {
        let a = Tensor::from_vec((0..20).map(|x| x as f32 * 0.3).collect(), [4, 5]);
        let b = Tensor::from_vec((0..30).map(|x| x as f32 * 0.7).collect(), [5, 6]);
        let mut ws = Workspace::new();
        let c1 = a.matmul_ws(&b, &mut ws);
        assert_eq!(c1.as_slice(), a.matmul(&b).as_slice());
        ws.recycle_tensor(c1);
        let cached = ws.cached();
        assert!(cached > 0, "packing scratch should be cached");
        let c2 = a.matmul_ws(&b, &mut ws);
        assert_eq!(ws.cached(), cached - 1, "repeat call reuses cached buffers");
        assert_eq!(c2.as_slice(), a.matmul(&b).as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_checks_dims() {
        Tensor::ones([2, 3]).matmul(&Tensor::ones([4, 2]));
    }
}
