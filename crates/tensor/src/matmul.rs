//! Matrix multiplication kernels.
//!
//! The kernels use an `i-k-j` loop order over contiguous row slices, which
//! keeps the inner loop vectorizable and cache-friendly without the
//! complexity of explicit blocking. That is plenty for the model scales the
//! accuracy experiments run at (hidden sizes ≤ a few hundred); the paper-scale
//! models are *costed* by `actcomp-distsim`, never executed.

use crate::Tensor;

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use actcomp_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (k2, n) = dims2(other, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let a = self.as_slice();
        let b = other.as_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix product `selfᵀ @ other` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`. This is
    /// the shape that weight gradients take (`xᵀ @ dy`), so having it as a
    /// primitive avoids a transpose copy in every backward pass.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or leading dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_tn lhs");
        let (k2, n) = dims2(other, "matmul_tn rhs");
        assert_eq!(k, k2, "matmul_tn leading dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let a = self.as_slice();
        let b = other.as_slice();
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix product `self @ otherᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`. This is
    /// the shape of input gradients (`dy @ wᵀ`) and attention scores
    /// (`q @ kᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or trailing dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul_nt lhs");
        let (n, k2) = dims2(other, "matmul_nt rhs");
        assert_eq!(k, k2, "matmul_nt trailing dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let a = self.as_slice();
        let b = other.as_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Batched matrix product of two rank-3 tensors `[b, m, k] @ [b, k, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 3 or batch/inner dims disagree.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "bmm lhs must be rank 3, got {}",
            self.shape()
        );
        assert_eq!(
            other.rank(),
            3,
            "bmm rhs must be rank 3, got {}",
            other.shape()
        );
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
        assert_eq!(b, b2, "bmm batch dims {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims {k} vs {k2}");
        let mut out = Vec::with_capacity(b * m * n);
        for t in 0..b {
            let lhs =
                Tensor::from_vec(self.as_slice()[t * m * k..(t + 1) * m * k].to_vec(), [m, k]);
            let rhs = Tensor::from_vec(
                other.as_slice()[t * k * n..(t + 1) * k * n].to_vec(),
                [k, n],
            );
            out.extend_from_slice(lhs.matmul(&rhs).as_slice());
        }
        Tensor::from_vec(out, [b, m, n])
    }

    /// Matrix–vector product `self @ v` for a rank-2 tensor and rank-1 vector.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matvec lhs");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        assert_eq!(v.len(), k, "matvec dims {k} vs {}", v.len());
        let a = self.as_slice();
        let x = v.as_slice();
        let out = (0..m)
            .map(|i| {
                a[i * k..(i + 1) * k]
                    .iter()
                    .zip(x)
                    .map(|(&p, &q)| p * q)
                    .sum()
            })
            .collect();
        Tensor::from_vec(out, [m])
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) {
        assert!(
            a.max_abs_diff(b) < tol,
            "tensors differ by {}",
            a.max_abs_diff(b)
        );
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        approx_eq(&a.matmul(&Tensor::eye(4)), &a, 1e-6);
        approx_eq(&Tensor::eye(3).matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32 * 0.5).collect(), [3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), [3, 4]);
        approx_eq(&a.matmul_tn(&b), &a.transpose2().matmul(&b), 1e-5);

        let c = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [2, 4]);
        let d = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 4]);
        approx_eq(&c.matmul_nt(&d), &c.matmul(&d.transpose2()), 1e-5);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f32 * 0.1).collect(), [2, 3, 3]);
        let c = a.bmm(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        let a0 = Tensor::from_vec(a.as_slice()[..6].to_vec(), [2, 3]);
        let b0 = Tensor::from_vec(b.as_slice()[..9].to_vec(), [3, 3]);
        let c0 = a0.matmul(&b0);
        assert_eq!(&c.as_slice()[..6], c0.as_slice());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, 2.0], [3]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped([3, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_checks_dims() {
        Tensor::ones([2, 3]).matmul(&Tensor::ones([4, 2]));
    }
}
