//! Seeded weight initializers.
//!
//! All randomness in the workspace flows through explicit `Rng` arguments so
//! that every experiment is reproducible from a single seed.

use crate::{Shape, Tensor};
use rand::Rng;

/// Tensor with i.i.d. `N(0, std²)` entries.
///
/// # Examples
///
/// ```
/// use actcomp_tensor::init;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let t = init::randn(&mut rng, [4, 4], 0.02);
/// assert_eq!(t.dims(), &[4, 4]);
/// ```
pub fn randn(rng: &mut impl Rng, shape: impl Into<Shape>, std: f32) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| normal_sample(rng) * std).collect();
    Tensor::from_vec(data, shape)
}

/// Tensor with i.i.d. `U(lo, hi)` entries.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut impl Rng, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform bounds {lo} >= {hi}");
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for an `[fan_in, fan_out]` weight.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, [fan_in, fan_out], -bound, bound)
}

/// Normal initialization with the scaled standard deviation used for deep
/// residual stacks (`std / sqrt(2 * layers)`), following Megatron-LM.
pub fn scaled_residual(
    rng: &mut impl Rng,
    shape: impl Into<Shape>,
    std: f32,
    num_layers: usize,
) -> Tensor {
    randn(rng, shape, std / (2.0 * num_layers as f32).sqrt())
}

/// One standard-normal sample via Box–Muller.
fn normal_sample(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn randn_is_deterministic_by_seed() {
        let a = randn(&mut ChaCha8Rng::seed_from_u64(42), [8, 8], 1.0);
        let b = randn(&mut ChaCha8Rng::seed_from_u64(42), [8, 8], 1.0);
        assert_eq!(a, b);
        let c = randn(&mut ChaCha8Rng::seed_from_u64(43), [8, 8], 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = randn(&mut rng, [100, 100], 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = uniform(&mut rng, [1000], -0.5, 0.25);
        assert!(t.min() >= -0.5 && t.max() < 0.25);
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let small = xavier_uniform(&mut rng, 4, 4);
        let large = xavier_uniform(&mut rng, 1024, 1024);
        assert!(small.abs_max() > large.abs_max());
    }
}
