//! Dense linear algebra used by the paper's low-rank analysis (Figure 2).
//!
//! The only nontrivial routine is a one-sided Jacobi SVD, which is simple,
//! numerically robust, and fast enough for the activation/gradient matrices
//! the analysis inspects (a few hundred rows/columns).

use crate::Tensor;

/// Singular values of a rank-2 tensor, sorted in descending order.
///
/// Computed with one-sided Jacobi rotations applied to the columns of the
/// (possibly implicitly transposed) matrix; singular values are the column
/// norms after convergence. Converges to a relative off-diagonal tolerance
/// of `1e-10` or after 60 sweeps, whichever comes first.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
///
/// # Examples
///
/// ```
/// use actcomp_tensor::{Tensor, linalg::singular_values};
///
/// let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 4.0], [2, 2]);
/// let sv = singular_values(&a);
/// assert!((sv[0] - 4.0).abs() < 1e-5 && (sv[1] - 3.0).abs() < 1e-5);
/// ```
pub fn singular_values(a: &Tensor) -> Vec<f32> {
    assert_eq!(
        a.rank(),
        2,
        "singular_values requires rank 2, got {}",
        a.shape()
    );
    // Work on the orientation with fewer columns: SVD(A) == SVD(Aᵀ).
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let work = if n <= m { a.clone() } else { a.transpose2() };
    let (m, n) = (work.dims()[0], work.dims()[1]);

    // Column-major working copy in f64 for accumulation accuracy.
    let mut cols: Vec<Vec<f64>> = (0..n)
        .map(|j| (0..m).map(|i| work.as_slice()[i * n + j] as f64).collect())
        .collect();

    let tol = 1e-10f64;
    let frob: f64 = cols.iter().flat_map(|c| c.iter().map(|x| x * x)).sum();
    let thresh = tol * frob.max(f64::MIN_POSITIVE);

    for _sweep in 0..60 {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for (&vp, &vq) in cols[p].iter().zip(cols[q].iter()) {
                    app += vp * vp;
                    aqq += vq * vq;
                    apq += vp * vq;
                }
                if apq * apq <= thresh * app.max(1e-300) * aqq.max(1e-300) {
                    continue;
                }
                rotated = true;
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (head, tail) = cols.split_at_mut(q);
                for (vp, vq) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                    let (a, b) = (*vp, *vq);
                    *vp = c * a - s * b;
                    *vq = s * a + c * b;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    let mut sv: Vec<f32> = cols
        .iter()
        .map(|c| (c.iter().map(|x| x * x).sum::<f64>()).sqrt() as f32)
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).expect("singular values are finite"));
    sv
}

/// Cumulative-energy curve of a singular-value spectrum.
///
/// Returns, for each prefix length `k`, the fraction
/// `Σᵢ<ₖ σᵢ / Σᵢ σᵢ` — the "sigma value percentage" axis of the paper's
/// Figure 2. A low-rank matrix saturates toward 1.0 with a small prefix; a
/// full-rank matrix grows roughly linearly.
///
/// Returns an empty vector when the total spectrum mass is zero.
pub fn cumulative_energy(singular_values: &[f32]) -> Vec<f32> {
    let total: f32 = singular_values.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut acc = 0.0;
    singular_values
        .iter()
        .map(|&s| {
            acc += s;
            acc / total
        })
        .collect()
}

/// The smallest rank whose [`cumulative_energy`] reaches `fraction`
/// (e.g. `0.9` for "90% of spectral mass").
///
/// Returns `singular_values.len()` if the fraction is never reached (only
/// possible for `fraction > 1`).
pub fn effective_rank(singular_values: &[f32], fraction: f32) -> usize {
    let curve = cumulative_energy(singular_values);
    curve
        .iter()
        .position(|&e| e >= fraction)
        .map(|p| p + 1)
        .unwrap_or(singular_values.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn diagonal_matrix_singular_values() {
        let mut a = Tensor::zeros([3, 3]);
        a.set(&[0, 0], 5.0);
        a.set(&[1, 1], 2.0);
        a.set(&[2, 2], 7.0);
        let sv = singular_values(&a);
        assert!((sv[0] - 7.0).abs() < 1e-5);
        assert!((sv[1] - 5.0).abs() < 1e-5);
        assert!((sv[2] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn rectangular_orientations_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = init::randn(&mut rng, [8, 5], 1.0);
        let s1 = singular_values(&a);
        let s2 = singular_values(&a.transpose2());
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn frobenius_norm_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = init::randn(&mut rng, [10, 6], 2.0);
        let sv = singular_values(&a);
        let sv_norm: f32 = sv.iter().map(|s| s * s).sum::<f32>().sqrt();
        assert!((sv_norm - a.norm()).abs() / a.norm() < 1e-4);
    }

    #[test]
    fn rank_one_matrix_has_one_singular_value() {
        let u = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]);
        let v = Tensor::from_vec(vec![4.0, 5.0], [1, 2]);
        let a = u.matmul(&v);
        let sv = singular_values(&a);
        assert!(sv[0] > 1.0);
        assert!(sv[1].abs() < 1e-4);
        assert_eq!(effective_rank(&sv, 0.99), 1);
    }

    #[test]
    fn low_rank_vs_full_rank_energy_curves() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Rank-2 matrix: energy saturates immediately.
        let u = init::randn(&mut rng, [20, 2], 1.0);
        let v = init::randn(&mut rng, [2, 20], 1.0);
        let low = u.matmul(&v);
        // Dense Gaussian: energy grows ~linearly.
        let full = init::randn(&mut rng, [20, 20], 1.0);
        let low_curve = cumulative_energy(&singular_values(&low));
        let full_curve = cumulative_energy(&singular_values(&full));
        assert!(
            low_curve[1] > 0.99,
            "rank-2 energy at k=2: {}",
            low_curve[1]
        );
        assert!(
            full_curve[1] < 0.4,
            "dense energy at k=2: {}",
            full_curve[1]
        );
        assert!(effective_rank(&singular_values(&low), 0.9) <= 2);
        assert!(effective_rank(&singular_values(&full), 0.9) > 10);
    }

    #[test]
    fn cumulative_energy_of_zero_matrix_is_empty() {
        assert!(cumulative_energy(&[0.0, 0.0]).is_empty());
    }
}
