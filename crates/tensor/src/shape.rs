//! Shapes and index arithmetic for row-major dense tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is an immutable list of dimension sizes. Tensors in this crate
/// are always contiguous and row-major, so strides are derived rather than
/// stored.
///
/// # Examples
///
/// ```
/// use actcomp_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a list of dimension sizes.
    ///
    /// A zero-rank shape (`vec![]`) denotes a scalar with one element.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Shape { dims }
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements. Always false: zero-sized
    /// dimensions are rejected at construction, and a scalar has one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major strides (elements, not bytes), outermost first.
    ///
    /// ```
    /// use actcomp_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                index[axis] < self.dims[axis],
                "index {index:?} out of bounds for shape {:?}",
                self.dims
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Whether two shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![4]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new(vec![2, 3, 5]).strides(), vec![15, 5, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(vec![2, 3, 5]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 4]), 29);
        assert_eq!(s.offset(&[1, 0, 3]), 18);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn rejects_zero_dim() {
        Shape::new(vec![2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::new(vec![2, 3]).offset(&[2, 0]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(format!("{:?}", Shape::new(vec![7])), "Shape[7]");
    }
}
