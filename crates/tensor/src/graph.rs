//! Op-graph IR over the blocked kernels.
//!
//! A [`Graph`] is a small static single-assignment expression graph: each
//! node produces one primary value (the node's index is its [`ValueId`]),
//! and a few node kinds additionally produce *auxiliary* values
//! ([`NodeKind::Aux`]) — layer normalization's cached `x̂` and `1/σ`, a
//! fused GEMM's stashed pre-activation. Layers build a graph segment per
//! forward/backward call with the [`Graph`] builder methods (acyclic by
//! construction: operands always reference already-built values), mark
//! which values the caller needs with [`Graph::mark_output`], and
//! [`Graph::compile`] it into a [`crate::plan::CompiledPlan`]:
//!
//! 1. **validate** — shape inference over the node set ([`Graph::validate`],
//!    also reachable from raw node lists via [`Graph::from_raw_nodes`] for
//!    `actcomp check`'s AC09xx diagnostics);
//! 2. **fuse** ([`crate::fuse`]) — elementwise chains hanging off a GEMM
//!    fold into the GEMM's register-tile epilogue;
//! 3. **plan** ([`crate::plan`]) — buffer lifetimes derived by liveness
//!    over the topological order, leased from the existing
//!    [`crate::Workspace`] freelist arena at definition and recycled at
//!    last use.
//!
//! The IR is deliberately sized to what the layers in `actcomp-nn`,
//! `actcomp-mp`, and `actcomp-runtime` execute: GEMM in the three
//! transpose variants, the fusible elementwise ops, layer normalization
//! (forward and backward, with their cached statistics), and the
//! column-sum reduction bias gradients need. It is not a general tensor
//! algebra — it is the seam that retired the hand-threaded `_ws`
//! plumbing (see DESIGN.md "Op graph & fusion").

/// Index of a value in a [`Graph`] — the node at the same index produces
/// it.
pub type ValueId = usize;

/// GEMM transpose variant, matching [`crate::kernels::gemm_nn_ep`] /
/// [`crate::kernels::gemm_tn_ep`] / [`crate::kernels::gemm_nt_ep`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmKind {
    /// `a[m,k] @ b[k,n]`.
    NN,
    /// `aᵀ @ b` for `a[k,m]`, `b[k,n]` — the weight-gradient shape.
    TN,
    /// `a @ bᵀ` for `a[m,k]`, `b[n,k]` — the input-gradient shape.
    NT,
}

/// One elementwise op in the IR — the graph-level mirror of
/// [`crate::kernels::EpOp`], with operands as [`ValueId`]s instead of
/// slices.
/// Every variant is fusible into a GEMM epilogue; applied unfused it is
/// one whole-buffer pass of the identical scalar function, which is what
/// keeps fused and unfused execution bit-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EwOp {
    /// `v + bias[j]`; operand is a length-`cols` vector.
    BiasAdd(ValueId),
    /// `v + other[i,j]`; operand has the value's own shape.
    ResidualAdd(ValueId),
    /// `v · other[i,j]` — dropout-mask (or any elementwise) multiply.
    MaskMul(ValueId),
    /// `v · s`.
    Scale(f32),
    /// `gelu(v)` ([`crate::ops::gelu`]).
    Gelu,
    /// `tanh(v)` ([`crate::ops::fast_tanh`]).
    Tanh,
    /// `max(v, 0)`.
    Relu,
    /// `v · gelu'(h[i,j])` — the backward-GELU chain `da ⊙ gelu'(h)`
    /// applied to the incoming gradient `v = da`.
    GeluGradMul(ValueId),
}

impl EwOp {
    /// The operand value read by this op, if any.
    #[must_use]
    pub fn operand(&self) -> Option<ValueId> {
        match *self {
            EwOp::BiasAdd(v) | EwOp::ResidualAdd(v) | EwOp::MaskMul(v) | EwOp::GeluGradMul(v) => {
                Some(v)
            }
            _ => None,
        }
    }
}

/// What a node computes. The node's index in the graph's node list is
/// the id of its primary value.
#[derive(Clone, Copy, Debug)]
pub enum NodeKind {
    /// External value bound by the caller at run time (in declaration
    /// order).
    Input,
    /// Auxiliary output `slot` of node `node` (layernorm caches, GEMM
    /// stashes). Carries no computation of its own — it becomes live
    /// when its parent runs.
    Aux {
        /// The producing node.
        node: ValueId,
        /// Which auxiliary output of that node.
        slot: usize,
    },
    /// `a ⊗ b` in the given transpose variant.
    Gemm {
        /// Transpose variant.
        kind: GemmKind,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// One elementwise op applied to `x`.
    Ew {
        /// The value the op transforms.
        x: ValueId,
        /// The op.
        op: EwOp,
    },
    /// Layer normalization forward over rows of `x`; primary output `y`,
    /// aux slot 0 the normalized `x̂ [m,n]`, aux slot 1 the per-row
    /// `1/σ [m,1]` — the exact cache the backward pass needs.
    LnForward {
        /// Input `[m, n]`.
        x: ValueId,
        /// Scale `γ [n]`.
        gamma: ValueId,
        /// Shift `β [n]`.
        beta: ValueId,
        /// Variance floor.
        eps: f32,
    },
    /// Layer normalization backward; primary output `dx`, aux slot 0
    /// `dγ [n]`, aux slot 1 `dβ [n]`.
    LnBackward {
        /// Upstream gradient `[m, n]`.
        dy: ValueId,
        /// Cached normalized input from the forward pass.
        xhat: ValueId,
        /// Cached per-row `1/σ` from the forward pass.
        inv_std: ValueId,
        /// Scale `γ [n]`.
        gamma: ValueId,
    },
    /// Column sums: `[m, n] → [1, n]` (bias gradients).
    SumAxis0 {
        /// Input `[m, n]`.
        x: ValueId,
    },
}

/// `[rows, cols]` shape of a value; vectors are `[1, n]`.
pub type Shape2 = (usize, usize);

/// One node: its kind plus the inferred shape of its primary value.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// What the node computes.
    pub kind: NodeKind,
    /// Shape of the primary value.
    pub shape: Shape2,
}

/// Structural errors detected by graph validation — surfaced by
/// `actcomp check` as AC0901 (cycle), AC0902 (shape mismatch), and
/// AC0903 (illegal fusion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The nodes cannot be ordered so every operand precedes its use —
    /// the dependency relation has a cycle.
    Cycle {
        /// A node on the unorderable remainder.
        node: ValueId,
    },
    /// Operand shapes disagree with what the node requires.
    ShapeMismatch {
        /// The offending node.
        node: ValueId,
        /// What disagreed.
        detail: String,
    },
    /// A fusion that [`crate::plan::FusePolicy::Forced`] demanded is not
    /// legal (see `crate::fuse` for the legality rules).
    IllegalFusion {
        /// The GEMM whose chain could not be fused.
        gemm: ValueId,
        /// Which rule failed.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle { node } => {
                write!(f, "graph has a dependency cycle through node {node}")
            }
            GraphError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node {node}: {detail}")
            }
            GraphError::IllegalFusion { gemm, detail } => {
                write!(f, "illegal fusion at gemm node {gemm}: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A built op graph: nodes in a valid execution order, plus which values
/// the caller wants materialized.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Node list; index == primary [`ValueId`]. Always stored in a valid
    /// topological order (builder construction guarantees it;
    /// [`Graph::from_raw_nodes`] verifies it).
    pub(crate) nodes: Vec<Node>,
    /// Declared inputs, in binding order.
    pub(crate) inputs: Vec<ValueId>,
    /// Values the caller needs after the run, in binding order.
    pub(crate) outputs: Vec<ValueId>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: NodeKind, shape: Shape2) -> ValueId {
        let id = self.nodes.len();
        self.nodes.push(Node { kind, shape });
        id
    }

    /// Shape of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn shape(&self, v: ValueId) -> Shape2 {
        self.nodes[v].shape
    }

    /// Number of nodes (== number of values).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Declares an external `[rows, cols]` input, bound positionally at
    /// run time.
    pub fn input(&mut self, rows: usize, cols: usize) -> ValueId {
        let id = self.push(NodeKind::Input, (rows, cols));
        self.inputs.push(id);
        id
    }

    /// Declares an external length-`n` vector input (`[1, n]`).
    pub fn input_vec(&mut self, n: usize) -> ValueId {
        self.input(1, n)
    }

    fn gemm(&mut self, kind: GemmKind, a: ValueId, b: ValueId) -> ValueId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        let (m, k, n) = match kind {
            GemmKind::NN => {
                assert_eq!(sa.1, sb.0, "gemm_nn inner dims {sa:?} @ {sb:?}");
                (sa.0, sa.1, sb.1)
            }
            GemmKind::TN => {
                assert_eq!(sa.0, sb.0, "gemm_tn inner dims {sa:?}ᵀ @ {sb:?}");
                (sa.1, sa.0, sb.1)
            }
            GemmKind::NT => {
                assert_eq!(sa.1, sb.1, "gemm_nt inner dims {sa:?} @ {sb:?}ᵀ");
                (sa.0, sa.1, sb.0)
            }
        };
        let _ = k;
        self.push(NodeKind::Gemm { kind, a, b }, (m, n))
    }

    /// `a[m,k] @ b[k,n]`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree (builder misuse; raw
    /// graphs get a [`GraphError`] instead).
    pub fn matmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.gemm(GemmKind::NN, a, b)
    }

    /// `aᵀ @ b` for `a[k,m]`, `b[k,n]` — weight gradients.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_tn(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.gemm(GemmKind::TN, a, b)
    }

    /// `a @ bᵀ` for `a[m,k]`, `b[n,k]` — input gradients and attention
    /// scores.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_nt(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.gemm(GemmKind::NT, a, b)
    }

    fn ew(&mut self, x: ValueId, op: EwOp) -> ValueId {
        let shape = self.shape(x);
        if let Some(o) = op.operand() {
            let os = self.shape(o);
            match op {
                EwOp::BiasAdd(_) => assert_eq!(
                    os.0 * os.1,
                    shape.1,
                    "bias operand {os:?} vs cols {}",
                    shape.1
                ),
                _ => assert_eq!(os, shape, "elementwise operand shape"),
            }
        }
        self.push(NodeKind::Ew { x, op }, shape)
    }

    /// `x + bias` broadcast over rows; `bias` is a `[1, n]` value.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths disagree.
    pub fn bias_add(&mut self, x: ValueId, bias: ValueId) -> ValueId {
        self.ew(x, EwOp::BiasAdd(bias))
    }

    /// `x + other` elementwise (residual connections).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn residual_add(&mut self, x: ValueId, other: ValueId) -> ValueId {
        self.ew(x, EwOp::ResidualAdd(other))
    }

    /// `x ⊙ mask` elementwise (dropout-mask apply).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn mask_mul(&mut self, x: ValueId, mask: ValueId) -> ValueId {
        self.ew(x, EwOp::MaskMul(mask))
    }

    /// `x · s`.
    pub fn scale(&mut self, x: ValueId, s: f32) -> ValueId {
        self.ew(x, EwOp::Scale(s))
    }

    /// `gelu(x)` elementwise.
    pub fn gelu(&mut self, x: ValueId) -> ValueId {
        self.ew(x, EwOp::Gelu)
    }

    /// `tanh(x)` elementwise.
    pub fn tanh(&mut self, x: ValueId) -> ValueId {
        self.ew(x, EwOp::Tanh)
    }

    /// `relu(x)` elementwise.
    pub fn relu(&mut self, x: ValueId) -> ValueId {
        self.ew(x, EwOp::Relu)
    }

    /// `x ⊙ gelu'(h)` — the backward-GELU chain applied to an incoming
    /// gradient `x = da` with stashed pre-activation `h`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn gelu_grad_mul(&mut self, x: ValueId, h: ValueId) -> ValueId {
        self.ew(x, EwOp::GeluGradMul(h))
    }

    /// Layer normalization forward; returns `(y, x̂, 1/σ)` — the latter
    /// two are the cache the backward pass consumes.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` lengths disagree with `x`'s columns.
    pub fn layernorm(
        &mut self,
        x: ValueId,
        gamma: ValueId,
        beta: ValueId,
        eps: f32,
    ) -> (ValueId, ValueId, ValueId) {
        let (m, n) = self.shape(x);
        let gs = self.shape(gamma);
        let bs = self.shape(beta);
        assert_eq!(gs.0 * gs.1, n, "layernorm gamma len");
        assert_eq!(bs.0 * bs.1, n, "layernorm beta len");
        let y = self.push(
            NodeKind::LnForward {
                x,
                gamma,
                beta,
                eps,
            },
            (m, n),
        );
        let xhat = self.push(NodeKind::Aux { node: y, slot: 0 }, (m, n));
        let inv_std = self.push(NodeKind::Aux { node: y, slot: 1 }, (m, 1));
        (y, xhat, inv_std)
    }

    /// Layer normalization backward; returns `(dx, dγ, dβ)`.
    ///
    /// # Panics
    ///
    /// Panics if the cache/operand shapes disagree with `dy`.
    pub fn layernorm_backward(
        &mut self,
        dy: ValueId,
        xhat: ValueId,
        inv_std: ValueId,
        gamma: ValueId,
    ) -> (ValueId, ValueId, ValueId) {
        let (m, n) = self.shape(dy);
        assert_eq!(self.shape(xhat), (m, n), "layernorm backward xhat shape");
        assert_eq!(
            self.shape(inv_std),
            (m, 1),
            "layernorm backward inv_std shape"
        );
        let gs = self.shape(gamma);
        assert_eq!(gs.0 * gs.1, n, "layernorm backward gamma len");
        let dx = self.push(
            NodeKind::LnBackward {
                dy,
                xhat,
                inv_std,
                gamma,
            },
            (m, n),
        );
        let dgamma = self.push(NodeKind::Aux { node: dx, slot: 0 }, (1, n));
        let dbeta = self.push(NodeKind::Aux { node: dx, slot: 1 }, (1, n));
        (dx, dgamma, dbeta)
    }

    /// Column sums `[m, n] → [1, n]` (bias gradients).
    pub fn sum_axis0(&mut self, x: ValueId) -> ValueId {
        let (_, n) = self.shape(x);
        self.push(NodeKind::SumAxis0 { x }, (1, n))
    }

    /// Marks `v` as an output the caller will bind at run time. Order of
    /// calls is the binding order. Marking the same value twice is a
    /// no-op.
    pub fn mark_output(&mut self, v: ValueId) {
        assert!(v < self.nodes.len(), "output id out of range");
        if !self.outputs.contains(&v) {
            self.outputs.push(v);
        }
    }

    /// Declared inputs in binding order.
    #[must_use]
    pub fn input_ids(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Declared outputs in binding order.
    #[must_use]
    pub fn output_ids(&self) -> &[ValueId] {
        &self.outputs
    }

    /// The kind of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn node_kind(&self, v: ValueId) -> NodeKind {
        self.nodes[v].kind
    }

    /// Dismantles the graph into its raw node list plus output markings
    /// — the inverse of [`Graph::from_raw_nodes`], used to serialize a
    /// built graph into the externally auditable form (`actcomp check`
    /// round-trips plans through this pair).
    #[must_use]
    pub fn into_raw_nodes(self) -> (Vec<Node>, Vec<ValueId>) {
        (self.nodes, self.outputs)
    }

    /// Every value id read by node `v` (operands, not aux parents).
    pub(crate) fn operands_of(&self, v: ValueId) -> Vec<ValueId> {
        match self.nodes[v].kind {
            NodeKind::Input => Vec::new(),
            // An aux value depends on its parent running, which the
            // schedule handles positionally; it reads no buffers itself.
            NodeKind::Aux { .. } => Vec::new(),
            NodeKind::Gemm { a, b, .. } => vec![a, b],
            NodeKind::Ew { x, op } => {
                let mut v = vec![x];
                if let Some(o) = op.operand() {
                    v.push(o);
                }
                v
            }
            NodeKind::LnForward { x, gamma, beta, .. } => vec![x, gamma, beta],
            NodeKind::LnBackward {
                dy,
                xhat,
                inv_std,
                gamma,
            } => vec![dy, xhat, inv_std, gamma],
            NodeKind::SumAxis0 { x } => vec![x],
        }
    }

    /// Rebuilds a graph from a raw node list plus output markings,
    /// verifying what the builder guarantees by construction: every
    /// operand (and aux parent) must be defined, the dependency relation
    /// must be acyclic, and every node's operand shapes must agree.
    /// Nodes may arrive in any order; they are re-sorted topologically
    /// (stably, by original id) and ids are preserved... ids are
    /// *not* renumbered — the order field of the plan handles execution
    /// order. This is the entry point `actcomp check` uses to audit
    /// graph plans (AC0901/AC0902).
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] when no topological order exists,
    /// [`GraphError::ShapeMismatch`] when a node's operands disagree with
    /// its declared shape.
    pub fn from_raw_nodes(nodes: Vec<Node>, outputs: Vec<ValueId>) -> Result<Graph, GraphError> {
        let n = nodes.len();
        let deps = |v: ValueId| -> Vec<ValueId> {
            let mut d = match nodes[v].kind {
                NodeKind::Input => Vec::new(),
                NodeKind::Aux { node, .. } => vec![node],
                NodeKind::Gemm { a, b, .. } => vec![a, b],
                NodeKind::Ew { x, op } => {
                    let mut d = vec![x];
                    if let Some(o) = op.operand() {
                        d.push(o);
                    }
                    d
                }
                NodeKind::LnForward { x, gamma, beta, .. } => vec![x, gamma, beta],
                NodeKind::LnBackward {
                    dy,
                    xhat,
                    inv_std,
                    gamma,
                } => vec![dy, xhat, inv_std, gamma],
                NodeKind::SumAxis0 { x } => vec![x],
            };
            d.retain(|&o| o < n);
            d
        };
        // Out-of-range operands are a malformed graph; report as a shape
        // mismatch on the offending node before anything else.
        for (v, node) in nodes.iter().enumerate() {
            let raw: Vec<ValueId> = match node.kind {
                NodeKind::Input => Vec::new(),
                NodeKind::Aux { node, .. } => vec![node],
                NodeKind::Gemm { a, b, .. } => vec![a, b],
                NodeKind::Ew { x, op } => {
                    let mut d = vec![x];
                    if let Some(o) = op.operand() {
                        d.push(o);
                    }
                    d
                }
                NodeKind::LnForward { x, gamma, beta, .. } => vec![x, gamma, beta],
                NodeKind::LnBackward {
                    dy,
                    xhat,
                    inv_std,
                    gamma,
                } => vec![dy, xhat, inv_std, gamma],
                NodeKind::SumAxis0 { x } => vec![x],
            };
            if let Some(&o) = raw.iter().find(|&&o| o >= n) {
                return Err(GraphError::ShapeMismatch {
                    node: v,
                    detail: format!("operand {o} does not exist ({n} nodes)"),
                });
            }
            if let Some(&o) = raw.iter().find(|&&o| o == v) {
                let _ = o;
                return Err(GraphError::Cycle { node: v });
            }
        }
        for &o in &outputs {
            if o >= n {
                return Err(GraphError::ShapeMismatch {
                    node: o.min(n.saturating_sub(1)),
                    detail: format!("output {o} does not exist ({n} nodes)"),
                });
            }
        }
        // Kahn's algorithm over the dependency relation: a graph whose
        // values cannot be ordered def-before-use is cyclic.
        let mut indeg = vec![0usize; n];
        let mut consumers: Vec<Vec<ValueId>> = vec![Vec::new(); n];
        for (v, slot) in indeg.iter_mut().enumerate() {
            for o in deps(v) {
                *slot += 1;
                consumers[o].push(v);
            }
        }
        let mut ready: Vec<ValueId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = ready.pop() {
            seen += 1;
            for &c in &consumers[v] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if seen != n {
            let node = (0..n).find(|&v| indeg[v] > 0).unwrap_or(0);
            return Err(GraphError::Cycle { node });
        }
        let inputs = (0..n)
            .filter(|&v| matches!(nodes[v].kind, NodeKind::Input))
            .collect();
        let g = Graph {
            nodes,
            inputs,
            outputs,
        };
        g.validate()?;
        Ok(g)
    }

    /// Checks every node's operand shapes against its declared primary
    /// shape — the shape-inference half of AC0902.
    ///
    /// # Errors
    ///
    /// [`GraphError::ShapeMismatch`] naming the first offending node.
    pub fn validate(&self) -> Result<(), GraphError> {
        let err = |node: ValueId, detail: String| GraphError::ShapeMismatch { node, detail };
        for (v, nd) in self.nodes.iter().enumerate() {
            let shape = nd.shape;
            match nd.kind {
                NodeKind::Input => {}
                NodeKind::Aux { node, slot } => {
                    let want = match (&self.nodes[node].kind, slot) {
                        (NodeKind::LnForward { .. }, 0) => self.nodes[node].shape,
                        (NodeKind::LnForward { .. }, 1) => (self.nodes[node].shape.0, 1),
                        (NodeKind::LnBackward { .. }, 0 | 1) => (1, self.nodes[node].shape.1),
                        _ => return Err(err(v, format!("node {node} has no aux slot {slot}"))),
                    };
                    if shape != want {
                        return Err(err(v, format!("aux shape {shape:?}, want {want:?}")));
                    }
                }
                NodeKind::Gemm { kind, a, b } => {
                    let (sa, sb) = (self.shape(a), self.shape(b));
                    let want = match kind {
                        GemmKind::NN if sa.1 == sb.0 => (sa.0, sb.1),
                        GemmKind::TN if sa.0 == sb.0 => (sa.1, sb.1),
                        GemmKind::NT if sa.1 == sb.1 => (sa.0, sb.0),
                        _ => return Err(err(v, format!("gemm {kind:?} operands {sa:?}, {sb:?}"))),
                    };
                    if shape != want {
                        return Err(err(v, format!("gemm output {shape:?}, want {want:?}")));
                    }
                }
                NodeKind::Ew { x, op } => {
                    let xs = self.shape(x);
                    if shape != xs {
                        return Err(err(v, format!("ew output {shape:?}, input {xs:?}")));
                    }
                    if let Some(o) = op.operand() {
                        let os = self.shape(o);
                        let ok = match op {
                            EwOp::BiasAdd(_) => os.0 * os.1 == xs.1,
                            _ => os == xs,
                        };
                        if !ok {
                            return Err(err(v, format!("ew operand {os:?} against input {xs:?}")));
                        }
                    }
                }
                NodeKind::LnForward { x, gamma, beta, .. } => {
                    let xs = self.shape(x);
                    let (gs, bs) = (self.shape(gamma), self.shape(beta));
                    if shape != xs || gs.0 * gs.1 != xs.1 || bs.0 * bs.1 != xs.1 {
                        return Err(err(
                            v,
                            format!("layernorm x {xs:?}, gamma {gs:?}, beta {bs:?}"),
                        ));
                    }
                }
                NodeKind::LnBackward {
                    dy,
                    xhat,
                    inv_std,
                    gamma,
                } => {
                    let ds = self.shape(dy);
                    if shape != ds
                        || self.shape(xhat) != ds
                        || self.shape(inv_std) != (ds.0, 1)
                        || self.shape(gamma).0 * self.shape(gamma).1 != ds.1
                    {
                        return Err(err(v, format!("layernorm backward around dy {ds:?}")));
                    }
                }
                NodeKind::SumAxis0 { x } => {
                    let xs = self.shape(x);
                    if shape != (1, xs.1) {
                        return Err(err(
                            v,
                            format!("sum_axis0 output {shape:?} for input {xs:?}"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of consumers of each value (reads by later nodes; output
    /// markings are not counted).
    pub(crate) fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for v in 0..self.nodes.len() {
            for o in self.operands_of(v) {
                counts[o] += 1;
            }
        }
        counts
    }

    /// Aux value ids of node `v`, indexed by slot.
    pub(crate) fn aux_of(&self, v: ValueId) -> Vec<ValueId> {
        let mut aux: Vec<(usize, ValueId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(id, nd)| match nd.kind {
                NodeKind::Aux { node, slot } if node == v => Some((slot, id)),
                _ => None,
            })
            .collect();
        aux.sort_unstable();
        aux.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_gemm_shapes() {
        let mut g = Graph::new();
        let x = g.input(8, 16);
        let w = g.input(16, 4);
        let y = g.matmul(x, w);
        assert_eq!(g.shape(y), (8, 4));
        let dy = g.input(8, 4);
        let dw = g.matmul_tn(x, dy); // xᵀ dy: [16, 4]
        assert_eq!(g.shape(dw), (16, 4));
        let dx = g.matmul_nt(dy, w); // dy wᵀ: [8, 16]
        assert_eq!(g.shape(dx), (8, 16));
    }

    #[test]
    fn validate_accepts_builder_graphs() {
        let mut g = Graph::new();
        let x = g.input(6, 10);
        let w = g.input(10, 12);
        let b = g.input_vec(12);
        let y = g.matmul(x, w);
        let y = g.bias_add(y, b);
        let h = g.gelu(y);
        g.mark_output(h);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn from_raw_rejects_cycles() {
        // Two elementwise nodes reading each other.
        let nodes = vec![
            Node {
                kind: NodeKind::Ew {
                    x: 1,
                    op: EwOp::Gelu,
                },
                shape: (2, 2),
            },
            Node {
                kind: NodeKind::Ew {
                    x: 0,
                    op: EwOp::Gelu,
                },
                shape: (2, 2),
            },
        ];
        match Graph::from_raw_nodes(nodes, vec![]) {
            Err(GraphError::Cycle { .. }) => {}
            other => panic!("want Cycle, got {other:?}"),
        }
    }

    #[test]
    fn from_raw_rejects_shape_mismatch() {
        let nodes = vec![
            Node {
                kind: NodeKind::Input,
                shape: (4, 8),
            },
            Node {
                kind: NodeKind::Input,
                shape: (9, 3), // inner dim should be 8
            },
            Node {
                kind: NodeKind::Gemm {
                    kind: GemmKind::NN,
                    a: 0,
                    b: 1,
                },
                shape: (4, 3),
            },
        ];
        match Graph::from_raw_nodes(nodes, vec![2]) {
            Err(GraphError::ShapeMismatch { node: 2, .. }) => {}
            other => panic!("want ShapeMismatch at 2, got {other:?}"),
        }
    }

    #[test]
    fn layernorm_declares_cache_aux_values() {
        let mut g = Graph::new();
        let x = g.input(5, 7);
        let gamma = g.input_vec(7);
        let beta = g.input_vec(7);
        let (y, xhat, inv_std) = g.layernorm(x, gamma, beta, 1e-5);
        assert_eq!(g.shape(y), (5, 7));
        assert_eq!(g.shape(xhat), (5, 7));
        assert_eq!(g.shape(inv_std), (5, 1));
        assert_eq!(g.aux_of(y), vec![xhat, inv_std]);
        assert_eq!(g.validate(), Ok(()));
    }
}
