//! GEMM-epilogue fusion pass over the op graph.
//!
//! [`fuse`] walks a validated [`Graph`] and, for each GEMM node, follows
//! the chain of elementwise consumers hanging off its primary value,
//! folding as many as legally possible into the GEMM's register-tile
//! epilogue ([`crate::kernels::Epilogue`]). A folded chain disappears
//! from the schedule: the GEMM writes the chain's *final* value directly,
//! applying the ops per element while the accumulator tile is still in
//! registers.
//!
//! # Legality rules
//!
//! A chain link `gemm → e₁ → e₂ → …` extends through `eᵢ` only when:
//!
//! 1. **Single consumer** — the value entering `eᵢ` is read by `eᵢ`
//!    alone. A value with other readers must be materialized; if it is
//!    *only* additionally marked as a graph output (e.g. the
//!    pre-activation a backward pass needs), the epilogue's single
//!    **stash** slot can materialize it mid-chain and fusion continues —
//!    but the slot exists once, so a second such value ends the chain.
//! 2. **Operand availability** — `eᵢ`'s operand (bias vector, residual,
//!    mask, stashed `h`) must be defined *before the GEMM executes*:
//!    an input, or a node that precedes the GEMM in the execution order.
//!    An operand computed between the GEMM and `eᵢ` in program order
//!    would not exist yet when the fused GEMM runs.
//! 3. **Elementwise only** — the consumer is an [`NodeKind::Ew`] node
//!    whose chain input is the running value (an `Ew` that reads the
//!    value as its *operand* — e.g. the residual side of an add — is a
//!    second reader under rule 1, not a chain link).
//!
//! The pass is conservative: anything it cannot prove legal stays
//! unfused, and unfused execution of the same ops is bit-identical (the
//! epilogue applies the same scalar function per element in the same
//! order as the separate passes — see the kernel determinism contract).
//! [`crate::plan::FusePolicy::Forced`] turns "could not fuse" into a
//! [`GraphError::IllegalFusion`] for callers (the fused benches, the
//! `actcomp check` AC0903 diagnostic) that need fusion to be guaranteed
//! rather than best-effort.

use crate::graph::{EwOp, Graph, GraphError, NodeKind, ValueId};

/// One fused GEMM: the chain of epilogue ops it absorbed and where the
/// optional stash sits.
#[derive(Clone, Debug)]
pub struct FusedGemm {
    /// The GEMM node.
    pub gemm: ValueId,
    /// Folded elementwise ops, in application order.
    pub ops: Vec<EwOp>,
    /// Chain position after which the stash materializes (counted like
    /// [`crate::kernels::Epilogue::stash_after`]: `Some(0)` stashes the
    /// raw GEMM result).
    pub stash_after: Option<usize>,
    /// The value the stash materializes.
    pub stash_value: Option<ValueId>,
    /// The chain's final value — the buffer the fused GEMM writes.
    pub out_value: ValueId,
    /// Every chain-intermediate value that no longer exists as a buffer
    /// (the fused-away `Ew` node ids, minus the stash value).
    pub absorbed: Vec<ValueId>,
}

/// Result of the fusion pass: which GEMMs fused what.
#[derive(Clone, Debug, Default)]
pub struct Fusion {
    /// Fused GEMMs by GEMM node id.
    pub gemms: Vec<FusedGemm>,
}

impl Fusion {
    /// The fusion record for a GEMM node, if it fused anything.
    #[must_use]
    pub fn for_gemm(&self, gemm: ValueId) -> Option<&FusedGemm> {
        self.gemms.iter().find(|f| f.gemm == gemm)
    }

    /// All values that fused away (no buffer is ever materialized for
    /// them).
    #[must_use]
    pub fn absorbed_values(&self) -> Vec<ValueId> {
        let mut v: Vec<ValueId> = self
            .gemms
            .iter()
            .flat_map(|f| f.absorbed.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }
}

/// Why a chain stopped extending at some link — [`GraphError::IllegalFusion`]
/// detail text under `FusePolicy::Forced`.
fn stop_reason(g: &Graph, v: ValueId, consumers: &[usize], used_stash: bool) -> String {
    let readers = consumers[v];
    if readers == 0 {
        "chain value has no consumer".to_string()
    } else if readers > 1 {
        format!("chain value {v} has {readers} readers; only one may follow the chain")
    } else if used_stash && g.output_ids().contains(&v) {
        format!("chain value {v} needs the stash slot, but it is already taken")
    } else {
        format!("consumer of value {v} is not a fusible elementwise op")
    }
}

/// Runs the fusion pass. With `forced` non-empty, every listed GEMM must
/// absorb its *entire* consumer chain (every transitive elementwise
/// consumer until a non-elementwise reader), or the pass fails — the
/// guarantee the fused benches and the AC0903 diagnostic rely on.
///
/// # Errors
///
/// [`GraphError::IllegalFusion`] when a forced GEMM's chain stops early.
pub fn fuse(g: &Graph, forced: &[ValueId]) -> Result<Fusion, GraphError> {
    let consumers = g.consumer_counts();
    // Map value -> the single Ew node that uses it as chain input, if any.
    let mut chain_next: Vec<Option<ValueId>> = vec![None; g.len()];
    for v in 0..g.len() {
        if let NodeKind::Ew { x, .. } = node_kind(g, v) {
            if chain_next[x].is_none() {
                chain_next[x] = Some(v);
            }
        }
    }
    let mut fusion = Fusion::default();
    let mut absorbed_global = vec![false; g.len()];
    for gemm in 0..g.len() {
        if !matches!(node_kind(g, gemm), NodeKind::Gemm { .. }) {
            continue;
        }
        let mut ops = Vec::new();
        let mut absorbed = Vec::new();
        let mut stash_after = None;
        let mut stash_value = None;
        let mut cur = gemm;
        let is_forced = forced.contains(&gemm);
        loop {
            // Rule 1: the running value must have exactly one reader, and
            // that reader must be its chain-`Ew`. If it is additionally a
            // marked output, the stash slot can cover it.
            let is_output = g.output_ids().contains(&cur);
            let next = chain_next[cur].filter(|&e| {
                consumers[cur] == 1 && matches!(node_kind(g, e), NodeKind::Ew { x, .. } if x == cur)
            });
            let Some(ew) = next else {
                if is_forced && consumers[cur] > 0 {
                    return Err(GraphError::IllegalFusion {
                        gemm,
                        detail: stop_reason(g, cur, &consumers, stash_value.is_some()),
                    });
                }
                break;
            };
            // Rule 2: the op's operand must exist before the GEMM runs.
            let NodeKind::Ew { op, .. } = node_kind(g, ew) else {
                unreachable!("filtered above")
            };
            if let Some(operand) = op.operand() {
                let available = operand < gemm || matches!(node_kind(g, operand), NodeKind::Input);
                if !available {
                    if is_forced {
                        return Err(GraphError::IllegalFusion {
                            gemm,
                            detail: format!(
                                "operand {operand} of elementwise node {ew} is not \
                                 available before the gemm executes"
                            ),
                        });
                    }
                    break;
                }
            }
            // Only now (the link is definitely taken) may an output-marked
            // chain value claim the single stash slot — claiming it on a
            // link that then fails rule 2 would leave the stash pointing
            // at the chain's final value, which is materialized anyway.
            if is_output {
                if stash_value.is_some() {
                    if is_forced {
                        return Err(GraphError::IllegalFusion {
                            gemm,
                            detail: stop_reason(g, cur, &consumers, true),
                        });
                    }
                    break;
                }
                stash_after = Some(ops.len());
                stash_value = Some(cur);
            }
            ops.push(op);
            if cur != gemm {
                absorbed.push(cur);
                absorbed_global[cur] = true;
            }
            cur = ew;
        }
        if ops.is_empty() {
            continue;
        }
        // The chain's intermediate values (absorbed) vanish; the final
        // value `cur` is what the fused GEMM writes. A stash value is
        // materialized, so it must not be listed as absorbed.
        let absorbed: Vec<ValueId> = absorbed
            .into_iter()
            .filter(|v| Some(*v) != stash_value)
            .collect();
        fusion.gemms.push(FusedGemm {
            gemm,
            ops,
            stash_after,
            stash_value,
            out_value: cur,
            absorbed,
        });
    }
    Ok(fusion)
}

fn node_kind(g: &Graph, v: ValueId) -> NodeKind {
    g.node_kind(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn full_chain_fuses_with_stash_for_preactivation() {
        let mut g = Graph::new();
        let x = g.input(4, 8);
        let w = g.input(8, 6);
        let b = g.input_vec(6);
        let y = g.matmul(x, w);
        let h = g.bias_add(y, b); // pre-activation, wanted for backward
        let a = g.gelu(h);
        g.mark_output(h);
        g.mark_output(a);
        let f = fuse(&g, &[y]).expect("legal chain");
        let fg = f.for_gemm(y).expect("fused");
        assert_eq!(fg.ops.len(), 2);
        assert_eq!(fg.stash_after, Some(1), "stash after the bias add");
        assert_eq!(fg.stash_value, Some(h));
        assert_eq!(fg.out_value, a);
        assert!(fg.absorbed.is_empty(), "h is stashed, a is the output");
    }

    #[test]
    fn multi_reader_intermediate_stops_the_chain() {
        let mut g = Graph::new();
        let x = g.input(4, 8);
        let w = g.input(8, 6);
        let b = g.input_vec(6);
        let y = g.matmul(x, w);
        let h = g.bias_add(y, b);
        let a = g.gelu(h);
        let z = g.residual_add(a, h); // second reader of h
        g.mark_output(z);
        let f = fuse(&g, &[]).expect("pass never fails unforced");
        let fg = f.for_gemm(y).expect("bias still fuses");
        assert_eq!(fg.ops.len(), 1, "chain must stop at h");
        assert_eq!(fg.out_value, h);
        assert!(fuse(&g, &[y]).is_err(), "forced full fusion is illegal");
    }

    #[test]
    fn operand_defined_after_gemm_is_illegal() {
        let mut g = Graph::new();
        let x = g.input(4, 8);
        let w = g.input(8, 6);
        let w2 = g.input(8, 6);
        let y = g.matmul(x, w);
        let r = g.matmul(x, w2); // defined after y's gemm
        let z = g.residual_add(y, r);
        g.mark_output(z);
        let f = fuse(&g, &[]).expect("unforced");
        assert!(f.for_gemm(y).is_none(), "r is not available at y's exec");
        match fuse(&g, &[y]) {
            Err(GraphError::IllegalFusion { gemm, .. }) => assert_eq!(gemm, y),
            other => panic!("want IllegalFusion, got {other:?}"),
        }
    }

    #[test]
    fn input_operands_are_always_available() {
        let mut g = Graph::new();
        let x = g.input(4, 8);
        let w = g.input(8, 6);
        let y = g.matmul(x, w);
        let res = g.input(4, 6); // declared after? no — inputs first here
        let z = g.residual_add(y, res);
        g.mark_output(z);
        // `res` has a higher id than the gemm but is an Input, so it is
        // bound before execution starts.
        let f = fuse(&g, &[y]).expect("input operands are available");
        assert_eq!(f.for_gemm(y).expect("fused").out_value, z);
    }
}
