//! Kernel thread-pool configuration and the chunked fork-join helper the
//! blocked kernels parallelize with.
//!
//! The "pool" is deliberately work-stealing-free: a parallel kernel call
//! splits its output rows into one contiguous chunk per worker, spawns
//! scoped OS threads (`std::thread::scope`) for every chunk but the first,
//! and computes the first chunk on the calling thread. Scoped threads make
//! the helper safe to call from anywhere — including from inside
//! `actcomp-runtime`'s per-rank threads — because borrowed tensor data
//! never has to be `'static` and no global queue is shared between ranks.
//!
//! The pool size comes from, in priority order:
//!
//! 1. [`set_threads`] (the CLI's `--kernel-threads` override),
//! 2. the `ACTCOMP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Invalid `ACTCOMP_THREADS` values (zero, empty, non-numeric) fall back
//! to the default with a one-time warning; `actcomp check` rejects them
//! statically as `AC0402` before a run gets this far.
//!
//! Chunk boundaries are always aligned to kernel row-tile boundaries (the
//! caller passes tile-aligned chunk sizes), and every output element is
//! accumulated by exactly one thread in a thread-count-independent order,
//! so results are bit-identical for every pool size — the determinism
//! contract `actcomp-runtime`'s serial-vs-threads tests rely on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit override (0 = unset); takes precedence over the environment.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily-resolved environment/default pool size.
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

/// Parses a thread-count spec (the `ACTCOMP_THREADS` format): a positive
/// decimal integer.
///
/// # Errors
///
/// Returns a description of the violation for zero, empty, or
/// non-numeric input — the same predicate `actcomp-check` uses for its
/// `AC0402` diagnostic.
pub fn parse_thread_spec(s: &str) -> Result<usize, String> {
    parse_count_spec(s, "thread count")
}

/// Parses a positive-decimal-integer spec, describing violations in
/// terms of `what` (e.g. `"thread count"`, `"chunk row count"`). The
/// shared predicate behind [`parse_thread_spec`] and the
/// `ACTCOMP_CHUNK_ROWS` collective-chunking knob (`AC0503`).
///
/// # Errors
///
/// Returns a description of the violation for zero, empty, or
/// non-numeric input.
pub fn parse_count_spec(s: &str, what: &str) -> Result<usize, String> {
    let t = s.trim();
    if t.is_empty() {
        return Err(format!("{what} is empty"));
    }
    match t.parse::<usize>() {
        Ok(0) => Err(format!("{what} must be at least 1, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{what} `{t}` is not a positive integer")),
    }
}

fn env_default() -> usize {
    let fallback = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("ACTCOMP_THREADS") {
        Ok(v) => match parse_thread_spec(&v) {
            Ok(n) => n,
            Err(e) => {
                eprintln!(
                    "warning: ignoring invalid ACTCOMP_THREADS ({e}); \
                     using available parallelism"
                );
                fallback()
            }
        },
        Err(_) => fallback(),
    }
}

/// The kernel pool size currently in effect.
pub fn configured_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_DEFAULT.get_or_init(env_default),
        n => n,
    }
}

/// Overrides the kernel pool size for the rest of the process (the CLI's
/// `--kernel-threads` flag lands here after validation).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn set_threads(threads: usize) {
    assert!(threads > 0, "kernel pool size must be at least 1");
    OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Runs `f(first_row, chunk)` over contiguous row chunks of `out`, one
/// scoped thread per chunk beyond the first (which runs on the caller).
///
/// `chunk_rows[i]` is the number of rows (each `row_width` elements wide)
/// in chunk `i`; the caller guarantees they sum to `out.len() / row_width`
/// and are aligned to whatever tile size its kernel needs.
///
/// # Panics
///
/// Panics if the chunk sizes do not tile `out` exactly.
pub(crate) fn run_row_chunks<F>(out: &mut [f32], row_width: usize, chunk_rows: &[usize], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_width == 0 {
        assert!(out.is_empty(), "chunk plan does not tile the output");
        return;
    }
    let lens: Vec<usize> = chunk_rows.iter().map(|&r| r * row_width).collect();
    run_on_chunks(out, &lens, |start, chunk| {
        debug_assert_eq!(start % row_width, 0);
        f(start / row_width, chunk);
    });
}

/// Runs `f(first_index, chunk)` over contiguous chunks of `out`, one
/// scoped thread per chunk beyond the first (which runs on the calling
/// thread, so the caller is worker 0 instead of idling on the join).
///
/// `chunk_lens[i]` is the element length of chunk `i`; the caller
/// guarantees the lengths sum to `out.len()`. This is the generic
/// fork-join primitive behind the row-chunked kernels; `actcomp-compress`
/// uses it directly for byte- and index-typed codec buffers.
///
/// # Panics
///
/// Panics if the chunk lengths do not tile `out` exactly.
pub fn run_on_chunks<T, F>(out: &mut [T], chunk_lens: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        chunk_lens.iter().sum::<usize>(),
        out.len(),
        "chunk plan does not tile the output"
    );
    if chunk_lens.len() <= 1 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        let mut first: Option<(usize, &mut [T])> = None;
        for (ci, &len) in chunk_lens.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            if ci == 0 {
                first = Some((start, chunk));
            } else {
                let fr = &f;
                let at = start;
                scope.spawn(move || fr(at, chunk));
            }
            start += len;
        }
        let (at, chunk) = first.expect("at least one chunk");
        f(at, chunk);
    });
}

/// Like [`run_row_chunks`], but additionally splits an optional second
/// buffer (same `[rows, row_width]` layout) along the identical chunk
/// boundaries, so each worker owns matching slices of both. The GEMM
/// epilogue stash uses this: the output tile and its stashed
/// pre-activation tile are written by the same thread in the same pass.
///
/// # Panics
///
/// Panics if the chunk sizes do not tile `out` exactly, or if `pair` is
/// present with a length different from `out`.
pub(crate) fn run_row_chunks_pair<F>(
    out: &mut [f32],
    pair: Option<&mut [f32]>,
    row_width: usize,
    chunk_rows: &[usize],
    f: F,
) where
    F: Fn(usize, &mut [f32], Option<&mut [f32]>) + Sync,
{
    let Some(pair) = pair else {
        run_row_chunks(out, row_width, chunk_rows, |row0, chunk| {
            f(row0, chunk, None);
        });
        return;
    };
    assert_eq!(pair.len(), out.len(), "pair buffer must match the output");
    if row_width == 0 {
        assert!(out.is_empty(), "chunk plan does not tile the output");
        return;
    }
    let lens: Vec<usize> = chunk_rows.iter().map(|&r| r * row_width).collect();
    assert_eq!(
        lens.iter().sum::<usize>(),
        out.len(),
        "chunk plan does not tile the output"
    );
    if lens.len() <= 1 {
        f(0, out, Some(pair));
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut prest = pair;
        let mut start = 0;
        let mut first: Option<(usize, &mut [f32], &mut [f32])> = None;
        for (ci, &len) in lens.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let (pchunk, ptail) = prest.split_at_mut(len);
            prest = ptail;
            if ci == 0 {
                first = Some((start, chunk, pchunk));
            } else {
                let fr = &f;
                let row0 = start / row_width;
                scope.spawn(move || fr(row0, chunk, Some(pchunk)));
            }
            start += len;
        }
        let (start, chunk, pchunk) = first.expect("at least one chunk");
        f(start / row_width, chunk, Some(pchunk));
    });
}

/// Splits `units` work units into at most `threads` contiguous chunks of
/// at least `min_units` each, returning per-chunk unit counts. The split
/// depends only on the arguments — never on runtime load — so chunk
/// boundaries (and therefore any per-chunk computation order) are
/// reproducible for a given `(units, threads, min_units)`.
pub fn plan_unit_chunks(units: usize, threads: usize, min_units: usize) -> Vec<usize> {
    plan_chunks(units, 1, 1, threads, min_units)
}

/// Splits `tiles` row-tiles into at most `threads` contiguous chunks of
/// whole tiles, each chunk carrying at least `min_tiles` of work, and
/// returns per-chunk *row* counts (`tile_rows` rows per full tile, with
/// the final tile possibly ragged at `last_tile_rows`).
///
/// The split depends only on `(tiles, threads, min_tiles)` — never on
/// runtime load — so the tile-to-chunk assignment is reproducible.
pub(crate) fn plan_chunks(
    tiles: usize,
    tile_rows: usize,
    last_tile_rows: usize,
    threads: usize,
    min_tiles: usize,
) -> Vec<usize> {
    if tiles == 0 {
        return Vec::new();
    }
    let chunks = threads
        .min(tiles.div_ceil(min_tiles.max(1)))
        .clamp(1, tiles);
    let base = tiles / chunks;
    let extra = tiles % chunks;
    let mut plan = Vec::with_capacity(chunks);
    let mut used = 0;
    for c in 0..chunks {
        let t = base + usize::from(c < extra);
        used += t;
        let rows = if used == tiles {
            (t - 1) * tile_rows + last_tile_rows
        } else {
            t * tile_rows
        };
        plan.push(rows);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_thread_spec("1"), Ok(1));
        assert_eq!(parse_thread_spec(" 8 "), Ok(8));
        assert!(parse_thread_spec("0").is_err());
        assert!(parse_thread_spec("").is_err());
        assert!(parse_thread_spec("two").is_err());
        assert!(parse_thread_spec("-3").is_err());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn chunk_plans_tile_exactly() {
        // 10 tiles of 4 rows, last tile ragged at 3 rows: 39 rows total.
        for threads in 1..=12 {
            let plan = plan_chunks(10, 4, 3, threads, 1);
            assert!(plan.len() <= threads.min(10));
            assert_eq!(plan.iter().sum::<usize>(), 39, "threads={threads}");
        }
        // min_tiles throttles the fan-out for small work.
        assert_eq!(plan_chunks(4, 4, 4, 8, 4).len(), 1);
        assert!(plan_chunks(0, 4, 4, 8, 1).is_empty());
    }

    #[test]
    fn run_row_chunks_covers_every_row() {
        let mut out = vec![0.0f32; 39 * 5];
        let plan = plan_chunks(13, 3, 3, 4, 1);
        run_row_chunks(&mut out, 5, &plan, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(5).enumerate() {
                for v in row {
                    *v = (row0 + r) as f32;
                }
            }
        });
        for (r, row) in out.chunks(5).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r}");
        }
    }
}
