//! # actcomp-tensor
//!
//! A small, dense, row-major `f32` tensor library — the numerical substrate
//! of the `actcomp` workspace (a reproduction of *"Does Compressing
//! Activations Help Model Parallel Training?"*, MLSys 2024).
//!
//! The paper's accuracy experiments require a real training stack: forward
//! and backward passes through Transformer encoders with compression
//! operators spliced into the model-parallel boundaries. This crate provides
//! exactly the operations that stack needs:
//!
//! - [`Tensor`]: contiguous storage, elementwise algebra, reductions,
//!   slicing/concatenation along rows and columns (the tensor-parallel
//!   sharding primitives),
//! - blocked, register-tiled matmul kernels ([`kernels`]) including
//!   transpose-free `AᵀB` / `ABᵀ` variants ([`Tensor::matmul_tn`],
//!   [`Tensor::matmul_nt`]) for backprop, threaded via [`pool`]
//!   (`ACTCOMP_THREADS`) and fed scratch by a reusable [`Workspace`],
//! - [`ops`]: softmax / GELU / layer-norm statistics with derivatives,
//! - [`graph`] / [`fuse`] / [`plan`]: a small op-graph IR with
//!   GEMM-epilogue fusion and automatic workspace planning — layers emit
//!   graph segments and execute [`plan::CompiledPlan`]s instead of
//!   hand-threading `_ws` scratch buffers,
//! - [`linalg`]: a Jacobi SVD for the paper's Figure 2 low-rank analysis,
//! - [`init`]: seeded initializers so every experiment is reproducible.
//!
//! # Example
//!
//! ```
//! use actcomp_tensor::{Tensor, init};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let x = init::randn(&mut rng, [4, 16], 1.0);
//! let w = init::xavier_uniform(&mut rng, 16, 8);
//! let y = x.matmul(&w).gelu();
//! assert_eq!(y.dims(), &[4, 8]);
//! ```

#![warn(missing_docs)]

mod shape;
mod tensor;

pub mod fuse;
pub mod graph;
pub mod init;
pub mod kernels;
pub mod linalg;
pub mod ops;
pub mod plan;
pub mod pool;
pub mod workspace;

mod matmul;

pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;
