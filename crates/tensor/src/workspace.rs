//! Reusable scratch-buffer arena for hot kernel callers.
//!
//! The training loop calls the same matmuls with the same shapes every
//! step, so per-call `Vec` allocation is pure churn. A [`Workspace`] is a
//! freelist of previously-used buffers: [`Workspace::lease`] hands out a
//! zeroed `Vec<f32>` (recycled when one of sufficient capacity is
//! available), and [`Workspace::recycle`] returns it for the next call.
//!
//! Ownership rules (also documented in `DESIGN.md`):
//!
//! - A workspace is **per-owner, not shared**: each runtime rank thread
//!   owns its own `Workspace`; nothing is synchronized.
//! - Leased buffers are plain owned `Vec<f32>`s — forgetting to recycle
//!   one is a missed reuse, never unsoundness or a leak beyond that call.
//! - Buffers come back **zeroed**, so kernels can accumulate into them
//!   directly.
//! - Convenience [`Tensor`] wrappers ([`Workspace::lease_tensor`],
//!   [`Workspace::recycle_tensor`]) move the buffer in and out of tensor
//!   form without copying.
//!
//! Plain `Tensor::matmul`-style methods that have no caller-provided
//! workspace use a thread-local one via [`with_thread_default`], so even
//! "workspace-oblivious" code stops allocating per call after warm-up.

use crate::{Shape, Tensor};
use std::cell::RefCell;

/// Retain at most this many free buffers; beyond that, drop the smallest.
const MAX_CACHED: usize = 32;

/// A freelist arena of reusable `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a zeroed buffer of exactly `len` elements, reusing a cached
    /// allocation when one is large enough.
    #[must_use]
    pub fn lease(&mut self, len: usize) -> Vec<f32> {
        // Pick the smallest cached buffer whose capacity fits, so big
        // buffers stay available for big requests.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the freelist for later reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.push(buf);
        if self.free.len() > MAX_CACHED {
            // Evict the smallest buffer: the large ones are the expensive
            // allocations worth keeping.
            if let Some((i, _)) = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                self.free.swap_remove(i);
            }
        }
    }

    /// Leases a zeroed [`Tensor`] with the given shape.
    #[must_use]
    pub fn lease_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.lease(shape.len());
        Tensor::from_vec(buf, shape)
    }

    /// Recycles a tensor's backing buffer into the freelist.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_vec());
    }

    /// Number of buffers currently cached (for tests and diagnostics).
    #[must_use]
    pub fn cached(&self) -> usize {
        self.free.len()
    }
}

thread_local! {
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's default workspace.
///
/// Used by the workspace-oblivious `Tensor` methods; explicit `_ws`
/// variants take precedence in hot paths so ranks keep their scratch
/// local.
///
/// Re-entrant calls (a plain method invoked while the thread default is
/// already borrowed) fall back to a fresh temporary workspace: correct,
/// just without reuse for that inner call.
pub fn with_thread_default<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_capacity() {
        let mut ws = Workspace::new();
        let mut a = ws.lease(100);
        a[0] = 7.0;
        let ptr = a.as_ptr();
        ws.recycle(a);
        let b = ws.lease(64);
        assert_eq!(b.as_ptr(), ptr, "smaller lease reuses cached buffer");
        assert!(b.iter().all(|&v| v == 0.0), "leased buffer is zeroed");
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn prefers_smallest_fitting_buffer() {
        let mut ws = Workspace::new();
        let big = ws.lease(1000);
        let small = ws.lease(10);
        let small_ptr = small.as_ptr();
        ws.recycle(big);
        ws.recycle(small);
        let got = ws.lease(8);
        assert_eq!(got.as_ptr(), small_ptr);
    }

    #[test]
    fn eviction_keeps_large_buffers() {
        let mut ws = Workspace::new();
        for i in 0..(MAX_CACHED + 5) {
            ws.recycle(vec![0.0; i + 1]);
        }
        assert_eq!(ws.cached(), MAX_CACHED);
        let max_cap = ws.free.iter().map(Vec::capacity).max().unwrap();
        assert!(max_cap >= MAX_CACHED + 5);
    }

    #[test]
    fn tensor_round_trip() {
        let mut ws = Workspace::new();
        let t = ws.lease_tensor([3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        ws.recycle_tensor(t);
        assert_eq!(ws.cached(), 1);
    }
}
