//! End-to-end tests for `actcomp run --backend procs`: real OS
//! processes, real sockets, compared against the threads backend via
//! `--grad-hash` (an FNV-1a over every gradient's bytes in serial
//! visit order — equal hashes mean bit-identical training state).

use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_actcomp");

/// Shape flags small enough that a 4-process run finishes in seconds.
const SHAPE: &[&str] = &[
    "--tp",
    "2",
    "--pp",
    "2",
    "--layers",
    "4",
    "--hidden",
    "32",
    "--batch",
    "4",
    "--seq",
    "8",
    "--micro-batches",
    "2",
    "--steps",
    "2",
    "--seed",
    "7",
    "--grad-hash",
];

fn run(extra: &[&str], out_name: &str) -> Output {
    let dir = std::env::temp_dir();
    let out = dir.join(format!(
        "actcomp-e2e-{}-{out_name}.json",
        std::process::id()
    ));
    Command::new(BIN)
        .arg("run")
        .args(SHAPE)
        .args(extra)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn actcomp")
}

fn grad_hash(output: &Output) -> String {
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "run failed\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("grad-hash "))
        .unwrap_or_else(|| panic!("no grad-hash line in:\n{stdout}"))
        .to_string()
}

#[test]
fn procs_uds_and_tcp_match_threads_bitwise() {
    let threads = grad_hash(&run(&["--backend", "threads"], "threads"));
    let uds = grad_hash(&run(
        &["--backend", "procs", "--transport", "uds"],
        "procs-uds",
    ));
    let tcp = grad_hash(&run(
        &["--backend", "procs", "--transport", "tcp"],
        "procs-tcp",
    ));
    assert_eq!(threads, uds, "UDS workers must match the threads backend");
    assert_eq!(threads, tcp, "TCP workers must match the threads backend");
}

#[test]
fn throttled_tcp_is_still_bit_identical() {
    let threads = grad_hash(&run(&["--backend", "threads"], "threads-thr"));
    let throttled = grad_hash(&run(
        &[
            "--backend",
            "procs",
            "--transport",
            "tcp",
            "--link-mbps",
            "50",
        ],
        "procs-tcp-thr",
    ));
    assert_eq!(threads, throttled, "a bandwidth cap must not change bits");
}

#[test]
fn killed_worker_surfaces_a_typed_error_not_a_hang() {
    let start = Instant::now();
    let output = run(
        &[
            "--backend",
            "procs",
            "--transport",
            "tcp",
            "--fail-rank",
            "1",
        ],
        "procs-kill",
    );
    let elapsed = start.elapsed();
    assert!(
        !output.status.success(),
        "a run with a dead worker must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("lost") || stderr.contains("peer closed"),
        "stderr should carry the typed worker-loss error, got:\n{stderr}"
    );
    // Typed failure, not a timeout: well under the rendezvous/step
    // timeouts (the dead peer's sockets close immediately).
    assert!(
        elapsed < Duration::from_secs(60),
        "failure took {elapsed:?}; the launcher must not hang"
    );
}

#[test]
fn mpsc_transport_is_rejected_for_procs() {
    let output = run(&["--backend", "procs", "--transport", "mpsc"], "procs-mpsc");
    assert!(!output.status.success());
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(all.contains("AC0701"), "checker should flag mpsc: {all}");
}
