//! Chaos e2e for the procs backend: kill a worker mid-run with the
//! fault-injection layer, and assert the supervisor detects the loss,
//! respawns from the last distributed checkpoint, and finishes with a
//! grad hash **bit-identical** to the fault-free run.

use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_actcomp");

/// Small 2-process tensor-parallel shape; six steps leave room for a
/// checkpoint at step 2 and a kill at step 3.
const SHAPE: &[&str] = &[
    "--backend",
    "procs",
    "--tp",
    "2",
    "--pp",
    "1",
    "--layers",
    "4",
    "--hidden",
    "32",
    "--batch",
    "4",
    "--seq",
    "8",
    "--steps",
    "6",
    "--seed",
    "7",
    "--grad-hash",
];

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("actcomp-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs `actcomp run` with `cwd` as the working directory (chaos runs
/// drop a `RECOVERY_trace.json` there; pointing it at scratch keeps the
/// source tree clean).
fn run(extra: &[&str], out_name: &str, cwd: &std::path::Path) -> Output {
    let out = std::env::temp_dir().join(format!(
        "actcomp-recovery-{}-{out_name}.json",
        std::process::id()
    ));
    Command::new(BIN)
        .arg("run")
        .args(SHAPE)
        .args(extra)
        .arg("--out")
        .arg(&out)
        .current_dir(cwd)
        .output()
        .expect("spawn actcomp")
}

fn grad_hash(output: &Output) -> String {
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "run failed\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("grad-hash "))
        .unwrap_or_else(|| panic!("no grad-hash line in:\n{stdout}"))
        .to_string()
}

#[test]
fn killed_rank_recovers_from_checkpoint_bit_identically() {
    let work = scratch("work");
    let baseline = grad_hash(&run(&[], "baseline", &work));

    let ckpt = scratch("ckpt");
    let ckpt_flag = ckpt.to_str().expect("utf-8 temp dir");
    let start = Instant::now();
    let chaos = run(
        &[
            "--fault",
            "kill:rank=1@step=3",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
            ckpt_flag,
        ],
        "chaos",
        &work,
    );
    let elapsed = start.elapsed();
    let hash = grad_hash(&chaos);
    let stdout = String::from_utf8_lossy(&chaos.stdout);

    // The supervisor must have actually recovered (not sailed through).
    assert!(
        stdout.contains("recovery: epoch"),
        "no recovery event in stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("recovery: run completed after"),
        "no recovery summary in stdout:\n{stdout}"
    );
    // Detection is heartbeat/socket-close driven, far below the step
    // timeout — the whole chaos run must stay interactive.
    assert!(
        elapsed < Duration::from_secs(120),
        "chaos run took {elapsed:?}; detection must not wait out a timeout"
    );
    // The acceptance bar: recovery is bitwise-lossless.
    assert_eq!(
        hash, baseline,
        "recovered run must match the fault-free grad hash bit-for-bit"
    );

    // The machine-readable trace rides along for CI artifact upload.
    let trace =
        std::fs::read_to_string(work.join("RECOVERY_trace.json")).expect("recovery trace written");
    assert!(
        trace.contains("\"restarts\""),
        "trace should carry the restart count: {trace}"
    );
}

#[test]
fn unrecovered_fault_fails_when_restarts_are_exhausted() {
    // max-restarts 0 turns the supervisor into fail-fast: the kill must
    // surface as a typed error, not a hang and not a silent success.
    let output = run(
        &["--fault", "kill:rank=1@step=1", "--max-restarts", "0"],
        "no-restarts",
        &scratch("no-restarts"),
    );
    assert!(
        !output.status.success(),
        "a kill with no restart budget must fail the run"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("lost") || stderr.contains("peer closed") || stderr.contains("timed out"),
        "stderr should carry the typed loss error:\n{stderr}"
    );
}
