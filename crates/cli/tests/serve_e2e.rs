//! End-to-end tests for `actcomp serve`: resident multi-process rank
//! workers behind the admission queue, the synthetic load generator,
//! and the typed-failure path when a worker dies mid-request.

use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_actcomp");

fn serve(extra: &[&str]) -> Output {
    Command::new(BIN)
        .arg("serve")
        .args([
            "--tp", "2", "--pp", "2", "--layers", "4", "--hidden", "32", "--seq", "8",
        ])
        .args(extra)
        .output()
        .expect("spawn actcomp")
}

#[test]
fn procs_workers_serve_requests_end_to_end() {
    let output = serve(&[
        "--backend",
        "procs",
        "--transport",
        "uds",
        "--requests",
        "16",
        "--clients",
        "4",
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "serve failed\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("req/s"),
        "load report should print throughput:\n{stdout}"
    );
}

#[test]
fn killed_serve_worker_surfaces_a_typed_error_not_a_hang() {
    let start = Instant::now();
    // The fault plan kills rank 1 on its first inference command, so
    // every queued request must fail with the typed worker-loss error
    // from the PR 8 liveness machinery — and fast: the dead peer's
    // sockets close immediately, nothing waits out a timeout.
    let output = serve(&[
        "--backend",
        "procs",
        "--transport",
        "tcp",
        "--fault",
        "kill:rank=1@step=0",
        "--requests",
        "8",
        "--clients",
        "4",
    ]);
    let elapsed = start.elapsed();
    assert!(
        !output.status.success(),
        "serving on a dead world must exit non-zero"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("request(s) failed"),
        "stderr should count the failed requests, got:\n{stderr}"
    );
    assert!(
        stderr.contains("lost") || stderr.contains("timed out"),
        "stderr should carry the typed worker-loss error, got:\n{stderr}"
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "failure took {elapsed:?}; serving must never hang on a dead rank"
    );
}

#[test]
fn bench_writes_the_serving_report() {
    let out = std::env::temp_dir().join(format!(
        "actcomp-serve-e2e-{}-bench.json",
        std::process::id()
    ));
    let output = serve(&[
        "--bench",
        "--quick",
        "--requests",
        "32",
        "--clients",
        "8",
        "--out",
        out.to_str().expect("utf-8 temp path"),
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "bench failed\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("bench report written");
    let _ = std::fs::remove_file(&out);
    for field in [
        "\"serial\"",
        "\"batched\"",
        "\"open\"",
        "\"req_per_s\"",
        "\"p50_ms\"",
        "\"p95_ms\"",
        "\"p99_ms\"",
        "\"speedup_batched_vs_serial\"",
        "\"batch_hist\"",
        "\"report\"",
        "\"wire_dtype\"",
    ] {
        assert!(
            text.contains(field),
            "BENCH_serve.json missing {field}:\n{text}"
        );
    }
}

#[test]
fn serve_rejects_serving_options_on_the_serial_backend() {
    let output = serve(&["--backend", "serial", "--requests", "4"]);
    assert!(!output.status.success());
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        all.contains("AC1002"),
        "checker should flag serving options on serial: {all}"
    );
}

#[test]
fn f16_wire_serves_over_procs() {
    let output = serve(&[
        "--backend",
        "procs",
        "--transport",
        "uds",
        "--wire-dtype",
        "f16",
        "--requests",
        "8",
        "--clients",
        "2",
    ]);
    assert!(
        output.status.success(),
        "f16 procs serve failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
