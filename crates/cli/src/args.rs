//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    /// Positional arguments after the subcommand (e.g. a config path).
    pub positionals: Vec<String>,
    /// `--key value` pairs and bare `--flag`s (mapped to `"true"`).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// Grammar: the first non-flag token is the subcommand; every
    /// `--key` consumes the following token as its value unless that
    /// token is itself a flag (then `key` is boolean).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut command = None;
        let mut positionals = Vec::new();
        let mut options = HashMap::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                let value = match tokens.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.clone()
                    }
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else if command.is_none() {
                command = Some(t.clone());
            } else {
                positionals.push(t.clone());
            }
            i += 1;
        }
        Args {
            command,
            positionals,
            options,
        }
    }

    /// Parses from `std::env::args`.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// String option with a default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// String option without a default: `None` when the flag is absent.
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Numeric option with a default; exits with a message on a malformed
    /// value.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.options.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: --{key} expects an integer, got '{v}'");
                std::process::exit(2);
            }),
        }
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("simulate --tp 2 --pp 4 --machine pcie");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("tp", "1"), "2");
        assert_eq!(a.get_usize("pp", 1), 4);
        assert_eq!(a.get("machine", "nvlink"), "pcie");
    }

    #[test]
    fn bare_flags_are_boolean() {
        let a = parse("scaling --json --nodes 4");
        assert!(a.flag("json"));
        assert!(!a.flag("missing"));
        assert_eq!(a.get_usize("nodes", 1), 4);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("finetune --quick --task rte");
        assert!(a.flag("quick"));
        assert_eq!(a.get("task", "sst2"), "rte");
    }

    #[test]
    fn raw_distinguishes_absent_from_given() {
        let a = parse("run --kernel-threads 4");
        assert_eq!(a.raw("kernel-threads"), Some("4"));
        assert_eq!(a.raw("steps"), None);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("simulate");
        assert_eq!(a.get_usize("tp", 2), 2);
        assert_eq!(a.get("spec", "A1"), "A1");
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert_eq!(a.command, None);
        assert!(a.options.is_empty());
        assert!(a.positionals.is_empty());
    }

    #[test]
    fn positionals_follow_the_command() {
        let a = parse("check config.json --json");
        assert_eq!(a.command.as_deref(), Some("check"));
        assert_eq!(a.positionals, vec!["config.json".to_string()]);
        assert!(a.flag("json"));
    }
}
