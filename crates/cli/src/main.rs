//! `actcomp` — command-line interface to the reproduction of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! ```text
//! actcomp check experiment.json
//! actcomp simulate --machine pcie --tp 2 --pp 2 --batch 32 --seq 512 --spec A1
//! actcomp pretrain-sim --tp 4 --pp 4 --spec A2
//! actcomp finetune --task cola --spec Q2 --steps 150
//! actcomp scaling
//! actcomp specs
//! ```

mod args;

use actcomp_check::{render_report, ExperimentConfig, Severity};
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::throughput::{finetune_breakdown, pretrain_breakdown, Machine};
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;
use actcomp_distsim::IterationBreakdown;
use actcomp_perfmodel::scaling::{paper_bandwidth_elems, table10_configs};
use actcomp_perfmodel::{weak_scaling, PerfCoefficients};
use args::Args;

fn main() {
    let args = Args::from_env();
    match args.command.as_deref() {
        Some("check") => check(&args),
        Some("simulate") => simulate(&args),
        Some("pretrain-sim") => pretrain_sim(&args),
        Some("finetune") => finetune(&args),
        Some("scaling") => scaling(&args),
        Some("specs") => specs(),
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n");
            usage();
            std::process::exit(2);
        }
        None => usage(),
    }
}

fn usage() {
    println!(
        "actcomp — activation compression for model-parallel training (MLSys 2024 reproduction)

USAGE:
  actcomp check         <CONFIG.json> | --print-default | --print-pretrain
  actcomp simulate      [--machine nvlink|pcie] [--tp N] [--pp N] [--batch N] [--seq N] [--spec ID] [--json]
  actcomp pretrain-sim  [--tp N] [--pp N] [--spec ID] [--json]
  actcomp finetune      [--task NAME] [--spec ID] [--steps N] [--seed N]
  actcomp scaling       [--json]
  actcomp specs

Spec IDs follow the paper's Table 1: w/o A1 A2 T1-T4 R1-R4 Q1-Q3.
Tasks: mnli qqp sst2 mrpc cola qnli rte stsb."
    );
}

fn parse_spec(name: &str) -> CompressorSpec {
    CompressorSpec::all()
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("error: unknown spec '{name}' (try `actcomp specs`)");
            std::process::exit(2);
        })
}

fn parse_task(name: &str) -> GlueTask {
    let target = name.to_ascii_lowercase().replace('-', "");
    GlueTask::all()
        .into_iter()
        .find(|t| t.name().to_ascii_lowercase().replace('-', "") == target)
        .unwrap_or_else(|| {
            eprintln!("error: unknown task '{name}'");
            std::process::exit(2);
        })
}

fn print_breakdown(b: &IterationBreakdown, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(b).expect("serialize"));
        return;
    }
    println!("total        {:>10.2} ms", b.total_ms);
    println!("  forward    {:>10.2} ms", b.forward_ms);
    println!("  backward   {:>10.2} ms", b.backward_ms);
    println!("  optimizer  {:>10.2} ms", b.optimizer_ms);
    println!("  wait & PP  {:>10.2} ms", b.wait_pp_ms);
    println!("  tensor enc {:>10.2} ms", b.tensor_enc_ms);
    println!("  tensor dec {:>10.2} ms", b.tensor_dec_ms);
    println!("  tensor comm{:>10.2} ms", b.tensor_comm_ms);
    if !b.boundary_per_mb_ms.is_empty() {
        let bounds: Vec<String> = b
            .boundary_per_mb_ms
            .iter()
            .map(|x| format!("{x:.1}"))
            .collect();
        println!("  boundaries [{}] ms/micro-batch", bounds.join(", "));
    }
}

/// `actcomp check <config.json>`: parse, validate, render the report, and
/// exit 0 (clean/warnings) or 1 (errors).
fn check(args: &Args) {
    if args.flag("print-default") || args.flag("print-pretrain") {
        let cfg = if args.flag("print-pretrain") {
            ExperimentConfig::paper_pretrain()
        } else {
            ExperimentConfig::paper_default()
        };
        println!("{}", cfg.to_json());
        return;
    }
    let Some(path) = args.positionals.first() else {
        eprintln!("error: `actcomp check` needs a config path (or --print-default)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let cfg = ExperimentConfig::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid experiment config: {e}");
        std::process::exit(2);
    });
    let diags = actcomp_check::check(&cfg);
    println!("{}", render_report(&diags));
    if diags.iter().any(|d| d.severity == Severity::Error) {
        std::process::exit(1);
    }
}

/// Validates a config assembled from CLI flags before handing it to the
/// simulator; errors print the full report and exit, warnings print and
/// continue.
fn validate_or_exit(cfg: &ExperimentConfig) {
    match actcomp_check::validate(cfg) {
        Ok(warnings) => {
            if !warnings.is_empty() {
                eprintln!("{}", render_report(&warnings));
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn simulate(args: &Args) {
    let machine = match args.get("machine", "nvlink") {
        "nvlink" => Machine::AwsP3,
        "pcie" => Machine::LocalPcie,
        other => {
            eprintln!("error: unknown machine '{other}' (nvlink|pcie)");
            std::process::exit(2);
        }
    };
    let spec = parse_spec(args.get("spec", "w/o"));

    let mut cfg = ExperimentConfig::paper_default();
    cfg.cluster.preset = match machine {
        Machine::AwsP3 => "p3_8xlarge".to_string(),
        _ => "local_no_nvlink".to_string(),
    };
    cfg.parallelism.tp = args.get_usize("tp", 2);
    cfg.parallelism.pp = args.get_usize("pp", 2);
    cfg.batch.micro_batch = args.get_usize("batch", 32);
    cfg.batch.seq = args.get_usize("seq", 512);
    cfg.plan.spec = spec.label().to_string();
    validate_or_exit(&cfg);

    let b = finetune_breakdown(
        machine,
        args.get_usize("tp", 2),
        args.get_usize("pp", 2),
        args.get_usize("batch", 32),
        args.get_usize("seq", 512),
        spec,
    );
    print_breakdown(&b, args.flag("json"));
}

fn pretrain_sim(args: &Args) {
    let spec = parse_spec(args.get("spec", "w/o"));

    let mut cfg = ExperimentConfig::paper_pretrain();
    cfg.parallelism.tp = args.get_usize("tp", 4);
    cfg.parallelism.pp = args.get_usize("pp", 4);
    cfg.plan.spec = spec.label().to_string();
    validate_or_exit(&cfg);

    let b = pretrain_breakdown(cfg.parallelism.tp, cfg.parallelism.pp, spec);
    print_breakdown(&b, args.flag("json"));
}

fn finetune(args: &Args) {
    let task = parse_task(args.get("task", "sst2"));
    let mut cfg = AccuracyConfig::paper_default().with_spec(parse_spec(args.get("spec", "w/o")));
    cfg.steps = args.get_usize("steps", cfg.steps);
    cfg.seed = args.get_usize("seed", cfg.seed as usize) as u64;
    println!(
        "fine-tuning {} with {} for {} steps (TP={}, PP={})...",
        task.name(),
        cfg.spec.label(),
        cfg.steps,
        cfg.tp,
        cfg.pp
    );
    let r = accuracy::finetune(&cfg, task);
    println!(
        "{} score: {:.2}   (final train loss {:.3})",
        task.name(),
        r.score,
        r.final_loss
    );
}

fn scaling(args: &Args) {
    let rows = weak_scaling(
        &PerfCoefficients::paper(),
        &table10_configs(),
        paper_bandwidth_elems(),
    );
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serialize")
        );
        return;
    }
    println!(
        "{:>8} {:>7} {:>6} {:>7} {:>9}",
        "hidden", "layers", "nodes", "batch", "speedup"
    );
    for r in rows {
        println!(
            "{:>8} {:>7} {:>6} {:>7} {:>8.2}x",
            r.config.hidden, r.config.layers, r.config.nodes, r.config.batch, r.speedup
        );
    }
}

fn specs() {
    println!("{:6} {:14} meaning", "id", "family");
    for s in CompressorSpec::all() {
        let meaning = match s {
            CompressorSpec::Baseline => "no compression".to_string(),
            CompressorSpec::A1 | CompressorSpec::A2 => {
                format!("auto-encoder, code dim {} at h=1024", s.code_dim(1024))
            }
            CompressorSpec::T1 | CompressorSpec::T2 | CompressorSpec::R1 | CompressorSpec::R2 => {
                "sparsifier, same comm cost as the matching AE".to_string()
            }
            CompressorSpec::T3 | CompressorSpec::T4 | CompressorSpec::R3 | CompressorSpec::R4 => {
                "sparsifier, same compression ratio as the matching AE".to_string()
            }
            _ => format!("{}-bit uniform quantization", s.quant_bits()),
        };
        println!(
            "{:6} {:14} {}",
            s.label(),
            format!("{:?}", s.family()),
            meaning
        );
    }
}
