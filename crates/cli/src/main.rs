//! `actcomp` — command-line interface to the reproduction of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! ```text
//! actcomp check experiment.json
//! actcomp run --backend threads --tp 2 --pp 2 --spec T2 --steps 3
//! actcomp serve --bench --quick --tp 2 --pp 2 --spec T2
//! actcomp simulate --machine pcie --tp 2 --pp 2 --batch 32 --seq 512 --spec A1
//! actcomp pretrain-sim --tp 4 --pp 4 --spec A2
//! actcomp finetune --task cola --spec Q2 --steps 150
//! actcomp scaling
//! actcomp specs
//! ```

mod args;

use actcomp_check::{render_report, ExperimentConfig, RuntimeSection, Severity};
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::throughput::{finetune_breakdown, pretrain_breakdown, Machine};
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;
use actcomp_distsim::IterationBreakdown;
use actcomp_perfmodel::scaling::{paper_bandwidth_elems, table10_configs};
use actcomp_perfmodel::{weak_scaling, PerfCoefficients};
use args::Args;

fn main() {
    let args = Args::from_env();
    match args.command.as_deref() {
        Some("check") => check(&args),
        Some("run") => run(&args),
        Some("serve") => serve(&args),
        Some("simulate") => simulate(&args),
        Some("pretrain-sim") => pretrain_sim(&args),
        Some("finetune") => finetune(&args),
        Some("scaling") => scaling(&args),
        Some("specs") => specs(),
        // Hidden: re-exec'd by `run --backend procs` for each rank.
        Some("worker") => worker(&args),
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n");
            usage();
            std::process::exit(2);
        }
        None => usage(),
    }
}

fn usage() {
    println!(
        "actcomp — activation compression for model-parallel training (MLSys 2024 reproduction)

USAGE:
  actcomp check         <CONFIG.json> [--comm] | --print-default | --print-pretrain
  actcomp run           [--backend threads|serial|procs] [--tp N] [--pp N] [--spec ID] [--steps N]
                        [--batch N] [--seq N] [--layers N] [--hidden N] [--heads N] [--ff N]
                        [--vocab N] [--micro-batches N] [--kernel-threads N] [--chunk-rows N]
                        [--pipeline-depth N] [--error-feedback] [--audit] [--seed N] [--out PATH]
                        [--transport uds|tcp] [--link-mbps X] [--grad-hash]
                        [--fault SPEC] [--checkpoint-every N] [--checkpoint-dir PATH]
                        [--max-restarts N] [--step-timeout SECS] [--rendezvous-timeout SECS]
  actcomp serve         [--backend threads|procs] [--tp N] [--pp N] [--spec ID] [--seq N]
                        [--layers N] [--hidden N] [--heads N] [--ff N] [--vocab N]
                        [--max-batch N] [--batch-window-us N] [--depth N] [--wire-dtype f32|f16]
                        [--requests N] [--clients N] [--arrival closed|open] [--rate X]
                        [--bench] [--quick] [--seed N] [--out PATH]
                        [--transport uds|tcp] [--fault SPEC]
  actcomp simulate      [--machine nvlink|pcie] [--tp N] [--pp N] [--batch N] [--seq N] [--spec ID] [--json]
  actcomp pretrain-sim  [--tp N] [--pp N] [--spec ID] [--json]
  actcomp finetune      [--task NAME] [--spec ID] [--steps N] [--seed N]
  actcomp scaling       [--json]
  actcomp specs

Spec IDs follow the paper's Table 1: w/o A1 A2 T1-T4 R1-R4 Q1-Q3.
Tasks: mnli qqp sst2 mrpc cola qnli rte stsb.

Fault specs (--fault, procs backend): kill:rank=R@step=K, drop|dup|corrupt|sever:frame=N[,rank=R],
delay:frame=N,ms=M, <kind>:p=P[,seed=S]. With --checkpoint-every, a killed rank's generation is
fenced off and the world restarts from the last checkpoint (see DESIGN.md, Fault tolerance)."
    );
}

fn parse_spec(name: &str) -> CompressorSpec {
    CompressorSpec::all()
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("error: unknown spec '{name}' (try `actcomp specs`)");
            std::process::exit(2);
        })
}

fn parse_task(name: &str) -> GlueTask {
    let target = name.to_ascii_lowercase().replace('-', "");
    GlueTask::all()
        .into_iter()
        .find(|t| t.name().to_ascii_lowercase().replace('-', "") == target)
        .unwrap_or_else(|| {
            eprintln!("error: unknown task '{name}'");
            std::process::exit(2);
        })
}

fn print_breakdown(b: &IterationBreakdown, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(b).expect("serialize"));
        return;
    }
    println!("total        {:>10.2} ms", b.total_ms);
    println!("  forward    {:>10.2} ms", b.forward_ms);
    println!("  backward   {:>10.2} ms", b.backward_ms);
    println!("  optimizer  {:>10.2} ms", b.optimizer_ms);
    println!("  wait & PP  {:>10.2} ms", b.wait_pp_ms);
    println!("  tensor enc {:>10.2} ms", b.tensor_enc_ms);
    println!("  tensor dec {:>10.2} ms", b.tensor_dec_ms);
    println!("  tensor comm{:>10.2} ms", b.tensor_comm_ms);
    if !b.boundary_per_mb_ms.is_empty() {
        let bounds: Vec<String> = b
            .boundary_per_mb_ms
            .iter()
            .map(|x| format!("{x:.1}"))
            .collect();
        println!("  boundaries [{}] ms/micro-batch", bounds.join(", "));
    }
}

/// `actcomp check <config.json>`: parse, validate, render the report, and
/// exit 0 (clean/warnings) or 1 (errors). With `--comm`, additionally
/// build the static message-flow graph for the threaded engine and prove
/// send/recv matching, byte accounting, and deadlock freedom (AC06xx).
fn check(args: &Args) {
    if args.flag("print-default") || args.flag("print-pretrain") {
        let cfg = if args.flag("print-pretrain") {
            ExperimentConfig::paper_pretrain()
        } else {
            ExperimentConfig::paper_default()
        };
        println!("{}", cfg.to_json());
        return;
    }
    // `--comm` is a bare flag, but the parser grammar hands it the next
    // token as a value — so `check --comm cfg.json` parks the path under
    // the flag. Accept both orders.
    let comm_val = args.raw("comm");
    let comm = comm_val.is_some();
    let positional = args.positionals.first().map(String::as_str);
    let Some(path) = positional.or_else(|| comm_val.filter(|v| *v != "true")) else {
        eprintln!("error: `actcomp check` needs a config path (or --print-default)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let cfg = ExperimentConfig::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid experiment config: {e}");
        std::process::exit(2);
    });
    let diags = actcomp_check::check(&cfg);
    println!("{}", render_report(&diags));
    if diags.iter().any(|d| d.severity == Severity::Error) {
        std::process::exit(1);
    }
    if comm {
        comm_check(&cfg);
    }
}

/// The `--comm` half of `actcomp check`: static comm-protocol analysis.
fn comm_check(cfg: &ExperimentConfig) {
    let Some(graph) = actcomp_check::build_comm_graph(cfg) else {
        println!(
            "comm: skipped — protocol analysis applies to `runtime.backend = \"threads\"` plans"
        );
        return;
    };
    let diags = actcomp_check::analyze(&graph);
    if diags.is_empty() {
        println!(
            "comm: OK — {} ranks (tp={} pp={} m={}), {} events, {} messages over {} channels; \
             every send is received, byte accounting closes, and the blocking-dependency \
             graph is acyclic (deadlock-free).",
            graph.world(),
            graph.tp,
            graph.pp,
            graph.micro_batches,
            graph.event_count(),
            graph.message_count(),
            graph.channel_count()
        );
    } else {
        println!("{}", render_report(&diags));
        if diags.iter().any(|d| d.severity == Severity::Error) {
            std::process::exit(1);
        }
    }
}

/// `actcomp run`: execute real training steps on the threaded engine
/// (`--backend threads`, one OS thread per rank) or the serial executor
/// (`--backend serial`), print the measured per-phase breakdown, and —
/// for the threaded engine — write it as `BENCH_runtime.json`.
///
/// The defaults are a deliberately tiny transformer so the command
/// doubles as a fast smoke test; scale the shape flags up for real
/// measurements.
fn run(args: &Args) {
    use rand::{Rng, SeedableRng};

    let backend = args.get("backend", "threads").to_string();
    let tp = args.get_usize("tp", 2);
    let pp = args.get_usize("pp", 2);
    let layers = args.get_usize("layers", 4);
    let hidden = args.get_usize("hidden", 32);
    let heads = args.get_usize("heads", 4);
    let ff = args.get_usize("ff", 64);
    let vocab = args.get_usize("vocab", 64);
    let batch = args.get_usize("batch", 4);
    let seq = args.get_usize("seq", 8);
    let m = args.get_usize("micro-batches", 1);
    let steps = args.get_usize("steps", 2);
    let seed = args.get_usize("seed", 0) as u64;
    let kernel_threads = args.raw("kernel-threads").map(|v| {
        actcomp_tensor::pool::parse_thread_spec(v).unwrap_or_else(|e| {
            eprintln!("error: --kernel-threads: {e}");
            std::process::exit(2);
        })
    });
    let chunk_rows = args.raw("chunk-rows").map(|v| {
        actcomp_tensor::pool::parse_count_spec(v, "chunk row count").unwrap_or_else(|e| {
            eprintln!("error: --chunk-rows: {e}");
            std::process::exit(2);
        })
    });
    let pipeline_depth = args.raw("pipeline-depth").map(|v| {
        actcomp_tensor::pool::parse_count_spec(v, "pipeline depth").unwrap_or_else(|e| {
            eprintln!("error: --pipeline-depth: {e}");
            std::process::exit(2);
        })
    });
    let out = args.get("out", "BENCH_runtime.json");
    let spec = parse_spec(args.get("spec", "w/o"));
    let audit = args.flag("audit");
    let grad_hash = args.flag("grad-hash");
    let lr = 1e-2;
    if audit && backend != "threads" {
        eprintln!("error: --audit requires --backend threads (it replays the rank engine's trace)");
        std::process::exit(2);
    }
    // Transport options only mean something for the multi-process
    // launcher; the checker (AC0702/AC0703) rejects stray uses.
    let transport = match args.raw("transport") {
        Some(t) => Some(t.to_string()),
        None if backend == "procs" => Some("uds".to_string()),
        None => None,
    };
    let link_mbps = args.raw("link-mbps").map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("error: --link-mbps expects a number, got '{v}'");
            std::process::exit(2);
        })
    });
    // Test hook: make one worker exit right after rendezvous so the
    // typed-failure path (`WorkerLost`, not a hang) can be exercised
    // end-to-end. Deliberately undocumented.
    let fail_rank = args.raw("fail-rank").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: --fail-rank expects a rank index, got '{v}'");
            std::process::exit(2);
        })
    });
    // Fault-injection and recovery options (procs backend; the checker's
    // AC08xx pass rejects them elsewhere and validates the values).
    let fault = args.raw("fault").map(str::to_string);
    let checkpoint_every = args.raw("checkpoint-every").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: --checkpoint-every expects a step count, got '{v}'");
            std::process::exit(2);
        })
    });
    let checkpoint_dir = args.get("checkpoint-dir", "CKPT_actcomp").to_string();
    // Restarts default on (2) as soon as the run opts into the
    // fault-tolerance machinery; plain runs keep fail-fast semantics.
    let max_restarts = match args.raw("max-restarts") {
        Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: --max-restarts expects a count, got '{v}'");
            std::process::exit(2);
        }),
        None if fault.is_some() || checkpoint_every.is_some() => 2,
        None => 0,
    };
    let parse_secs = |key: &str| {
        args.raw(key).map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("error: --{key} expects seconds, got '{v}'");
                std::process::exit(2);
            })
        })
    };
    let step_timeout_s = parse_secs("step-timeout");
    let rendezvous_timeout_s = parse_secs("rendezvous-timeout");

    // Static validation first — the same checker path as `actcomp check`,
    // including the AC03xx runtime pass — so a bad flag combination dies
    // with a diagnosis instead of a mid-run panic in a worker thread.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.model.layers = layers;
    cfg.model.hidden = hidden;
    cfg.model.heads = heads;
    cfg.model.ff_hidden = ff;
    cfg.model.vocab = vocab;
    cfg.model.max_seq = seq;
    cfg.parallelism.tp = tp;
    cfg.parallelism.pp = pp;
    let world = tp * pp;
    if world > 4 {
        cfg.cluster.preset = "p3_cluster".to_string();
        cfg.cluster.nodes = world.div_ceil(4);
    }
    cfg.batch.micro_batch = batch;
    cfg.batch.seq = seq;
    cfg.batch.num_micro_batches = m;
    cfg.plan.spec = spec.label().to_string();
    cfg.plan.error_feedback = args.flag("error-feedback");
    cfg.runtime = Some(RuntimeSection {
        backend: backend.clone(),
        threads: None,
        micro_batches: Some(m),
        rank_map: None,
        kernel_threads,
        chunk_rows,
        pipeline_depth,
        transport: transport.clone(),
        link_mbps,
        world_size: None,
        listen: None,
        trace: Some(audit),
        step_timeout_s,
        rendezvous_timeout_s,
        fault: fault.clone(),
        checkpoint_every,
        // Only the explicit flag goes through validation; the CLI's
        // default directory is not a config statement.
        checkpoint_dir: args.raw("checkpoint-dir").map(str::to_string),
        max_restarts: args.raw("max-restarts").and(Some(max_restarts)),
        max_batch: None,
        batch_window_us: None,
        wire_dtype: None,
    });
    validate_or_exit(&cfg);
    if let Some(n) = kernel_threads {
        actcomp_tensor::pool::set_threads(n);
    }
    if let Some(n) = chunk_rows {
        actcomp_runtime::set_chunk_rows(n);
    }
    if let Some(n) = pipeline_depth {
        actcomp_runtime::set_pipeline_depth(n);
    }

    let plan = cfg.resolve_plan().expect("validated spec resolves");
    let mp_cfg = actcomp_mp::MpConfig {
        bert: actcomp_nn::BertConfig {
            vocab,
            hidden,
            layers,
            heads,
            ff_hidden: ff,
            max_seq: seq,
        },
        tp,
        pp,
        plan,
        tokens: batch * seq,
        error_feedback: cfg.plan.error_feedback,
    };

    let mut drng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x1d5);
    let ids: Vec<usize> = (0..batch * seq)
        .map(|_| (drng.gen::<u64>() % vocab as u64) as usize)
        .collect();
    println!(
        "{backend}: {layers}L h{hidden} tp={tp} pp={pp} m={m} spec={} \
         batch={batch} seq={seq} steps={steps}",
        spec.label()
    );

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    match backend.as_str() {
        "threads" => {
            // With --audit the static graph is the reference the recorded
            // trace must replay exactly; build it from the same validated
            // config so tuning resolution matches the engine's.
            let graph = audit.then(|| {
                actcomp_check::build_comm_graph(&cfg).unwrap_or_else(|| {
                    eprintln!("error: --audit: no static comm graph for this plan");
                    std::process::exit(1);
                })
            });
            let rt_cfg = actcomp_runtime::RuntimeConfig {
                mp: mp_cfg,
                micro_batches: m,
                tuning: None,
                trace: audit,
            };
            let mut rt =
                actcomp_runtime::ThreadedRuntime::new(&mut rng, rt_cfg).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            let mut last_trace = None;
            for step in 0..steps {
                let y = rt.forward(&ids, batch, seq).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
                let loss = 0.5 * y.sq_norm();
                println!("step {step}: loss {loss:.4}");
                rt.zero_grad();
                if let Err(e) = rt.backward(&y) {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
                rt.sgd_step(lr);
                if let Some(graph) = &graph {
                    let trace = rt.take_trace().expect("trace mode is on");
                    let diags = actcomp_check::audit_trace(graph, &trace);
                    if diags.is_empty() {
                        let events: usize = trace.iter().map(Vec::len).sum();
                        println!("step {step}: audit OK ({events} events conform)");
                    } else {
                        eprintln!("{}", render_report(&diags));
                        eprintln!("error: step {step} trace does not conform to the static graph");
                        std::process::exit(1);
                    }
                    last_trace = Some(trace);
                }
            }
            if let Some(trace) = last_trace {
                let path = "AUDIT_trace.json";
                match std::fs::write(
                    path,
                    serde_json::to_string_pretty(&trace).expect("serialize"),
                ) {
                    Ok(()) => println!("[audited trace written to {path}]"),
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                }
            }
            if grad_hash {
                println!("grad-hash {:016x}", grads_fnv(&rt.collect_grads()));
            }
            let report = rt.report();
            print_phase_report(&report);
            match std::fs::write(out, report.to_json()) {
                Ok(()) => println!("[report written to {out}]"),
                Err(e) => eprintln!("warning: could not write {out}: {e}"),
            }
        }
        "procs" => {
            let kind = actcomp_net::TransportKind::parse(transport.as_deref().unwrap_or("uds"))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            let rt_cfg = actcomp_runtime::RuntimeConfig {
                mp: mp_cfg,
                micro_batches: m,
                tuning: None,
                trace: false,
            };
            let mut procs = actcomp_runtime::ProcsOptions::new(rt_cfg, seed, kind);
            procs.link_mbps = link_mbps;
            procs.fail_rank = fail_rank;
            procs.fault = fault.clone();
            if let Some(secs) = step_timeout_s {
                procs.step_timeout = std::time::Duration::from_secs_f64(secs);
            }
            if let Some(secs) = rendezvous_timeout_s {
                procs.rendezvous_timeout = std::time::Duration::from_secs_f64(secs);
            }
            let chaos = fault.is_some() || checkpoint_every.is_some();
            let sup = actcomp_runtime::SuperviseOptions {
                procs,
                steps,
                lr,
                ids: ids.clone(),
                batch,
                seq,
                checkpoint_every,
                checkpoint_dir: std::path::PathBuf::from(&checkpoint_dir),
                max_restarts,
            };
            let (mut rt, recovery) = actcomp_runtime::supervise(sup, &mut |step, y| {
                let loss = 0.5 * y.sq_norm();
                println!("step {step}: loss {loss:.4}");
            })
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            for ev in &recovery.events {
                println!(
                    "recovery: epoch {} failed at step {} ({}); resumed from step {} \
                     after {} ms backoff",
                    ev.epoch, ev.step, ev.detail, ev.resumed_from, ev.backoff_ms
                );
            }
            if recovery.restarts > 0 {
                println!(
                    "recovery: run completed after {} restart(s)",
                    recovery.restarts
                );
            }
            if chaos {
                let path = "RECOVERY_trace.json";
                match std::fs::write(
                    path,
                    serde_json::to_string_pretty(&recovery).expect("serialize"),
                ) {
                    Ok(()) => println!("[recovery trace written to {path}]"),
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                }
            }
            if grad_hash {
                let grads = rt.collect_grads().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
                println!("grad-hash {:016x}", grads_fnv(&grads));
            }
            match rt.report() {
                Ok(report) => {
                    print_phase_report(&report);
                    match std::fs::write(out, report.to_json()) {
                        Ok(()) => println!("[report written to {out}]"),
                        Err(e) => eprintln!("warning: could not write {out}: {e}"),
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
            if let Err(e) = rt.shutdown() {
                eprintln!("warning: shutdown: {e}");
            }
        }
        "serial" => {
            if m > 1 {
                println!("note: the serial executor runs the whole batch per step (m ignored)");
            }
            let mut mp = actcomp_mp::MpBert::try_new(&mut rng, mp_cfg).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let start = std::time::Instant::now();
            for step in 0..steps {
                let y = mp.forward(&ids, batch, seq);
                let loss = 0.5 * y.sq_norm();
                println!("step {step}: loss {loss:.4}");
                mp.zero_grad();
                mp.backward(&y);
                mp.visit_all_params(&mut |p| p.value.axpy(-lr, &p.grad));
            }
            let elapsed = start.elapsed().as_secs_f64();
            if grad_hash {
                let mut grads = Vec::new();
                mp.visit_all_params(&mut |p| grads.push(p.grad.clone()));
                println!("grad-hash {:016x}", grads_fnv(&grads));
            }
            let bytes = mp.bytes();
            println!("total          {:>10.3} ms (single thread)", elapsed * 1e3);
            println!(
                "tp reduces     {:>10} wire B {:>10} dense B ({:.2}x)",
                bytes.wire,
                bytes.dense,
                bytes.ratio()
            );
            println!("(per-phase timers require --backend threads; nothing written)");
        }
        // Unknown backends were already rejected by the AC0301 check.
        other => unreachable!("backend `{other}` passed validation"),
    }
}

/// An in-process framed transport world for the threads serving
/// backend: one transport per rank, every peer wired to every other.
fn serve_transports(label: &str, world: usize) -> Vec<Box<dyn actcomp_net::Transport>> {
    use actcomp_net::{mpsc_world, SocketOptions, SocketTransport, Transport, TransportKind};
    match label {
        "mpsc" => mpsc_world(world)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
        "uds" | "tcp" => {
            let kind = TransportKind::parse(label).expect("known transport");
            let mut ts: Vec<SocketTransport> = (0..world)
                .map(|r| {
                    SocketTransport::bind(kind, r, world, 0x5EAF, SocketOptions::default())
                        .unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            std::process::exit(1);
                        })
                })
                .collect();
            let addrs: Vec<String> = ts.iter().map(|t| t.local_addr().to_string()).collect();
            for t in ts.iter_mut() {
                for (p, a) in addrs.iter().enumerate() {
                    t.set_peer(p, a.clone());
                }
            }
            ts.into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect()
        }
        other => {
            eprintln!("error: unknown serve transport '{other}' (typed|mpsc|uds|tcp)");
            std::process::exit(2);
        }
    }
}

/// `actcomp serve`: forward-only inference serving with continuous
/// request batching on resident rank workers (see DESIGN.md, Serving
/// engine).
///
/// Plain mode runs one synthetic load (closed- or open-loop) and
/// prints throughput, latency percentiles, and the per-rank phase
/// breakdown. `--bench` additionally measures the one-request-at-a-time
/// baseline (`max_batch = 1`, `depth = 1`) and a fixed-rate open-loop
/// run on identically-initialised engines and writes the comparison as
/// `BENCH_serve.json`.
fn serve(args: &Args) {
    use actcomp_runtime::{
        run_load, Arrival, LoadConfig, ProcsOptions, ProcsRuntime, ServeBackend, ServeConfig,
        ServeEngine, ThreadedRuntime, WireDtype,
    };
    use rand::SeedableRng;

    let backend = args.get("backend", "threads").to_string();
    let tp = args.get_usize("tp", 2);
    let pp = args.get_usize("pp", 2);
    let layers = args.get_usize("layers", 4);
    let hidden = args.get_usize("hidden", 32);
    let heads = args.get_usize("heads", 4);
    let ff = args.get_usize("ff", 64);
    let vocab = args.get_usize("vocab", 64);
    let seq = args.get_usize("seq", 8);
    let seed = args.get_usize("seed", 0) as u64;
    let spec = parse_spec(args.get("spec", "w/o"));
    let max_batch = args.get_usize("max-batch", 8);
    let window_us = args.get_usize("batch-window-us", 200) as u64;
    let depth = args.get_usize("depth", 2);
    let wire = args.get("wire-dtype", "f32").to_string();
    let bench = args.flag("bench");
    let quick = args.flag("quick");
    let requests = args.get_usize("requests", if quick { 96 } else { 512 });
    let clients = args.get_usize("clients", 2 * max_batch);
    let out = args.get("out", "BENCH_serve.json").to_string();
    let rate = args.raw("rate").map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("error: --rate expects requests per second, got '{v}'");
            std::process::exit(2);
        })
    });
    let fault = args.raw("fault").map(str::to_string);
    let transport = match args.raw("transport") {
        Some(t) => Some(t.to_string()),
        None if backend == "procs" => Some("uds".to_string()),
        None => None,
    };

    // Static validation first — the AC03xx backend pass plus the AC10xx
    // serving/wire pass — so a bad flag combination dies with a
    // diagnosis, not a panic in a worker.
    let mut cfg = ExperimentConfig::paper_default();
    cfg.model.layers = layers;
    cfg.model.hidden = hidden;
    cfg.model.heads = heads;
    cfg.model.ff_hidden = ff;
    cfg.model.vocab = vocab;
    cfg.model.max_seq = seq;
    cfg.parallelism.tp = tp;
    cfg.parallelism.pp = pp;
    let world = tp * pp;
    if world > 4 {
        cfg.cluster.preset = "p3_cluster".to_string();
        cfg.cluster.nodes = world.div_ceil(4);
    }
    // Serving is forward-only: one request = one micro-batch of `seq`
    // tokens, so the boundary/collective compressors are sized per
    // request.
    cfg.batch.micro_batch = 1;
    cfg.batch.seq = seq;
    cfg.batch.num_micro_batches = 1;
    cfg.plan.spec = spec.label().to_string();
    cfg.plan.error_feedback = args.flag("error-feedback");
    cfg.runtime = Some(RuntimeSection {
        backend: backend.clone(),
        threads: None,
        micro_batches: Some(1),
        rank_map: None,
        kernel_threads: None,
        chunk_rows: None,
        pipeline_depth: None,
        // For the threads backend `--transport` picks in-process wiring
        // (typed/mpsc/uds/tcp), which is not launcher configuration —
        // the AC07xx pass only validates the procs launcher's wire.
        transport: if backend == "procs" {
            transport.clone()
        } else {
            None
        },
        link_mbps: None,
        world_size: None,
        listen: None,
        trace: None,
        step_timeout_s: None,
        rendezvous_timeout_s: None,
        fault: fault.clone(),
        checkpoint_every: None,
        checkpoint_dir: None,
        max_restarts: None,
        max_batch: Some(max_batch),
        batch_window_us: Some(window_us),
        wire_dtype: Some(wire.clone()),
    });
    validate_or_exit(&cfg);

    // The wire dtype is process-global; procs workers inherit it via
    // the environment (the spawned `worker` subcommand reads it back).
    let wd = WireDtype::parse(&wire).expect("validated wire dtype");
    actcomp_runtime::set_wire_dtype(wd);
    std::env::set_var("ACTCOMP_WIRE_DTYPE", wd.name());

    let plan = cfg.resolve_plan().expect("validated spec resolves");
    let make_cfg = || actcomp_runtime::RuntimeConfig {
        mp: actcomp_mp::MpConfig {
            bert: actcomp_nn::BertConfig {
                vocab,
                hidden,
                layers,
                heads,
                ff_hidden: ff,
                max_seq: seq,
            },
            tp,
            pp,
            plan,
            tokens: seq,
            error_feedback: cfg.plan.error_feedback,
        },
        micro_batches: 1,
        tuning: None,
        trace: false,
    };
    let make_backend = || -> ServeBackend {
        match backend.as_str() {
            "threads" => {
                // Reseeded per engine so every bench mode serves
                // identically-initialised weights. `--transport` picks
                // the in-process wire the rank threads frame over
                // (default: typed channels, no byte framing).
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let rt = match transport.as_deref() {
                    None | Some("typed") => ThreadedRuntime::new(&mut rng, make_cfg()),
                    Some(label) => {
                        let c = make_cfg();
                        let serial = actcomp_nn::BertEncoder::new(&mut rng, c.mp.bert.clone());
                        let ts = serve_transports(label, world);
                        ThreadedRuntime::with_transports(&serial, c, &mut rng, ts)
                    }
                };
                ServeBackend::Threads(rt.unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }))
            }
            "procs" => {
                let kind = actcomp_net::TransportKind::parse(transport.as_deref().unwrap_or("uds"))
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    });
                let mut opts = ProcsOptions::new(make_cfg(), seed, kind);
                opts.fault = fault.clone();
                ServeBackend::Procs(ProcsRuntime::launch(opts).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("error: `actcomp serve` needs --backend threads|procs, got '{other}'");
                std::process::exit(2);
            }
        }
    };

    println!(
        "serve: {backend} {layers}L h{hidden} tp={tp} pp={pp} spec={} seq={seq} wire={wire} \
         max_batch={max_batch} window={window_us}us depth={depth}",
        spec.label()
    );

    // One load run on a fresh engine; any failed request is a typed
    // serving error and exits non-zero (the dispatcher answers every
    // request on a dead world, so probing it recovers the error).
    let run_mode = |label: &str, scfg: ServeConfig, arrival: Arrival| {
        let engine = ServeEngine::start(make_backend(), scfg).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let lcfg = LoadConfig {
            requests,
            arrival,
            vocab,
            seed: seed ^ 0x10ad,
        };
        let report = run_load(&engine, &lcfg);
        if report.failed > 0 {
            let probe = engine.handle().submit(vec![0; seq]).wait();
            match probe {
                Err(e) => eprintln!("error: {} request(s) failed: {e}", report.failed),
                Ok(_) => eprintln!("error: {} request(s) failed", report.failed),
            }
            drop(engine);
            std::process::exit(1);
        }
        println!(
            "{label:>8}: {:>8.1} req/s  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  \
             mean {:.2} ms  ({} reqs, {:.2} s)",
            report.req_per_s,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.mean_ms,
            report.completed,
            report.elapsed_s
        );
        let (stats, phase) = engine.finish();
        (report, stats, phase)
    };

    let batched_cfg = ServeConfig {
        max_batch,
        batch_window: std::time::Duration::from_micros(window_us),
        depth,
    };
    if !bench {
        let arrival = match args.get("arrival", "closed") {
            "closed" => Arrival::Closed { clients },
            "open" => Arrival::Open {
                rate: rate.unwrap_or_else(|| {
                    eprintln!("error: --arrival open needs --rate REQ_PER_S");
                    std::process::exit(2);
                }),
            },
            other => {
                eprintln!("error: unknown arrival process '{other}' (closed|open)");
                std::process::exit(2);
            }
        };
        let (_, stats, phase) = run_mode("load", batched_cfg, arrival);
        println!(
            "batches: {} dispatched, size histogram {:?}",
            stats.batches, stats.batch_hist
        );
        if let Some(phase) = &phase {
            print_phase_report(phase);
        }
        return;
    }

    // --bench: the one-request-at-a-time baseline — a single closed-loop
    // client against an unbatched engine (`max_batch = 1`, `depth = 1`),
    // so at most one request is anywhere in the system — vs continuous
    // batching under saturating closed-loop load, plus a fixed-rate
    // open-loop latency run.
    let serial_cfg = ServeConfig {
        max_batch: 1,
        batch_window: std::time::Duration::ZERO,
        depth: 1,
    };
    let (serial_lr, _, _) = run_mode("serial", serial_cfg, Arrival::Closed { clients: 1 });
    let (batched_lr, batched_stats, phase) =
        run_mode("batched", batched_cfg, Arrival::Closed { clients });
    // Default offered load: 70% of measured saturated throughput, so
    // the open-loop run measures latency below the knee.
    let open_rate = rate.unwrap_or(0.7 * batched_lr.req_per_s).max(1.0);
    let (open_lr, _, _) = run_mode("open", batched_cfg, Arrival::Open { rate: open_rate });
    let speedup = if serial_lr.req_per_s > 0.0 {
        batched_lr.req_per_s / serial_lr.req_per_s
    } else {
        0.0
    };
    println!(
        "speedup: {speedup:.2}x (continuous batching vs one-request-at-a-time), \
         batch histogram {:?}",
        batched_stats.batch_hist
    );
    #[derive(serde::Serialize)]
    struct BenchConfig {
        backend: String,
        transport: Option<String>,
        tp: usize,
        pp: usize,
        layers: usize,
        hidden: usize,
        heads: usize,
        ff: usize,
        vocab: usize,
        seq: usize,
        spec: String,
        wire_dtype: String,
        max_batch: usize,
        batch_window_us: u64,
        depth: usize,
        requests: usize,
        clients: usize,
        open_rate_req_per_s: f64,
    }
    #[derive(serde::Serialize)]
    struct BenchDoc {
        config: BenchConfig,
        serial: actcomp_runtime::LoadReport,
        batched: actcomp_runtime::LoadReport,
        open: actcomp_runtime::LoadReport,
        speedup_batched_vs_serial: f64,
        batches: usize,
        batch_hist: Vec<usize>,
        report: Option<actcomp_runtime::RuntimeReport>,
    }
    let doc = BenchDoc {
        config: BenchConfig {
            backend: backend.clone(),
            transport: transport.clone(),
            tp,
            pp,
            layers,
            hidden,
            heads,
            ff,
            vocab,
            seq,
            spec: spec.label().to_string(),
            wire_dtype: wire.clone(),
            max_batch,
            batch_window_us: window_us,
            depth,
            requests,
            clients,
            open_rate_req_per_s: open_rate,
        },
        serial: serial_lr,
        batched: batched_lr,
        open: open_lr,
        speedup_batched_vs_serial: speedup,
        batches: batched_stats.batches,
        batch_hist: batched_stats.batch_hist.clone(),
        report: phase,
    };
    match std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("serialize")) {
        Ok(()) => println!("[bench written to {out}]"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
}

/// FNV-1a 64 over the little-endian `f32` bytes of every gradient, in
/// the serial executor's parameter visit order.
///
/// Backends are conformance-tested to produce bit-identical gradients
/// with compression off, so printing this hash (`--grad-hash`) lets a
/// shell test compare a threads run against a multi-process run without
/// shipping full tensors through stdout.
fn grads_fnv(grads: &[actcomp_tensor::Tensor]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for g in grads {
        for x in g.as_slice() {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Hidden `actcomp worker` subcommand: one rank of a `--backend procs`
/// run. Spawned by the launcher (never by hand); the run configuration
/// arrives via the `ACTCOMP_WORKER_CFG` environment variable, the seed
/// and topology via flags so `u64` values never round-trip through JSON.
fn worker(args: &Args) {
    // Serving propagates the wire dtype to workers via the environment
    // (it is process-global state, not part of the run config JSON).
    if let Some(wd) = std::env::var("ACTCOMP_WIRE_DTYPE")
        .ok()
        .and_then(|v| actcomp_runtime::WireDtype::parse(&v))
    {
        actcomp_runtime::set_wire_dtype(wd);
    }
    let required = |key: &str| -> &str {
        args.raw(key).unwrap_or_else(|| {
            eprintln!("error: worker needs --{key} (spawned by `run --backend procs`)");
            std::process::exit(2);
        })
    };
    let parse_usize = |key: &str| -> usize {
        required(key).parse().unwrap_or_else(|_| {
            eprintln!("error: --{key} expects an integer");
            std::process::exit(2);
        })
    };
    let rank = parse_usize("rank");
    let world = parse_usize("world");
    let coord = required("coord").to_string();
    let kind = actcomp_net::TransportKind::parse(required("transport")).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let seed: u64 = required("seed").parse().unwrap_or_else(|_| {
        eprintln!("error: --seed expects an unsigned integer");
        std::process::exit(2);
    });
    let link_mbps = args.raw("link-mbps").map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("error: --link-mbps expects a number");
            std::process::exit(2);
        })
    });
    let epoch: u32 = args
        .raw("epoch")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --epoch expects an unsigned integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let rendezvous_timeout = args
        .raw("rendezvous-timeout-ms")
        .map(|v| {
            let ms: u64 = v.parse().unwrap_or_else(|_| {
                eprintln!("error: --rendezvous-timeout-ms expects milliseconds");
                std::process::exit(2);
            });
            std::time::Duration::from_millis(ms)
        })
        .unwrap_or(actcomp_runtime::procs::DEFAULT_RENDEZVOUS_TIMEOUT);
    let worker_args = actcomp_runtime::WorkerArgs {
        rank,
        world,
        coord,
        kind,
        seed,
        link_mbps,
        fail_after_rendezvous: args.flag("fail-after-rendezvous"),
        epoch,
        fault: args.raw("fault").map(str::to_string),
        rendezvous_timeout,
    };
    if let Err(e) = actcomp_runtime::run_worker(worker_args) {
        eprintln!("worker rank {rank}: error: {e}");
        std::process::exit(1);
    }
}

/// Prints a [`RuntimeReport`](actcomp_runtime::RuntimeReport)'s aggregate
/// phase breakdown and traffic counters.
fn print_phase_report(report: &actcomp_runtime::RuntimeReport) {
    let t = &report.totals;
    let total = t.total_s();
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    println!(
        "phase breakdown ({} rank threads, summed wall-clock):",
        report.ranks.len()
    );
    println!(
        "  compute    {:>10.3} ms  ({:>5.1}%)",
        t.compute_s * 1e3,
        pct(t.compute_s)
    );
    println!(
        "  encode     {:>10.3} ms  ({:>5.1}%)",
        t.encode_s * 1e3,
        pct(t.encode_s)
    );
    println!(
        "  wire       {:>10.3} ms  ({:>5.1}%)",
        t.wire_s * 1e3,
        pct(t.wire_s)
    );
    println!(
        "  decode     {:>10.3} ms  ({:>5.1}%)",
        t.decode_s * 1e3,
        pct(t.decode_s)
    );
    println!(
        "tp reduces     {:>10} wire B {:>10} dense B ({:.2}x)",
        report.reduce_bytes.wire,
        report.reduce_bytes.dense,
        report.reduce_bytes.ratio()
    );
    println!(
        "pp boundaries  {:>10} wire B {:>10} dense B ({:.2}x)",
        report.boundary_bytes.wire,
        report.boundary_bytes.dense,
        report.boundary_bytes.ratio()
    );
}

/// Validates a config assembled from CLI flags before handing it to the
/// simulator; errors print the full report and exit, warnings print and
/// continue.
fn validate_or_exit(cfg: &ExperimentConfig) {
    match actcomp_check::validate(cfg) {
        Ok(warnings) => {
            if !warnings.is_empty() {
                eprintln!("{}", render_report(&warnings));
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn simulate(args: &Args) {
    let machine = match args.get("machine", "nvlink") {
        "nvlink" => Machine::AwsP3,
        "pcie" => Machine::LocalPcie,
        other => {
            eprintln!("error: unknown machine '{other}' (nvlink|pcie)");
            std::process::exit(2);
        }
    };
    let spec = parse_spec(args.get("spec", "w/o"));

    let mut cfg = ExperimentConfig::paper_default();
    cfg.cluster.preset = match machine {
        Machine::AwsP3 => "p3_8xlarge".to_string(),
        _ => "local_no_nvlink".to_string(),
    };
    cfg.parallelism.tp = args.get_usize("tp", 2);
    cfg.parallelism.pp = args.get_usize("pp", 2);
    cfg.batch.micro_batch = args.get_usize("batch", 32);
    cfg.batch.seq = args.get_usize("seq", 512);
    cfg.plan.spec = spec.label().to_string();
    validate_or_exit(&cfg);

    let b = finetune_breakdown(
        machine,
        args.get_usize("tp", 2),
        args.get_usize("pp", 2),
        args.get_usize("batch", 32),
        args.get_usize("seq", 512),
        spec,
    );
    print_breakdown(&b, args.flag("json"));
}

fn pretrain_sim(args: &Args) {
    let spec = parse_spec(args.get("spec", "w/o"));

    let mut cfg = ExperimentConfig::paper_pretrain();
    cfg.parallelism.tp = args.get_usize("tp", 4);
    cfg.parallelism.pp = args.get_usize("pp", 4);
    cfg.plan.spec = spec.label().to_string();
    validate_or_exit(&cfg);

    let b = pretrain_breakdown(cfg.parallelism.tp, cfg.parallelism.pp, spec);
    print_breakdown(&b, args.flag("json"));
}

fn finetune(args: &Args) {
    let task = parse_task(args.get("task", "sst2"));
    let mut cfg = AccuracyConfig::paper_default().with_spec(parse_spec(args.get("spec", "w/o")));
    cfg.steps = args.get_usize("steps", cfg.steps);
    cfg.seed = args.get_usize("seed", cfg.seed as usize) as u64;
    println!(
        "fine-tuning {} with {} for {} steps (TP={}, PP={})...",
        task.name(),
        cfg.spec.label(),
        cfg.steps,
        cfg.tp,
        cfg.pp
    );
    let r = accuracy::finetune(&cfg, task);
    println!(
        "{} score: {:.2}   (final train loss {:.3})",
        task.name(),
        r.score,
        r.final_loss
    );
}

fn scaling(args: &Args) {
    let rows = weak_scaling(
        &PerfCoefficients::paper(),
        &table10_configs(),
        paper_bandwidth_elems(),
    );
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serialize")
        );
        return;
    }
    println!(
        "{:>8} {:>7} {:>6} {:>7} {:>9}",
        "hidden", "layers", "nodes", "batch", "speedup"
    );
    for r in rows {
        println!(
            "{:>8} {:>7} {:>6} {:>7} {:>8.2}x",
            r.config.hidden, r.config.layers, r.config.nodes, r.config.batch, r.speedup
        );
    }
}

fn specs() {
    println!("{:6} {:14} meaning", "id", "family");
    for s in CompressorSpec::all() {
        let meaning = match s {
            CompressorSpec::Baseline => "no compression".to_string(),
            CompressorSpec::A1 | CompressorSpec::A2 => {
                format!("auto-encoder, code dim {} at h=1024", s.code_dim(1024))
            }
            CompressorSpec::T1 | CompressorSpec::T2 | CompressorSpec::R1 | CompressorSpec::R2 => {
                "sparsifier, same comm cost as the matching AE".to_string()
            }
            CompressorSpec::T3 | CompressorSpec::T4 | CompressorSpec::R3 | CompressorSpec::R4 => {
                "sparsifier, same compression ratio as the matching AE".to_string()
            }
            _ => format!("{}-bit uniform quantization", s.quant_bits()),
        };
        println!(
            "{:6} {:14} {}",
            s.label(),
            format!("{:?}", s.family()),
            meaning
        );
    }
}
