//! Facade crate re-exporting the actcomp workspace.
pub use actcomp_check as check;
pub use actcomp_compress as compress;
pub use actcomp_core as core;
pub use actcomp_data as data;
pub use actcomp_distsim as distsim;
pub use actcomp_mp as mp;
pub use actcomp_nn as nn;
pub use actcomp_perfmodel as perfmodel;
pub use actcomp_runtime as runtime;
pub use actcomp_tensor as tensor;
