//! Fine-tune the scaled-down BERT on one synthetic GLUE task under three
//! compression settings and compare dev scores — the paper's Table 5
//! experiment in miniature.
//!
//! Run with: `cargo run --release --example finetune_glue [task] [steps]`
//! where `task` is one of mnli/qqp/sst2/mrpc/cola/qnli/rte/stsb.

use actcomp::compress::spec::CompressorSpec;
use actcomp::core::{accuracy, AccuracyConfig};
use actcomp::data::GlueTask;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let task = match args.get(1).map(String::as_str) {
        Some("mnli") => GlueTask::Mnli,
        Some("qqp") => GlueTask::Qqp,
        Some("mrpc") => GlueTask::Mrpc,
        Some("cola") => GlueTask::Cola,
        Some("qnli") => GlueTask::Qnli,
        Some("rte") => GlueTask::Rte,
        Some("stsb") => GlueTask::StsB,
        _ => GlueTask::Sst2,
    };
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!(
        "Fine-tuning on {} ({} train examples, metric {:?}), {} steps, TP=2 PP=2\n",
        task.name(),
        task.train_size(),
        task.metric(),
        steps
    );

    for spec in [
        CompressorSpec::Baseline,
        CompressorSpec::A2,
        CompressorSpec::T2,
        CompressorSpec::Q2,
    ] {
        let mut cfg = AccuracyConfig::paper_default().with_spec(spec);
        cfg.steps = steps;
        let start = std::time::Instant::now();
        let result = accuracy::finetune(&cfg, task);
        println!(
            "{:4}  score {:6.2}   final train loss {:.3}   ({:.1}s)",
            spec.label(),
            result.score,
            result.final_loss,
            start.elapsed().as_secs_f32()
        );
    }
    println!(
        "\nExpected shape (paper Table 5): baseline best; A2 and Q2 close \
         behind; T2 (Top-K) clearly degraded."
    );
}
