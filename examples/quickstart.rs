//! Quickstart: compress an activation with each of the paper's algorithm
//! families, then ask the cluster simulator whether each would speed up
//! BERT-Large fine-tuning.
//!
//! Run with: `cargo run --release --example quickstart`

use actcomp::compress::spec::CompressorSpec;
use actcomp::core::throughput::{finetune_breakdown, Machine};
use actcomp::tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A realistic activation: [batch*seq, hidden] hidden states.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let h = 1024;
    let x = init::randn(&mut rng, [64, h], 1.0);
    let n = x.len();

    println!("Compressing a [64, {h}] activation ({n} elements):\n");
    println!(
        "{:10} {:>12} {:>10} {:>14} {:>10}",
        "setting", "wire bytes", "ratio", "recon error", "summable"
    );
    for spec in [
        CompressorSpec::Baseline,
        CompressorSpec::A1,
        CompressorSpec::A2,
        CompressorSpec::T1,
        CompressorSpec::R1,
        CompressorSpec::Q1,
        CompressorSpec::Q2,
    ] {
        let mut c = spec.build(&mut rng, n, h);
        let msg = c.compress(&x);
        let y = c.decompress(&msg);
        println!(
            "{:10} {:>12} {:>9.1}x {:>14.4} {:>10}",
            spec.label(),
            msg.wire_bytes(2),
            msg.ratio(2),
            x.sub(&y).norm() / x.norm(),
            c.summable()
        );
    }

    println!(
        "\n(The auto-encoder is untrained here — random Gaussian data has no \
         structure to learn. In training it is optimized jointly with the \
         model; see the finetune_glue example.)"
    );

    // 2. Does compression pay off end to end? Ask the simulator for the
    //    paper's fine-tuning setup on both machines.
    println!("\nSimulated BERT-Large fine-tune iteration (TP=2, PP=2, b=32, s=512):\n");
    println!("{:16} {:>14} {:>14}", "machine", "w/o (ms)", "A1 (ms)");
    for (name, machine) in [
        ("NVLink", Machine::AwsP3),
        ("no NVLink", Machine::LocalPcie),
    ] {
        let base = finetune_breakdown(machine, 2, 2, 32, 512, CompressorSpec::Baseline);
        let a1 = finetune_breakdown(machine, 2, 2, 32, 512, CompressorSpec::A1);
        println!(
            "{:16} {:>14.2} {:>14.2}   ({:+.1}%)",
            name,
            base.total_ms,
            a1.total_ms,
            100.0 * (base.total_ms - a1.total_ms) / base.total_ms
        );
    }
    println!(
        "\nThe paper's Takeaway 1 in two rows: learning-based compression \
         helps on slow fabrics, not on NVLink."
    );
}
