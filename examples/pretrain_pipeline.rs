//! The paper's §4.4 pipeline in miniature: MLM pre-training *with* an
//! auto-encoder compressing the model-parallel boundaries, then stripping
//! the compressor and fine-tuning the checkpoint — showing that the AE can
//! be used during pre-training and removed afterwards.
//!
//! Run with: `cargo run --release --example pretrain_pipeline [pretrain_steps]`

use actcomp::compress::spec::CompressorSpec;
use actcomp::core::{accuracy, AccuracyConfig};
use actcomp::data::GlueTask;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    for spec in [CompressorSpec::Baseline, CompressorSpec::A2] {
        println!(
            "=== pre-training with {} for {steps} steps ===",
            spec.label()
        );
        let mut pre_cfg = AccuracyConfig::paper_default().with_spec(spec);
        pre_cfg.lr = 5e-4;
        let start = std::time::Instant::now();
        let mut checkpoint = accuracy::pretrain(&pre_cfg, steps);
        println!("  pre-trained in {:.1}s", start.elapsed().as_secs_f32());

        // The checkpoint is a plain serial encoder: compressors are gone.
        let probe_loss = accuracy::mlm_eval_loss(&mut checkpoint, &pre_cfg, 8);
        println!("  MLM probe loss on held-out corpus: {probe_loss:.3}");

        // Fine-tune the stripped checkpoint WITHOUT compression.
        let ft_cfg = AccuracyConfig::paper_default();
        for task in [GlueTask::Sst2, GlueTask::Rte] {
            let r = accuracy::finetune_from(&ft_cfg, &checkpoint, task);
            println!("  fine-tune {}: {:.2}", task.name(), r.score);
        }
        println!();
    }
    println!(
        "Paper's Takeaway 5: the AE-compressed pre-training run transfers \
         as well as the uncompressed one — and the AE parameters can simply \
         be dropped at fine-tuning time."
    );
}
