//! The paper's §4.7 question, interactively: what happens to AE
//! compression's speedup when the model and the cluster scale up?
//!
//! Run with: `cargo run --release --example scaling_analysis`

use actcomp::perfmodel::scaling::{
    paper_bandwidth_elems, table10_configs, AE_DIM, MICRO_BATCH, SEQ,
};
use actcomp::perfmodel::{weak_scaling, PerfCoefficients};

fn main() {
    let coeffs = PerfCoefficients::paper();

    // 1. Fixed cluster: the speedup from compression decays as hidden
    //    size grows (Eq. 2's asymptotics).
    println!("Single tensor-parallel group (Eq. 2): speedup T / T_AE\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "hidden", "T (ms)", "T_AE (ms)", "speedup"
    );
    for h in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let e = (AE_DIM * h / 1024).max(1);
        let t = coeffs.layer_time(MICRO_BATCH, SEQ, h);
        let t_ae = coeffs.layer_time_ae(MICRO_BATCH, SEQ, h, e);
        println!(
            "{h:>8} {:>10.2} {:>12.2} {:>9.2}x",
            t * 1e3,
            t_ae * 1e3,
            t / t_ae
        );
    }

    // 2. Growing cluster: scale nodes with hidden size (the paper's
    //    Table 10) and the benefit plateaus around 1.5x instead.
    println!("\nWeak scaling with pipeline parallelism (Eq. 3, Table 10):\n");
    println!(
        "{:>8} {:>7} {:>6} {:>7} {:>9}",
        "hidden", "layers", "nodes", "batch", "speedup"
    );
    for row in weak_scaling(&coeffs, &table10_configs(), paper_bandwidth_elems()) {
        println!(
            "{:>8} {:>7} {:>6} {:>7} {:>8.2}x",
            row.config.hidden, row.config.layers, row.config.nodes, row.config.batch, row.speedup
        );
    }
    println!(
        "\nThe paper's conclusion: on a fixed cluster compression's benefit \
         diminishes with scale, but scaling the node count alongside the \
         model retains ~1.5x."
    );
}
